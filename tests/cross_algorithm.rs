//! Integration tests spanning crates: dataset profiles, workloads and the
//! enumeration algorithms agree with each other at realistic (small) scale.

use temporal_kcore::prelude::*;

/// On a generated dataset analogue, the three real algorithms agree on the
/// result counts for several workloads (the full naive reference would be
/// too slow here; exact set equality at small scale is covered by the
/// property tests in `tkcore`).
#[test]
fn algorithms_agree_on_generated_profiles() {
    for name in ["FB", "BO"] {
        let profile = DatasetProfile::by_name(name).unwrap();
        let graph = profile.generate();
        let stats = DatasetStats::compute(&graph);
        let config = WorkloadConfig::paper_default(&stats, 3, 11);
        let workload = QueryWorkload::generate(&graph, &config);
        for query in workload.queries() {
            let mut a = CountingSink::default();
            query.run_with(&graph, Algorithm::Enum, &mut a);
            let mut b = CountingSink::default();
            query.run_with(&graph, Algorithm::EnumBase, &mut b);
            let mut c = CountingSink::default();
            query.run_with(&graph, Algorithm::Otcd, &mut c);
            assert_eq!(a, b, "{name} {:?}", query.range());
            assert_eq!(a, c, "{name} {:?}", query.range());
        }
    }
}

/// Exact result-set equality of Enum and OTCD on a planted-burst graph that
/// is small enough to compare collections directly.
#[test]
fn exact_equality_on_planted_bursts() {
    use temporal_kcore::temporal_graph::generator::{planted_bursty_cores, BurstyConfig};
    let config = BurstyConfig {
        num_vertices: 60,
        background_edges: 250,
        num_bursts: 4,
        burst_size: 8,
        burst_duration: 6,
        burst_density: 0.8,
        num_timestamps: 60,
    };
    let graph = planted_bursty_cores(&config, 5);
    let query = TimeRangeKCoreQuery::new(3, graph.span()).unwrap();

    let mut a = CollectingSink::default();
    query.run_with(&graph, Algorithm::Enum, &mut a);
    let mut b = CollectingSink::default();
    query.run_with(&graph, Algorithm::Otcd, &mut b);
    let a = a.into_sorted();
    let b = b.into_sorted();
    assert!(
        !a.is_empty(),
        "planted bursts must produce temporal 3-cores"
    );
    assert_eq!(a, b);
    for core in &a {
        assert!(core.is_valid_k_core(&graph, 3));
        assert!(core.tti_is_tight(&graph));
    }
}

/// The planted rings are actually recovered: for each burst window there is
/// a temporal k-core whose TTI lies inside (a slightly padded version of)
/// the burst window.
#[test]
fn planted_bursts_are_recovered() {
    use temporal_kcore::temporal_graph::generator::{planted_bursty_cores, BurstyConfig};
    let config = BurstyConfig {
        num_vertices: 300,
        background_edges: 1_000,
        num_bursts: 5,
        burst_size: 12,
        burst_duration: 8,
        burst_density: 0.9,
        num_timestamps: 400,
    };
    let graph = planted_bursty_cores(&config, 21);
    let response = QueryRequest::single(5, 1, graph.tmax())
        .materialize()
        .run(&graph, &Algorithm::Enum)
        .unwrap();
    let KOutput::Cores(cores) = &response.outcomes[0].output else {
        unreachable!("materialized request")
    };
    assert!(
        cores.len() >= config.num_bursts,
        "expected at least one core per planted burst, got {}",
        cores.len()
    );
    // Each planted burst is individually recovered: at least `num_bursts`
    // cores are confined to a window not much longer than one burst.
    // (Windows covering several bursts additionally produce "union" cores
    // with long TTIs, which is expected.)
    let short = cores
        .iter()
        .filter(|c| c.tti.len() <= 2 * u64::from(config.burst_duration))
        .count();
    assert!(
        short >= config.num_bursts,
        "only {short} short-window cores for {} planted bursts",
        config.num_bursts
    );
}

/// Loader round trip composes with enumeration: saving and reloading a graph
/// yields identical query answers.
#[test]
fn loader_round_trip_preserves_results() {
    let profile = DatasetProfile::by_name("FB").unwrap();
    let graph = profile.generate();
    let dir = std::env::temp_dir().join("tkc-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fb.txt");
    loader::write_edge_list(&graph, &path).unwrap();
    let reloaded = loader::read_edge_list(&path).unwrap();
    std::fs::remove_file(&path).ok();

    assert_eq!(reloaded.num_edges(), graph.num_edges());
    let stats = DatasetStats::compute(&graph);
    let query = TimeRangeKCoreQuery::new(
        stats.k_for_percent(30),
        TimeWindow::new(1, stats.range_len_for_percent(20).min(graph.tmax())),
    )
    .unwrap();
    let mut a = CountingSink::default();
    query.run_with(&graph, Algorithm::Enum, &mut a);
    let mut b = CountingSink::default();
    query.run_with(&reloaded, Algorithm::Enum, &mut b);
    assert_eq!(a, b);
}
