//! The live-ingestion correctness harness: an appendable `ShardedEngine`
//! must be indistinguishable from an engine rebuilt from scratch over the
//! same events, at **every prefix** of the stream.
//!
//! Three layers of evidence:
//!
//! * `interleaved_appends_match_rebuild_from_scratch` — the property test
//!   of the ingestion PR: random base graphs, random shard plans, random
//!   seal policies and a random time-ordered event stream; after every
//!   absorbed batch, every `(k, window)` query through the live engine
//!   returns the same cores (compared in label space, since the appendable
//!   graph assigns vertex ids first-seen while the builder sorts labels)
//!   as a fresh engine built from the base edges plus the prefix, for all
//!   four algorithms;
//! * `closed_shard_skylines_survive_an_append_burst` — the incremental
//!   maintenance contract, asserted through `CacheStats`: across an append
//!   burst the closed shards register **zero** new skyline builds (their
//!   cached indexes keep serving), while the tail counters show the purge;
//! * `racing_queries_never_observe_a_partial_batch` — atomicity through
//!   the serving layer: queries racing `submit_append` batches on a live
//!   multi-worker `CoreService` observe either none of a batch's edges or
//!   all of them, never a strict subset.

use proptest::prelude::*;
use temporal_kcore::prelude::*;
use temporal_kcore::tkcore::paper_example;

/// A core in label space: its TTI plus `(min_label, max_label, t)` per
/// edge.  Vertex *ids* differ between an appended graph (first-seen label
/// order) and a from-scratch rebuild (sorted label order), so equivalence
/// must be asserted on labels, which both sides preserve.
type LabelCore = (TimeWindow, Vec<(u64, u64, Timestamp)>);

fn label_cores(graph: &TemporalGraph, cores: &[TemporalKCore]) -> Vec<LabelCore> {
    let mut out: Vec<LabelCore> = cores
        .iter()
        .map(|core| {
            let mut edges: Vec<(u64, u64, Timestamp)> = core
                .edges
                .iter()
                .map(|&id| {
                    let e = graph.edge(id);
                    let (a, b) = (graph.label(e.u), graph.label(e.v));
                    (a.min(b), a.max(b), e.t)
                })
                .collect();
            edges.sort_unstable();
            (core.tti, edges)
        })
        .collect();
    out.sort();
    out
}

/// Builds a graph from raw `(u, v, t)` label events without timestamp
/// compression, so the rebuilt timeline matches the appended one.
fn raw_graph(events: &[(u64, u64, Timestamp)]) -> TemporalGraph {
    TemporalGraphBuilder::new()
        .timestamp_mode(TimestampMode::Raw)
        .with_edges(events.iter().map(|&(u, v, t)| (u, v, i64::from(t))))
        .build()
        .expect("harness events form a valid graph")
}

fn seal_policy_for(kind: u8) -> SealPolicy {
    match kind % 3 {
        0 => SealPolicy::Manual,
        1 => SealPolicy::EdgeCount(4),
        _ => SealPolicy::SpanWidth(3),
    }
}

/// Label events: `(u, v, t)` triples in label space.
type Events = Vec<(u64, u64, Timestamp)>;

/// Strategy: base edges over a small label/time space (at least one
/// non-loop edge) plus a time-ordered, duplicate-free append stream whose
/// timestamps start strictly past the base `tmax`.
fn arb_base_and_stream() -> impl Strategy<Value = (Events, Events)> {
    (
        prop::collection::vec((0u64..8, 0u64..8, 1u32..=6), 1..30),
        prop::collection::vec((0u64..10, 0u64..10, 0u32..3), 1..14),
    )
        .prop_filter_map("need a non-loop base edge", |(base, raw_stream)| {
            let base: Vec<(u64, u64, Timestamp)> =
                base.into_iter().filter(|&(u, v, _)| u != v).collect();
            if base.is_empty() {
                return None;
            }
            let base_tmax = base.iter().map(|&(_, _, t)| t).max().unwrap_or(1);
            let mut seen = std::collections::HashSet::new();
            let mut t = base_tmax;
            let mut stream = Vec::new();
            for (u, v, dt) in raw_stream {
                t += dt.max(u32::from(stream.is_empty()));
                if u != v && seen.insert((u.min(v), u.max(v), t)) {
                    stream.push((u, v, t));
                }
            }
            // Make sure the stream advances past the base at least once.
            if stream.is_empty() {
                stream.push((0, 1, base_tmax + 1));
            }
            Some((base, stream))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Interleaved append/query equals rebuild-from-scratch on every
    /// prefix of the stream, for every algorithm, under random shard
    /// plans and seal policies.
    #[test]
    fn interleaved_appends_match_rebuild_from_scratch(
        (base, stream) in arb_base_and_stream(),
        k in 1usize..4,
        shards in 1usize..4,
        seal_kind in 0u8..3,
        batch_len in 1usize..4,
    ) {
        let config = EngineConfig {
            seal_policy: seal_policy_for(seal_kind),
            ..EngineConfig::default()
        };
        let live = ShardedEngine::with_config(
            raw_graph(&base),
            ShardPlan::FixedCount(shards),
            config,
        ).expect("fixed-count plans are valid");

        let mut absorbed = base.clone();
        let mut taken: std::collections::HashSet<(u64, u64, Timestamp)> = absorbed
            .iter()
            .map(|&(u, v, t)| (u.min(v), u.max(v), t))
            .collect();
        for batch in stream.chunks(batch_len) {
            // A seal raises the append floor past the sealed end, so a
            // batch starting at the old tail timestamp must shift forward
            // (uniformly, preserving its internal tie structure) — and a
            // shift may land on an already-absorbed `(u, v, t)`, in which
            // case it keeps shifting.  The reference is rebuilt from the
            // *shifted* events, so equivalence is unaffected.
            let mut delta = live.watermark().saturating_sub(batch[0].2);
            let batch: Vec<(u64, u64, Timestamp)> = loop {
                let shifted: Vec<(u64, u64, Timestamp)> = batch
                    .iter()
                    .map(|&(u, v, t)| (u, v, t + delta))
                    .collect();
                if shifted
                    .iter()
                    .all(|&(u, v, t)| !taken.contains(&(u.min(v), u.max(v), t)))
                {
                    break shifted;
                }
                delta += 1;
            };
            let stats = live.absorb(&batch).expect("shifted batches are in order");
            prop_assert_eq!(stats.appended, batch.len());
            taken.extend(batch.iter().map(|&(u, v, t)| (u.min(v), u.max(v), t)));
            absorbed.extend_from_slice(&batch);

            // Rebuild the same prefix from scratch and compare answers on
            // the full live span plus a window straddling the base/tail
            // boundary.
            let reference = raw_graph(&absorbed);
            let live_tmax = live.graph().tmax();
            prop_assert_eq!(reference.tmax(), live_tmax);
            let base_tmax = base.iter().map(|&(_, _, t)| t).max().unwrap();
            let windows = [
                TimeWindow::new(1, live_tmax),
                TimeWindow::new(base_tmax.min(live_tmax), live_tmax),
            ];
            for window in windows {
                let query = TimeRangeKCoreQuery::new(k, window).expect("k >= 1");
                for algo in Algorithm::ALL {
                    let mut expected = CollectingSink::default();
                    query.run_with(&reference, algo, &mut expected);
                    let mut got = CollectingSink::default();
                    live.run_with(&query, algo, &mut got)
                        .expect("window is inside the live span");
                    prop_assert_eq!(
                        label_cores(&live.graph(), &got.cores),
                        label_cores(&reference, &expected.cores),
                        "prefix={} k={} window={} algo={} shards={} seal={:?}",
                        absorbed.len() - base.len(), k, window, algo,
                        shards, seal_policy_for(seal_kind)
                    );
                }
            }
        }
        prop_assert_eq!(
            live.graph().tmax(),
            absorbed.iter().map(|&(_, _, t)| t).max().unwrap()
        );
    }
}

/// The incremental-maintenance contract: an append burst leaves every
/// closed shard's cached skyline untouched — zero new builds — while the
/// tail counters record the purge-and-rebuild cycle.
#[test]
fn closed_shard_skylines_survive_an_append_burst() {
    let g = paper_example::graph(); // tmax = 7
    let engine = ShardedEngine::new(g, ShardPlan::ExplicitCuts(vec![2, 4])).unwrap();
    assert_eq!(engine.num_shards(), 3);
    assert_eq!(engine.sealed_shards(), 2);

    // Warm every shard, then answer a spanning query so the boundary
    // stitch index is resident too.
    engine.warm(2);
    let mut sink = CountingSink::default();
    engine
        .run(
            &TimeRangeKCoreQuery::new(2, TimeWindow::new(1, 7)).unwrap(),
            &mut sink,
        )
        .unwrap();
    let before = engine.cache_stats();
    let closed_builds_before: u64 = before.per_shard[..2].iter().map(|s| s.builds).sum();
    assert!(closed_builds_before >= 2, "warm built the closed shards");

    // The burst: several tail-extending batches.
    for batch in [
        vec![(1u64, 5u64, 8u32), (2, 5, 8)],
        vec![(1, 2, 9), (2, 6, 9)],
        vec![(1, 6, 10), (5, 6, 10)],
    ] {
        engine.absorb(&batch).unwrap();
    }

    // Spanning re-queries touch every shard again.
    for _ in 0..2 {
        let mut sink = CountingSink::default();
        engine
            .run(
                &TimeRangeKCoreQuery::new(2, TimeWindow::new(1, engine.watermark())).unwrap(),
                &mut sink,
            )
            .unwrap();
    }

    let after = engine.cache_stats();
    let closed_builds_after: u64 = after.per_shard[..2].iter().map(|s| s.builds).sum();
    assert_eq!(
        closed_builds_after, closed_builds_before,
        "closed-shard skylines must register zero rebuilds across the burst"
    );
    let delta = IngestDelta::between(&before, &after);
    assert!(delta.tail_invalidations > 0, "the tail was purged");
    assert!(
        after.per_shard[2].builds > before.per_shard[2].builds,
        "the tail skyline was rebuilt after the purge"
    );
    // Closed shards kept *serving* during the burst, not just resident.
    let closed_hits_before: u64 = before.per_shard[..2].iter().map(|s| s.hits).sum();
    let closed_hits_after: u64 = after.per_shard[..2].iter().map(|s| s.hits).sum();
    assert!(closed_hits_after > closed_hits_before);
}

/// One concurrent-ingest batch: two vertex-disjoint triangles on
/// consecutive timestamps.  A `k = 2` query over the batch's two-timestamp
/// window can only legally observe the empty prefix or the whole batch.
fn triangle_batch(i: u64, t: Timestamp) -> Vec<IngestEvent> {
    let a = 100 + 10 * i;
    let b = a + 5;
    vec![
        (a, a + 1, t),
        (a + 1, a + 2, t),
        (a, a + 2, t),
        (b, b + 1, t + 1),
        (b + 1, b + 2, t + 1),
        (b, b + 2, t + 1),
    ]
}

/// Queries racing `submit_append` on a live service never observe a
/// partial batch: every reply over a batch's window is either the
/// pre-batch answer (empty, or a typed past-`tmax` refusal) or the
/// complete post-batch answer — never a strict subset of the batch.
#[test]
fn racing_queries_never_observe_a_partial_batch() {
    let base = paper_example::graph();
    let base_tmax = base.tmax();
    let num_batches = 6u64;

    let service = CoreService::start_sharded(
        base.clone(),
        ShardPlan::FixedCount(2),
        ServiceConfig {
            workers: 3,
            queue_depth: 256,
            affinity: Affinity::Shard,
            ..ServiceConfig::default()
        },
    )
    .unwrap();

    // Per batch: the full-batch reference answer over its window, computed
    // on an offline rebuild (base + that batch; other batches are vertex-
    // and time-disjoint, so the window restriction excludes them).
    let mut expected_full = Vec::new();
    let mut batches = Vec::new();
    for i in 0..num_batches {
        let t = base_tmax + 1 + 2 * (i as u32);
        let batch = triangle_batch(i, t);
        let mut with_batch: Vec<(u64, u64, Timestamp)> = (0..base.num_edges())
            .map(|id| {
                let e = base.edge(id as temporal_graph::EdgeId);
                (base.label(e.u), base.label(e.v), e.t)
            })
            .collect();
        with_batch.extend_from_slice(&batch);
        let reference = TemporalGraphBuilder::new()
            .timestamp_mode(TimestampMode::Raw)
            .with_edges(with_batch.iter().map(|&(u, v, tt)| (u, v, i64::from(tt))))
            .build()
            .unwrap();
        let query = TimeRangeKCoreQuery::new(2, TimeWindow::new(t, t + 1)).unwrap();
        let mut sink = CollectingSink::default();
        query.run_with(&reference, Algorithm::Enum, &mut sink);
        let full = label_cores(&reference, &sink.cores);
        assert!(!full.is_empty(), "each batch must be visible to k = 2");
        expected_full.push((TimeWindow::new(t, t + 1), full));
        batches.push(batch);
    }

    // Race: enqueue each append, then immediately fire queries over every
    // batch window submitted so far — they execute on other workers while
    // the absorb drains on the tail lane.  Each ingest ticket is awaited
    // before the next batch goes in (the documented ordering contract:
    // work stealing would otherwise absorb batches out of submission
    // order and reject the regressed ones).
    let mut appended = 0;
    let mut query_tickets = Vec::new();
    for (i, batch) in batches.iter().enumerate() {
        let ingest_ticket = service.submit_append(batch.clone()).unwrap();
        for (j, (window, _)) in expected_full.iter().enumerate().take(i + 1) {
            match service
                .submit(QueryRequest::single(2, window.start(), window.end()).materialize())
            {
                Ok(ticket) => query_tickets.push((j, ticket)),
                // The batch has not been absorbed yet, so the window is
                // past the live tmax: a typed refusal, i.e. the "none"
                // observation.
                Err(TkError::WindowPastTmax { .. }) => {}
                Err(other) => panic!("unexpected admission error: {other}"),
            }
        }
        let reply = ingest_ticket
            .wait()
            .expect("in-order batches absorb cleanly");
        appended += reply.stats.appended;
    }
    assert_eq!(appended, batches.iter().map(Vec::len).sum::<usize>());

    // Atomicity: every racing reply saw none of its batch or all of it.
    let live_graph = service
        .sharded_engine()
        .expect("start_sharded serves a sharded engine")
        .graph();
    for (j, ticket) in query_tickets {
        match ticket.wait() {
            Ok(reply) => {
                let KOutput::Cores(cores) = &reply.response.outcomes[0].output else {
                    panic!("materialized request");
                };
                let got = label_cores(&live_graph, cores);
                assert!(
                    got.is_empty() || got == expected_full[j].1,
                    "partial batch observed for window {}: {got:?}",
                    expected_full[j].0
                );
            }
            // Validated against a pre-batch snapshot on the worker: still
            // the "none" observation.
            Err(TkError::WindowPastTmax { .. }) => {}
            Err(other) => panic!("unexpected query error: {other}"),
        }
    }

    // After the stream drains, every batch window serves its full answer.
    for (window, full) in &expected_full {
        let reply = service
            .submit(QueryRequest::single(2, window.start(), window.end()).materialize())
            .unwrap()
            .wait()
            .unwrap();
        let KOutput::Cores(cores) = &reply.response.outcomes[0].output else {
            panic!("materialized request");
        };
        assert_eq!(&label_cores(&live_graph, cores), full, "window {window}");
    }

    let stats = service.stats();
    assert_eq!(stats.ingest.submitted, num_batches);
    assert_eq!(stats.ingest.completed, num_batches);
    assert_eq!(stats.ingest.failed, 0);
    assert_eq!(stats.ingest.events_appended, appended as u64);
    service.shutdown();
}
