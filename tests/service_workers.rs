//! Deterministic multi-worker `CoreService` test (no sleeps): with
//! `workers = 2` and a 1-deep queue, two requests execute concurrently —
//! one per worker, both provably in flight at the same time — while
//! admission control still bounds the queue and rejects the overflow
//! request with `TkError::BudgetExceeded`.
//!
//! Determinism: the two pinned requests use `OutputMode::Stream` with sinks
//! that signal on their first core and then block until released, exactly
//! like `service_admission.rs`.  A worker blocked inside `emit` holds its
//! request in flight, so once both gates have fired, both workers are
//! occupied and the queue alone decides admission.

use std::sync::mpsc;
use temporal_kcore::prelude::*;
use temporal_kcore::tkcore::paper_example;

/// A sink that reports when the first core arrives and then blocks until
/// released, pinning the executing worker inside the request.
struct GatedSink {
    started: mpsc::Sender<()>,
    release: mpsc::Receiver<()>,
    blocked_once: bool,
}

impl ResultSink for GatedSink {
    fn emit(&mut self, _tti: TimeWindow, _edges: &[temporal_graph::EdgeId]) {
        if !self.blocked_once {
            self.blocked_once = true;
            self.started.send(()).expect("test is listening");
            self.release.recv().expect("test releases the sink");
        }
    }
}

fn gated() -> (GatedSink, mpsc::Receiver<()>, mpsc::Sender<()>) {
    let (started_tx, started_rx) = mpsc::channel();
    let (release_tx, release_rx) = mpsc::channel();
    (
        GatedSink {
            started: started_tx,
            release: release_rx,
            blocked_once: false,
        },
        started_rx,
        release_tx,
    )
}

#[test]
fn two_workers_run_concurrently_and_admission_still_bounds_the_queue() {
    let service = CoreService::start(
        paper_example::graph(),
        ServiceConfig {
            queue_depth: 1,
            workers: 2,
            ..ServiceConfig::default()
        },
    );

    // Requests A and B: each is picked up by a worker and pinned inside its
    // gated sink.  B can only start while A is still blocked, so receiving
    // both `started` signals proves two requests are in flight concurrently.
    let (sink_a, started_a, release_a) = gated();
    let ticket_a = service
        .submit(QueryRequest::single(2, 1, 4).stream(Box::new(sink_a)))
        .expect("A is admitted");
    started_a.recv().expect("a worker is inside A");

    let (sink_b, started_b, release_b) = gated();
    let ticket_b = service
        .submit(QueryRequest::single(2, 1, 4).stream(Box::new(sink_b)))
        .expect("B is admitted");
    started_b.recv().expect("the second worker is inside B");

    // Both workers are pinned; request C fills the 1-deep queue...
    let ticket_c = service
        .submit(QueryRequest::single(2, 1, 4))
        .expect("C fits in the queue");

    // ...and the next submission is refused with a typed budget error.
    let err = service
        .submit(QueryRequest::single(2, 1, 4))
        .expect_err("the queue is full while both workers are pinned");
    assert!(
        matches!(
            err,
            TkError::BudgetExceeded {
                resource: "request queue",
                limit: 1,
            }
        ),
        "{err}"
    );

    // Release both workers; every admitted request completes.
    release_a.send(()).expect("worker A is waiting");
    release_b.send(()).expect("worker B is waiting");
    let reply_a = ticket_a.wait().expect("A completes");
    let reply_b = ticket_b.wait().expect("B completes");
    let reply_c = ticket_c.wait().expect("C completes");
    assert_eq!(reply_a.response.total_cores(), 2);
    assert_eq!(reply_b.response.total_cores(), 2);
    assert_eq!(reply_c.response.total_cores(), 2);
    // A and B were concurrently in flight, so they ran on distinct workers.
    assert_ne!(reply_a.worker, reply_b.worker);

    let stats = service.stats();
    assert_eq!(stats.admitted, 3);
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.max_queue_depth, 1);
    // Per-worker latency accounting aggregates into the shared counters.
    assert_eq!(stats.per_worker.len(), 2);
    let per_worker_completed: u64 = stats.per_worker.iter().map(|w| w.completed).sum();
    assert_eq!(per_worker_completed, stats.completed);
    let per_worker_execute: std::time::Duration =
        stats.per_worker.iter().map(|w| w.execute_total).sum();
    assert_eq!(per_worker_execute, stats.execute_total);
    assert!(stats.per_worker.iter().all(|w| w.completed >= 1));
    service.shutdown();
}

#[test]
fn sharded_multi_worker_service_matches_span_wide_answers() {
    let graph = paper_example::graph();
    let span = CoreService::start(
        graph.clone(),
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
    );
    let sharded = CoreService::start_sharded(
        graph,
        ShardPlan::FixedCount(4),
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
    )
    .unwrap();

    let requests = [(2, 1, 4), (2, 2, 6), (1, 1, 7), (3, 1, 7)];
    let span_tickets: Vec<Ticket> = requests
        .iter()
        .map(|&(k, s, e)| span.submit(QueryRequest::single(k, s, e)).unwrap())
        .collect();
    let sharded_tickets: Vec<Ticket> = requests
        .iter()
        .map(|&(k, s, e)| sharded.submit(QueryRequest::single(k, s, e)).unwrap())
        .collect();
    for ((span_ticket, sharded_ticket), request) in
        span_tickets.into_iter().zip(sharded_tickets).zip(requests)
    {
        let a = span_ticket.wait().unwrap();
        let b = sharded_ticket.wait().unwrap();
        assert_eq!(
            a.response.total_cores(),
            b.response.total_cores(),
            "{request:?}"
        );
        assert_eq!(
            a.response.total_result_edges(),
            b.response.total_result_edges(),
            "{request:?}"
        );
    }
    assert_eq!(sharded.cache_stats().per_shard.len(), 4);
    span.shutdown();
    sharded.shutdown();
}
