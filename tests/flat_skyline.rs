//! Correctness harness for the flat (CSR) skyline storage: every result
//! obtainable from the contiguous `offsets`/`flat` layout must be identical
//! to one computed through a naive nested-`Vec` reference implementation
//! that knows nothing about the flat encoding.
//!
//! Four layers of evidence:
//!
//! * `csr_build_matches_the_nested_reference` — `EdgeCoreSkyline::build`'s
//!   `iter()`/`windows()` output equals a brute-force per-edge minimal-window
//!   table (`NestedSkyline`) derived from the `naive` peeling oracle, over
//!   random graphs, random `k` and random query ranges;
//! * `csr_restrict_matches_the_nested_reference` — `restrict` /
//!   `restrict_with` (including repeated calls through one recycled
//!   `SkylineScratch`, the zero-alloc hot path) equals the reference's
//!   containment filter *and* a from-scratch rebuild on the sub-range;
//! * `stitched_compose_matches_the_naive_oracle_for_all_algorithms` —
//!   boundary-spanning queries, whose skylines are produced by
//!   `compose_boundary_skyline` emitting CSR directly, return the same
//!   cores as the brute-force enumeration for all four algorithms (the
//!   composed skyline's *content* is pinned by the build/restrict layers
//!   above, since composition is defined to equal a spanning-window build);
//! * `absorb_plus_tail_rebuild_yields_identical_flat_skylines` — after
//!   absorbing an append stream, the flat skylines built over the live
//!   snapshot equal (in label space) those built over a from-scratch graph
//!   of the same events, per shard range and over the full span.

use std::collections::BTreeMap;

use proptest::prelude::*;
use temporal_kcore::prelude::*;
use temporal_kcore::temporal_graph::EdgeId;
use temporal_kcore::tkcore::naive;
use temporal_kcore::tkcore::SkylineScratch;

/// Strategy: a random temporal graph with up to `max_v` vertices, up to
/// `max_e` edges and up to `max_t` distinct timestamps.
fn arb_graph(max_v: u64, max_e: usize, max_t: i64) -> impl Strategy<Value = TemporalGraph> {
    prop::collection::vec((0..max_v, 0..max_v, 1..=max_t), 1..max_e).prop_filter_map(
        "graph must have at least one non-loop edge",
        |edges| {
            let edges: Vec<(u64, u64, i64)> =
                edges.into_iter().filter(|(u, v, _)| u != v).collect();
            if edges.is_empty() {
                return None;
            }
            TemporalGraphBuilder::new().with_edges(edges).build().ok()
        },
    )
}

/// The naive reference: per-edge minimal core windows held in a plain
/// nested map, built by brute force against the peeling oracle.  No offsets,
/// no flat array — only containment logic.
#[derive(Debug, Clone, PartialEq, Eq)]
struct NestedSkyline {
    range: TimeWindow,
    per_edge: BTreeMap<EdgeId, Vec<TimeWindow>>,
}

impl NestedSkyline {
    /// Brute force: for every edge and every window start in `range`, find
    /// the smallest end whose window's k-core contains the edge, then drop
    /// every window that strictly contains another kept window.  Minimality
    /// by containment is exactly Definition 5, computed with no knowledge of
    /// the sweep or the CSR layout.
    fn build(graph: &TemporalGraph, k: usize, range: TimeWindow) -> Self {
        let mut per_edge = BTreeMap::new();
        for id in 0..graph.num_edges() as EdgeId {
            let mut candidates: Vec<TimeWindow> = Vec::new();
            for ts in range.start()..=range.end() {
                let found = (ts..=range.end()).find(|&te| {
                    naive::edge_in_core_of_window(graph, k, TimeWindow::new(ts, te), id)
                });
                if let Some(te) = found {
                    candidates.push(TimeWindow::new(ts, te));
                }
            }
            let minimal: Vec<TimeWindow> = candidates
                .iter()
                .copied()
                .filter(|w| !candidates.iter().any(|o| o != w && w.contains_window(o)))
                .collect();
            if !minimal.is_empty() {
                per_edge.insert(id, minimal);
            }
        }
        Self { range, per_edge }
    }

    /// The reference restriction: the containment filter `{ w : w ⊆ range }`
    /// applied per edge, dropping edges left without windows.
    fn restrict(&self, range: TimeWindow) -> Self {
        assert!(self.range.contains_window(&range));
        let per_edge = self
            .per_edge
            .iter()
            .filter_map(|(&id, windows)| {
                let kept: Vec<TimeWindow> = windows
                    .iter()
                    .copied()
                    .filter(|w| range.contains_window(w))
                    .collect();
                (!kept.is_empty()).then_some((id, kept))
            })
            .collect();
        Self { range, per_edge }
    }
}

/// Flattens a CSR skyline back into the nested shape for comparison, and
/// cross-checks `iter()` against `windows()` plus the summary accessors
/// while doing so.
fn nested_view(skyline: &EdgeCoreSkyline) -> BTreeMap<EdgeId, Vec<TimeWindow>> {
    let mut out = BTreeMap::new();
    let mut total = 0usize;
    for (id, windows) in skyline.iter() {
        assert!(!windows.is_empty(), "iter() must skip window-less edges");
        assert_eq!(
            windows,
            skyline.windows(id),
            "iter() and windows() disagree for edge {id}"
        );
        total += windows.len();
        out.insert(id, windows.to_vec());
    }
    assert_eq!(skyline.total_windows(), total);
    assert_eq!(skyline.num_edges_with_windows(), out.len());
    out
}

fn canonical(mut cores: Vec<TemporalKCore>) -> Vec<TemporalKCore> {
    cores.sort_by(|a, b| a.tti.cmp(&b.tti).then_with(|| a.edges.cmp(&b.edges)));
    cores
}

/// Derives a shard plan from two random parameters, biased toward layouts
/// with many cuts so spanning windows exercise the composed skylines.
fn plan_for(kind: u8, param: usize, tmax: Timestamp) -> ShardPlan {
    match kind % 4 {
        0 => ShardPlan::FixedCount(2 + param % 5),
        1 => ShardPlan::FixedCount(tmax as usize),
        2 => ShardPlan::TargetEdgesPerShard(1 + param % 5),
        _ => {
            let mid = tmax / 2;
            if mid >= 1 && mid < tmax {
                ShardPlan::ExplicitCuts(vec![mid])
            } else {
                ShardPlan::ExplicitCuts(vec![])
            }
        }
    }
}

/// A random sub-window of the graph's span.
fn window_in_span(g: &TemporalGraph, raw_start: u32, raw_len: u32) -> TimeWindow {
    let start = raw_start.max(1).min(g.tmax());
    TimeWindow::new(start, (start + raw_len).min(g.tmax()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// The CSR build equals the brute-force nested reference, over the full
    /// span and a random sub-range.
    #[test]
    fn csr_build_matches_the_nested_reference(
        g in arb_graph(8, 24, 6),
        k in 1usize..4,
        (raw_start, raw_len) in (1u32..=6, 0u32..6),
    ) {
        for range in [g.span(), window_in_span(&g, raw_start, raw_len)] {
            let skyline = EdgeCoreSkyline::build(&g, k, range);
            prop_assert_eq!(skyline.range(), range);
            prop_assert_eq!(skyline.k(), k);
            let reference = NestedSkyline::build(&g, k, range);
            prop_assert_eq!(
                nested_view(&skyline),
                reference.per_edge,
                "k={} range={}",
                k,
                range
            );
        }
    }

    /// `restrict` / `restrict_with` equal the reference containment filter
    /// and a from-scratch rebuild — including repeated restrictions drawing
    /// their buffers from one recycled scratch pool, the allocation-free
    /// path the engines use per query.
    #[test]
    fn csr_restrict_matches_the_nested_reference(
        g in arb_graph(8, 24, 6),
        k in 1usize..4,
        (raw_start, raw_len) in (1u32..=6, 0u32..6),
        (raw_start2, raw_len2) in (1u32..=6, 0u32..6),
    ) {
        let full = EdgeCoreSkyline::build(&g, k, g.span());
        let reference = NestedSkyline::build(&g, k, g.span());
        let mut scratch = SkylineScratch::default();
        for range in [
            window_in_span(&g, raw_start, raw_len),
            window_in_span(&g, raw_start2, raw_len2),
            g.span(),
        ] {
            let restricted = full.restrict(&g, range);
            let via_scratch = full.restrict_with(&g, range, &mut scratch);
            let expected = reference.restrict(range).per_edge;
            prop_assert_eq!(&nested_view(&restricted), &expected, "restrict {}", range);
            prop_assert_eq!(&nested_view(&via_scratch), &expected, "restrict_with {}", range);
            prop_assert_eq!(
                nested_view(&EdgeCoreSkyline::build(&g, k, range)),
                expected,
                "rebuild {}",
                range
            );
            scratch.recycle(via_scratch);
        }
    }

    /// Boundary-spanning queries — whose per-window skylines come out of the
    /// CSR-emitting `compose_boundary_skyline` — agree with the brute-force
    /// enumeration for every algorithm, under random shard plans.
    #[test]
    fn stitched_compose_matches_the_naive_oracle_for_all_algorithms(
        g in arb_graph(8, 24, 6),
        k in 1usize..4,
        (kind, param) in (0u8..4, 0usize..16),
        (raw_start, raw_len) in (1u32..=6, 0u32..6),
    ) {
        let plan = plan_for(kind, param, g.tmax());
        let engine = ShardedEngine::new(g.clone(), plan.clone())
            .expect("derived plans are valid");
        let mut windows = vec![g.span()];
        let random = window_in_span(&g, raw_start, raw_len);
        if random != g.span() {
            windows.push(random);
        }
        for window in windows {
            let query = TimeRangeKCoreQuery::new(k, window).expect("k >= 1");
            let expected = canonical(naive::naive_results(&g, k, window));
            for algo in Algorithm::ALL {
                let mut got = CollectingSink::default();
                engine.run_with(&query, algo, &mut got)
                    .expect("window is inside the span");
                prop_assert_eq!(
                    canonical(got.cores),
                    expected.clone(),
                    "plan={:?} k={} window={} algo={}",
                    plan, k, window, algo
                );
            }
        }
    }
}

/// Label events: `(u, v, t)` triples in label space.
type Events = Vec<(u64, u64, Timestamp)>;

/// A core-forming base clique plus a strictly-ordered append stream: the
/// stream's timestamps start past the base `tmax` and strictly increase, so
/// a single `absorb` accepts it without shifting.
fn arb_base_and_stream() -> impl Strategy<Value = (Events, Events)> {
    (
        prop::collection::vec((0u64..6, 0u64..6, 1u32..=5), 1..20),
        prop::collection::vec((0u64..8, 0u64..8, 1u32..3), 1..10),
    )
        .prop_filter_map("need a non-loop base edge", |(base, raw_stream)| {
            let mut seen = std::collections::HashSet::new();
            let base: Events = base
                .into_iter()
                .filter(|&(u, v, t)| u != v && seen.insert((u.min(v), u.max(v), t)))
                .collect();
            if base.is_empty() {
                return None;
            }
            let mut t = base.iter().map(|&(_, _, t)| t).max().unwrap_or(1);
            let mut stream = Vec::new();
            for (u, v, dt) in raw_stream {
                t += dt;
                if u != v {
                    stream.push((u, v, t));
                }
            }
            if stream.is_empty() {
                return None;
            }
            Some((base, stream))
        })
}

/// Builds a graph from raw `(u, v, t)` label events without timestamp
/// compression, so the rebuilt timeline matches the appended one.
fn raw_graph(events: &[(u64, u64, Timestamp)]) -> TemporalGraph {
    TemporalGraphBuilder::new()
        .timestamp_mode(TimestampMode::Raw)
        .with_edges(events.iter().map(|&(u, v, t)| (u, v, i64::from(t))))
        .build()
        .expect("harness events form a valid graph")
}

/// Projects a skyline into label space: vertex ids differ between an
/// appended graph (first-seen order) and a from-scratch rebuild (sorted
/// label order), but `(labels, timestamp) → windows` must agree exactly.
fn label_windows(
    g: &TemporalGraph,
    skyline: &EdgeCoreSkyline,
) -> Vec<((u64, u64, Timestamp), Vec<TimeWindow>)> {
    let mut out: Vec<((u64, u64, Timestamp), Vec<TimeWindow>)> = skyline
        .iter()
        .map(|(id, windows)| {
            let e = g.edge(id);
            let (a, b) = (g.label(e.u), g.label(e.v));
            ((a.min(b), a.max(b), e.t), windows.to_vec())
        })
        .collect();
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Absorbing an append stream and rebuilding the tail must leave the
    /// engine's snapshot with flat skylines identical (in label space) to
    /// those of a from-scratch graph over the same events — per shard range
    /// and over the full live span.
    #[test]
    fn absorb_plus_tail_rebuild_yields_identical_flat_skylines(
        (base, stream) in arb_base_and_stream(),
        k in 1usize..4,
        shards in 1usize..4,
    ) {
        let live = ShardedEngine::new(raw_graph(&base), ShardPlan::FixedCount(shards))
            .expect("fixed-count plans are valid");
        // Warm the caches first so the absorb exercises the tail
        // purge-and-rebuild path rather than a cold build.
        live.warm(k);
        let stats = live.absorb(&stream).expect("stream is strictly ordered");
        prop_assert_eq!(stats.appended, stream.len());

        let mut all = base.clone();
        all.extend_from_slice(&stream);
        let snapshot = live.graph();
        let reference = raw_graph(&all);
        prop_assert_eq!(snapshot.tmax(), reference.tmax());

        let mut ranges = live.shards();
        ranges.push(snapshot.span());
        for range in ranges {
            let via_live = EdgeCoreSkyline::build(&snapshot, k, range);
            let via_scratch_rebuild = EdgeCoreSkyline::build(&reference, k, range);
            prop_assert_eq!(
                label_windows(&snapshot, &via_live),
                label_windows(&reference, &via_scratch_rebuild),
                "k={} range={} shards={}",
                k, range, shards
            );
        }

        // And the live query path (which serves the rebuilt tail skyline
        // from its cache) agrees with the naive oracle on the full span.
        let query = TimeRangeKCoreQuery::new(k, snapshot.span()).expect("k >= 1");
        let mut got = CollectingSink::default();
        live.run(&query, &mut got).expect("span query is valid");
        let mut expected = CollectingSink::default();
        query.run_with(&reference, Algorithm::Enum, &mut expected);
        prop_assert_eq!(got.cores.len(), expected.cores.len());
    }
}

/// Deterministic spot-check on the paper-example graph: the CSR build
/// matches the nested reference exactly, including the degenerate
/// empty-projection case past `tmax`.
#[test]
fn paper_example_matches_reference_and_past_tmax_is_empty() {
    let g = temporal_kcore::tkcore::paper_example::graph();
    let skyline = EdgeCoreSkyline::build(&g, 2, g.span());
    let reference = NestedSkyline::build(&g, 2, g.span());
    assert_eq!(nested_view(&skyline), reference.per_edge);
    assert!(skyline.total_windows() > 0, "paper example has 2-cores");

    let past = TimeWindow::new(g.tmax() + 1, g.tmax() + 3);
    let empty = EdgeCoreSkyline::build(&g, 2, past);
    assert_eq!(
        empty.range(),
        past,
        "empty skyline echoes the requested range"
    );
    assert_eq!(empty.total_windows(), 0);
    assert_eq!(empty.iter().count(), 0);
    assert_eq!(empty.memory_bytes(), 0);
}
