//! The cross-shard correctness harness: a time-interval `ShardedEngine`
//! must be indistinguishable from the span-wide `QueryEngine` on every
//! query, for every shard plan.
//!
//! Two layers of evidence:
//!
//! * `sharded_matches_unsharded` — the property test of the sharding PR:
//!   random graphs, random shard plans (including the degenerate one-shard
//!   and one-shard-per-timestamp layouts), all four algorithms and the
//!   `CachedBackend`/`ShardedBackend` pair; every `(k, window)` query must
//!   return identical cores and counts through both engines.  The sharded
//!   engine runs with its default boundary-stitch cache, so the property
//!   also proves the stitched boundary pass exact (the dedicated
//!   `boundary_index` harness additionally compares it against the
//!   transient-merge path);
//! * `affine_service_matches_unsharded` — the same equivalence through a
//!   shard-affinity multi-worker `CoreService` (per-shard lanes, stealing),
//!   proving the scheduler never changes answers;
//! * boundary regression tests on the paper's running example: windows that
//!   exactly coincide with a shard cut, span one cut, span every cut, and
//!   start past `tmax` (which must stay a typed `WindowPastTmax` refusal,
//!   never a partial answer from the last shard).

use proptest::prelude::*;
use std::sync::Arc;
use temporal_kcore::prelude::*;
use temporal_kcore::tkcore::paper_example;

/// Strategy: a random temporal graph with up to `max_v` vertices, up to
/// `max_e` edges and up to `max_t` distinct timestamps.
fn arb_graph(max_v: u64, max_e: usize, max_t: i64) -> impl Strategy<Value = TemporalGraph> {
    prop::collection::vec((0..max_v, 0..max_v, 1..=max_t), 1..max_e).prop_filter_map(
        "graph must have at least one non-loop edge",
        |edges| {
            let edges: Vec<(u64, u64, i64)> =
                edges.into_iter().filter(|(u, v, _)| u != v).collect();
            if edges.is_empty() {
                return None;
            }
            TemporalGraphBuilder::new().with_edges(edges).build().ok()
        },
    )
}

fn canonical(mut cores: Vec<TemporalKCore>) -> Vec<TemporalKCore> {
    cores.sort_by(|a, b| a.tti.cmp(&b.tti).then_with(|| a.edges.cmp(&b.edges)));
    cores
}

/// Derives a shard plan from two random parameters, covering every
/// [`ShardPlan`] variant including the degenerate layouts the issue calls
/// out: a single shard and one shard per timestamp.
fn plan_for(kind: u8, param: usize, tmax: Timestamp) -> ShardPlan {
    match kind % 5 {
        0 => ShardPlan::FixedCount(1),
        1 => ShardPlan::FixedCount(2 + param % 5),
        // One shard per timestamp: every inter-timestamp boundary is a cut.
        2 => ShardPlan::FixedCount(tmax as usize),
        3 => ShardPlan::TargetEdgesPerShard(1 + param % 7),
        _ => {
            // An explicit cut roughly mid-span (no cut on a 1-long span).
            let mid = tmax / 2;
            if mid >= 1 && mid < tmax {
                ShardPlan::ExplicitCuts(vec![mid])
            } else {
                ShardPlan::ExplicitCuts(vec![])
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For random graphs, random shard plans and every algorithm, every
    /// `(k, window)` query returns identical cores and counts through the
    /// `ShardedEngine` and the span-wide `QueryEngine`.
    #[test]
    fn sharded_matches_unsharded(
        g in arb_graph(10, 40, 8),
        k in 1usize..4,
        (kind, param) in (0u8..5, 0usize..16),
        (raw_start, raw_len) in (1u32..=8, 0u32..8),
    ) {
        let plan = plan_for(kind, param, g.tmax());
        let span_engine = QueryEngine::new(g.clone());
        let sharded = ShardedEngine::new(g.clone(), plan.clone())
            .expect("derived plans are valid");

        // The full span plus a random sub-window (clamped into the span so
        // it stays a valid query; degenerate single-timestamp windows
        // included via raw_len = 0).
        let start = raw_start.min(g.tmax());
        let random = TimeWindow::new(start, (start + raw_len).min(g.tmax()));
        let mut windows = vec![g.span()];
        if random != g.span() {
            windows.push(random);
        }

        for window in windows {
            let query = TimeRangeKCoreQuery::new(k, window).expect("k >= 1");
            for algo in Algorithm::ALL {
                let mut expected = CollectingSink::default();
                span_engine.run_with(&query, algo, &mut expected)
                    .expect("window is inside the span");
                let mut got = CollectingSink::default();
                sharded.run_with(&query, algo, &mut got)
                    .expect("window is inside the span");
                prop_assert_eq!(
                    canonical(got.cores),
                    canonical(expected.cores),
                    "{:?} k={} window={} algo={}",
                    plan, k, window, algo
                );
            }
        }

        // The two backend wrappers agree as well (same CoreBackend surface
        // the request/serving layers drive).
        let span_arc = Arc::new(span_engine);
        let sharded_arc = Arc::new(sharded);
        let cached = CachedBackend::new(Arc::clone(&span_arc));
        let sharded_backend = ShardedBackend::new(Arc::clone(&sharded_arc));
        let mut a = CollectingSink::default();
        let stats_a = cached
            .execute(span_arc.graph(), k, g.span(), &mut a)
            .expect("span query is valid");
        let mut b = CollectingSink::default();
        let stats_b = sharded_backend
            .execute(&sharded_arc.graph(), k, g.span(), &mut b)
            .expect("span query is valid");
        prop_assert_eq!(canonical(a.cores), canonical(b.cores), "{:?} k={}", plan, k);
        prop_assert_eq!(stats_a.num_cores, stats_b.num_cores);
        prop_assert_eq!(stats_a.total_result_edges, stats_b.total_result_edges);
    }

    /// The shard-affinity scheduler (per-shard lanes + work stealing) never
    /// changes answers: a 2-worker `Affinity::Shard` service over a sharded
    /// engine returns the same cores as the unsharded engine for random
    /// graphs, plans and windows.
    #[test]
    fn affine_service_matches_unsharded(
        g in arb_graph(10, 40, 8),
        k in 1usize..4,
        (kind, param) in (0u8..5, 0usize..16),
        (raw_start, raw_len) in (1u32..=8, 0u32..8),
    ) {
        let plan = plan_for(kind, param, g.tmax());
        let span_engine = QueryEngine::new(g.clone());
        let sharded = Arc::new(
            ShardedEngine::new(g.clone(), plan.clone()).expect("derived plans are valid"),
        );
        let service = CoreService::over_sharded(
            Arc::clone(&sharded),
            ServiceConfig {
                workers: 2,
                affinity: Affinity::Shard,
                ..ServiceConfig::default()
            },
        );

        let start = raw_start.min(g.tmax());
        let window = TimeWindow::new(start, (start + raw_len).min(g.tmax()));
        for window in [g.span(), window] {
            let query = TimeRangeKCoreQuery::new(k, window).expect("k >= 1");
            let mut expected = CollectingSink::default();
            span_engine.run_with(&query, Algorithm::Enum, &mut expected)
                .expect("window is inside the span");
            let reply = service
                .submit(
                    QueryRequest::single(k, window.start(), window.end()).materialize(),
                )
                .expect("valid request is admitted")
                .wait()
                .expect("request completes");
            let KOutput::Cores(cores) = &reply.response.outcomes[0].output else {
                panic!("materialized request");
            };
            prop_assert_eq!(
                canonical(cores.clone()),
                canonical(expected.cores),
                "{:?} k={} window={}",
                plan, k, window
            );
        }
        service.shutdown();
    }
}

/// The boundary fixture: paper-example graph (`tmax = 7`) cut after
/// timestamps 2 and 4, giving shards `[1,2] [3,4] [5,7]`.
fn boundary_fixture() -> (TemporalGraph, ShardedEngine) {
    let g = paper_example::graph();
    let engine = ShardedEngine::new(g.clone(), ShardPlan::ExplicitCuts(vec![2, 4]))
        .expect("cuts are inside the span");
    assert_eq!(
        engine.shards(),
        &[
            TimeWindow::new(1, 2),
            TimeWindow::new(3, 4),
            TimeWindow::new(5, 7)
        ]
    );
    (g, engine)
}

fn assert_window_matches_span_wide(g: &TemporalGraph, engine: &ShardedEngine, window: TimeWindow) {
    for k in 1..=3 {
        let query = TimeRangeKCoreQuery::new(k, window).unwrap();
        for algo in Algorithm::ALL {
            let mut expected = CollectingSink::default();
            query.run_with(g, algo, &mut expected);
            let mut got = CollectingSink::default();
            let stats = engine.run_with(&query, algo, &mut got).unwrap();
            assert_eq!(
                canonical(got.cores.clone()),
                canonical(expected.cores.clone()),
                "k={k} window={window} algo={algo}"
            );
            assert_eq!(stats.num_cores as usize, expected.cores.len());
        }
    }
}

#[test]
fn window_coinciding_with_a_shard_cut_needs_no_stitching() {
    let (g, engine) = boundary_fixture();
    // Both windows align exactly with shard boundaries.
    assert_window_matches_span_wide(&g, &engine, TimeWindow::new(1, 2));
    assert_window_matches_span_wide(&g, &engine, TimeWindow::new(3, 4));
    // A window ending exactly at a cut never touches the following shard
    // (fresh engine: build counters are cumulative).
    let (_, engine) = boundary_fixture();
    let mut sink = CountingSink::default();
    engine
        .run(
            &TimeRangeKCoreQuery::new(2, TimeWindow::new(3, 4)).unwrap(),
            &mut sink,
        )
        .unwrap();
    let stats = engine.cache_stats();
    assert_eq!(stats.per_shard[0].builds + stats.per_shard[2].builds, 0);
    assert_eq!(stats.per_shard[1].builds, 1);
}

#[test]
fn window_spanning_one_cut_is_stitched_exactly() {
    let (g, engine) = boundary_fixture();
    // [2, 4] crosses only the cut after 2; [4, 6] only the cut after 4.
    assert_window_matches_span_wide(&g, &engine, TimeWindow::new(2, 4));
    assert_window_matches_span_wide(&g, &engine, TimeWindow::new(4, 6));
}

#[test]
fn window_spanning_all_cuts_is_stitched_exactly() {
    let (g, engine) = boundary_fixture();
    assert_window_matches_span_wide(&g, &engine, g.span());
    assert_window_matches_span_wide(&g, &engine, TimeWindow::new(2, 6));
}

#[test]
fn window_past_tmax_is_refused_not_answered_from_the_last_shard() {
    let (g, engine) = boundary_fixture();
    let past = TimeRangeKCoreQuery::new(2, TimeWindow::new(g.tmax() + 1, g.tmax() + 5)).unwrap();
    for algo in Algorithm::ALL {
        let mut sink = CountingSink::default();
        let err = engine.run_with(&past, algo, &mut sink).unwrap_err();
        assert!(
            matches!(err, TkError::WindowPastTmax { start, tmax }
                if start == g.tmax() + 1 && tmax == g.tmax()),
            "{algo}: {err}"
        );
        assert_eq!(sink.num_cores, 0, "{algo}: no partial answer");
    }
    // The refusal happened before any shard skyline was built.
    assert_eq!(engine.cache_stats().misses, 0);

    // Same refusal through the backend/request surface.
    let backend = ShardedBackend::new(Arc::new(engine));
    assert!(matches!(
        QueryRequest::single(2, g.tmax() + 1, g.tmax() + 5).run(&g, &backend),
        Err(TkError::WindowPastTmax { .. })
    ));
}

#[test]
fn single_timestamp_shards_still_answer_spanning_windows() {
    let g = paper_example::graph();
    let engine = ShardedEngine::new(g.clone(), ShardPlan::FixedCount(g.tmax() as usize)).unwrap();
    assert_eq!(engine.num_shards(), g.tmax() as usize);
    assert_window_matches_span_wide(&g, &engine, g.span());
    assert_window_matches_span_wide(&g, &engine, TimeWindow::new(4, 4));
}
