//! Integration tests for the cached batch-query engine through the public
//! facade: cached/restricted answers equal fresh per-query runs on realistic
//! workloads, batches aggregate correctly, and the cache behaves.

use temporal_kcore::prelude::*;

fn workload_queries(
    graph: &TemporalGraph,
    num: usize,
    seed: u64,
) -> (usize, Vec<TimeRangeKCoreQuery>) {
    let stats = DatasetStats::compute(graph);
    let config = WorkloadConfig::paper_default(&stats, num, seed);
    let workload = QueryWorkload::generate(graph, &config);
    (workload.k, workload.queries().collect())
}

#[test]
fn warm_batches_match_fresh_per_query_runs_for_every_algorithm() {
    let graph = DatasetProfile::by_name("FB").unwrap().generate();
    let (_, queries) = workload_queries(&graph, 6, 0xE26);
    let engine = QueryEngine::new(graph.clone());
    for algorithm in [Algorithm::Enum, Algorithm::EnumBase, Algorithm::Otcd] {
        let (results, batch) = engine
            .run_batch_with(&queries, algorithm, |_| CountingSink::default())
            .unwrap();
        assert_eq!(batch.num_queries, queries.len());
        let mut expected_cores = 0u64;
        let mut expected_edges = 0u64;
        for (query, (sink, stats)) in queries.iter().zip(&results) {
            let mut fresh = CountingSink::default();
            query.run_with(&graph, algorithm, &mut fresh);
            assert_eq!(sink, &fresh, "{} {}", algorithm.name(), query.range());
            assert_eq!(stats.num_cores, fresh.num_cores);
            assert_eq!(stats.total_result_edges, fresh.total_edges);
            expected_cores += fresh.num_cores;
            expected_edges += fresh.total_edges;
        }
        assert_eq!(batch.total_cores, expected_cores, "{}", algorithm.name());
        assert_eq!(batch.total_result_edges, expected_edges);
    }
}

#[test]
fn one_span_build_serves_the_whole_batch_and_repeats_hit() {
    let graph = DatasetProfile::by_name("FB").unwrap().generate();
    let (_, queries) = workload_queries(&graph, 5, 0xCAFE);
    // Single worker: concurrent cold queries for one k may each count a
    // miss (documented build race), so exact counter assertions need the
    // sequential path.
    let engine = QueryEngine::with_config(
        graph.clone(),
        EngineConfig {
            num_threads: 1,
            ..EngineConfig::default()
        },
    );

    let (_, first) = engine.run_batch(&queries).unwrap();
    assert_eq!(first.cache.misses, 1, "all queries share one k");
    assert_eq!(first.cache.hits as usize, queries.len() - 1);

    let (_, second) = engine.run_batch(&queries).unwrap();
    assert_eq!(second.cache.misses, 1, "steady state never rebuilds");
    assert_eq!(second.cache.hits as usize, 2 * queries.len() - 1);
    assert_eq!(second.cache.resident_indexes, 1);
    assert_eq!(first.total_cores, second.total_cores);
}

#[test]
fn mixed_k_batch_caches_one_index_per_k() {
    let graph = DatasetProfile::by_name("FB").unwrap().generate();
    let stats = DatasetStats::compute(&graph);
    let span = graph.span();
    let queries: Vec<TimeRangeKCoreQuery> = [20u32, 30, 40]
        .iter()
        .flat_map(|&p| {
            let k = stats.k_for_percent(p);
            [
                TimeRangeKCoreQuery::new(k, span).unwrap(),
                TimeRangeKCoreQuery::new(k, TimeWindow::new(1, span.end() / 2)).unwrap(),
            ]
        })
        .collect();
    // Single worker for deterministic per-k miss counters (see above).
    let engine = QueryEngine::with_config(
        graph.clone(),
        EngineConfig {
            num_threads: 1,
            ..EngineConfig::default()
        },
    );
    let (results, batch) = engine.run_batch(&queries).unwrap();
    let distinct_k = {
        let mut ks: Vec<usize> = queries.iter().map(|q| q.k()).collect();
        ks.sort_unstable();
        ks.dedup();
        ks.len()
    };
    assert_eq!(batch.cache.misses as usize, distinct_k);
    assert_eq!(batch.cache.resident_indexes, distinct_k);
    for (query, (sink, _)) in queries.iter().zip(&results) {
        let mut fresh = CountingSink::default();
        query.run_with(&graph, Algorithm::Enum, &mut fresh);
        assert_eq!(sink, &fresh, "k={} {}", query.k(), query.range());
    }
}

#[test]
fn out_of_span_and_overhanging_ranges_are_handled() {
    let graph = DatasetProfile::by_name("FB").unwrap().generate();
    let engine = QueryEngine::new(graph.clone());
    let tmax = graph.tmax();

    // Entirely past the end: a typed refusal, no index build.
    let mut sink = CountingSink::default();
    let err = engine
        .run(
            &TimeRangeKCoreQuery::new(2, TimeWindow::new(tmax + 1, tmax + 500)).unwrap(),
            &mut sink,
        )
        .unwrap_err();
    assert!(
        matches!(err, TkError::WindowPastTmax { start, tmax: t } if start == tmax + 1 && t == tmax),
        "{err}"
    );
    assert_eq!(sink.num_cores, 0);
    assert_eq!(engine.cache_stats().misses, 0);

    // Overhanging the end: same answer as the clamped range.
    let overhang = TimeRangeKCoreQuery::new(2, TimeWindow::new(tmax / 2, tmax + 500)).unwrap();
    let clamped = TimeRangeKCoreQuery::new(2, TimeWindow::new(tmax / 2, tmax)).unwrap();
    let mut a = CountingSink::default();
    engine.run(&overhang, &mut a).unwrap();
    let mut b = CountingSink::default();
    clamped.run_with(&graph, Algorithm::Enum, &mut b);
    assert_eq!(a, b);
}

#[test]
fn collecting_batch_returns_canonical_cores() {
    let graph = DatasetProfile::by_name("BO").unwrap().generate();
    let (_, queries) = workload_queries(&graph, 4, 7);
    let engine = QueryEngine::new(graph.clone());
    let (results, _) = engine
        .run_batch_with(&queries, Algorithm::Enum, |_| CollectingSink::default())
        .unwrap();
    for (query, (sink, _stats)) in queries.iter().zip(results) {
        let mut fresh = CollectingSink::default();
        query.run_with(&graph, Algorithm::Enum, &mut fresh);
        assert_eq!(sink.into_sorted(), fresh.into_sorted(), "{}", query.range());
    }
}
