//! Integration test for `CoreService` admission control: under a 1-deep
//! queue, the overflow request is rejected with `TkError::BudgetExceeded`
//! while the admitted ones complete.
//!
//! Determinism: the first request uses `OutputMode::Stream` with a sink
//! that blocks inside `emit` until the test releases it, pinning the worker
//! mid-execution.  While the worker is pinned, the queue (depth 1) holds
//! exactly one more admitted request, so a third submission must be refused
//! — no sleeps or timing assumptions involved.

use std::sync::mpsc;
use temporal_kcore::prelude::*;
use temporal_kcore::tkcore::paper_example;

/// A sink that reports when the first core arrives and then blocks until
/// released, holding the service worker inside the request.
struct GatedSink {
    started: mpsc::Sender<()>,
    release: mpsc::Receiver<()>,
    blocked_once: bool,
    emitted: u64,
}

impl ResultSink for GatedSink {
    fn emit(&mut self, _tti: TimeWindow, _edges: &[temporal_graph::EdgeId]) {
        self.emitted += 1;
        if !self.blocked_once {
            self.blocked_once = true;
            self.started.send(()).expect("test is listening");
            self.release.recv().expect("test releases the sink");
        }
    }
}

#[test]
fn one_deep_queue_rejects_overflow_with_budget_exceeded() {
    let service = CoreService::start(
        paper_example::graph(),
        ServiceConfig {
            queue_depth: 1,
            ..ServiceConfig::default()
        },
    );

    let (started_tx, started_rx) = mpsc::channel();
    let (release_tx, release_rx) = mpsc::channel();
    let gated = GatedSink {
        started: started_tx,
        release: release_rx,
        blocked_once: false,
        emitted: 0,
    };

    // Request A: admitted; the paper query emits cores, so the gated sink
    // will pin the worker on the first emit.
    let ticket_a = service
        .submit(QueryRequest::single(2, 1, 4).stream(Box::new(gated)))
        .expect("A is admitted");
    // Wait until the worker is provably inside A's execution.
    started_rx.recv().expect("A reached its first core");

    // Request B: admitted into the (now empty) 1-deep queue.
    let ticket_b = service
        .submit(QueryRequest::single(2, 1, 4))
        .expect("B fits in the queue");

    // Request C: the queue is full — refused with a typed budget error.
    let err = service
        .submit(QueryRequest::single(2, 1, 4))
        .expect_err("C overflows the 1-deep queue");
    assert!(
        matches!(
            err,
            TkError::BudgetExceeded {
                resource: "request queue",
                limit: 1,
            }
        ),
        "{err}"
    );

    // Release the worker; both admitted requests complete normally.
    release_tx.send(()).expect("worker is waiting");
    let reply_a = ticket_a.wait().expect("A completes");
    assert_eq!(reply_a.response.total_cores(), 2);
    let sink = reply_a.response.sink.expect("stream sink is handed back");
    // The sink is returned as the trait object it went in as; its counters
    // are still observable through QueryStats above.
    drop(sink);
    let reply_b = ticket_b.wait().expect("B completes");
    assert_eq!(reply_b.response.total_cores(), 2);

    let stats = service.stats();
    assert_eq!(stats.admitted, 2);
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.max_queue_depth, 1);
    service.shutdown();
}

#[test]
fn service_replies_carry_request_ids_and_latencies() {
    let service = CoreService::start(paper_example::graph(), ServiceConfig::default());
    let t1 = service.submit(QueryRequest::sweep(1..=2, 1, 7)).unwrap();
    let t2 = service.submit(QueryRequest::single(2, 2, 5)).unwrap();
    assert_ne!(t1.id, t2.id, "ids are unique per request");
    let r1 = t1.wait().unwrap();
    let r2 = t2.wait().unwrap();
    assert_eq!(r1.response.outcomes.len(), 2);
    assert_eq!(r2.response.outcomes.len(), 1);
    let stats = service.stats();
    assert_eq!(stats.completed, 2);
    assert!(stats.execute_total >= r1.execute_time);
    service.shutdown();
}
