//! In-process round trip through the TCP front end: a `TkServer` on an
//! ephemeral loopback port serves pings, queries (including a
//! deadline-expired one, which is an error *reply*, not a dropped
//! connection), stats and malformed lines, then drains gracefully on the
//! `shutdown` op.
//!
//! The server's accept loop runs on a plain test thread (integration tests
//! are exempt from the no-raw-threads rule); everything else rides the
//! server's own pools.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use temporal_kcore::prelude::*;
use temporal_kcore::tkcore::paper_example;

/// Sends `line` on `stream` and reads the single reply line.
fn round_trip(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
    writeln!(stream, "{line}").expect("send");
    stream.flush().expect("flush");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("reply");
    assert!(
        reply.ends_with('\n'),
        "replies are line-delimited: {reply:?}"
    );
    reply.trim_end().to_string()
}

#[test]
fn tcp_round_trip_serves_queries_deadlines_and_drains() {
    let service = Arc::new(CoreService::start(
        paper_example::graph(),
        ServiceConfig::default(),
    ));
    let server = Arc::new(
        TkServer::bind(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default()).unwrap(),
    );
    let addr = server.local_addr();
    let acceptor = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.serve())
    };

    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    // Liveness.
    let reply = round_trip(&mut stream, &mut reader, r#"{"op": "ping"}"#);
    assert_eq!(reply, r#"{"status":"ok","op":"ping"}"#);

    // A served query echoes the client id and counts the paper's 2-cores.
    let reply = round_trip(
        &mut stream,
        &mut reader,
        r#"{"id": 5, "k": 2, "start": 1, "end": 4}"#,
    );
    assert!(reply.starts_with(r#"{"status":"ok","id":5"#), "{reply}");
    assert!(reply.contains(r#""outcomes":[{"k":2,"cores":2"#), "{reply}");

    // A materialized batch-lane sweep embeds core samples.
    let reply = round_trip(
        &mut stream,
        &mut reader,
        r#"{"k_min": 1, "k_max": 2, "start": 1, "end": 4, "lane": "batch", "output": "cores"}"#,
    );
    assert!(reply.contains(r#""sample":[{"tti":"#), "{reply}");

    // An expired deadline is shed with a typed error reply on a live
    // connection — shedding is data, not a transport failure.
    let reply = round_trip(
        &mut stream,
        &mut reader,
        r#"{"id": 6, "k": 2, "start": 1, "end": 4, "deadline_ms": 0}"#,
    );
    assert!(reply.starts_with(r#"{"status":"error","id":6"#), "{reply}");
    assert!(reply.contains(r#""error":"DeadlineExceeded""#), "{reply}");

    // Malformed lines reply BadRequest and keep the connection open.
    let reply = round_trip(&mut stream, &mut reader, r#"{"k": 2, "start": 1}"#);
    assert!(reply.contains(r#""error":"BadRequest""#), "{reply}");
    let reply = round_trip(&mut stream, &mut reader, "not json at all");
    assert!(reply.contains(r#""error":"BadRequest""#), "{reply}");

    // The stats op reports the movement so far, broken out per lane: one
    // served interactive query (the shed zero-deadline one was never
    // admitted) and one served batch sweep.
    let reply = round_trip(&mut stream, &mut reader, r#"{"op": "stats"}"#);
    assert!(
        reply.contains(r#""lanes":{"interactive":{"admitted":1,"completed":1,"shed":1"#),
        "{reply}"
    );
    assert!(
        reply.contains(r#""batch":{"admitted":1,"completed":1"#),
        "{reply}"
    );

    // Graceful drain: the shutdown op is acked, then the server stops
    // accepting and `serve` returns once in-flight connections finish.
    let reply = round_trip(&mut stream, &mut reader, r#"{"op": "shutdown"}"#);
    assert_eq!(reply, r#"{"status":"ok","op":"shutdown"}"#);
    let summary = acceptor
        .join()
        .expect("acceptor thread exits cleanly")
        .expect("serve returns Ok on drain");
    assert_eq!(summary.connections, 1);
    assert_eq!(summary.requests, 8);

    // The service survives the server and still answers directly.
    let reply = service
        .submit(QueryRequest::single(2, 1, 4))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(reply.response.total_cores(), 2);
}

#[test]
fn a_cut_connection_gets_a_truncated_line_reply() {
    let service = Arc::new(CoreService::start(
        paper_example::graph(),
        ServiceConfig::default(),
    ));
    let server = Arc::new(
        TkServer::bind(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default()).unwrap(),
    );
    let addr = server.local_addr();
    let acceptor = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.serve())
    };

    // Write half a request and hang up the sending side: the server must
    // name the truncation instead of silently dropping the fragment.
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    stream
        .write_all(br#"{"op": "ping""#)
        .expect("partial write");
    stream.flush().expect("flush");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("cut the sending half");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("reply");
    assert!(reply.contains(r#""error":"BadRequest""#), "{reply}");
    assert!(reply.contains("truncated final request line"), "{reply}");

    server.stop();
    acceptor
        .join()
        .expect("acceptor thread exits cleanly")
        .expect("serve returns Ok on stop");
}
