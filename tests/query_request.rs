//! Acceptance tests for the unified request API through the public facade:
//! every algorithm and the cached engine are reachable via
//! `CoreBackend`/`QueryRequest` alone, a k-range sweep over the paper
//! example builds at most one skyline per k (asserted via `CacheStats`),
//! and malformed input yields typed errors, never panics.

use std::sync::Arc;
use temporal_kcore::prelude::*;
use temporal_kcore::tkcore::paper_example;

#[test]
fn k_range_sweep_reuses_one_skyline_build_per_k() {
    let graph = paper_example::graph();
    let engine = Arc::new(QueryEngine::new(graph.clone()));
    let backend = CachedBackend::new(Arc::clone(&engine));

    let response = QueryRequest::sweep(1..=3, 1, 7)
        .run(&graph, &backend)
        .unwrap();

    // Per-k stats, in sweep order.
    let ks: Vec<usize> = response.outcomes.iter().map(|o| o.k).collect();
    assert_eq!(ks, vec![1, 2, 3]);
    for outcome in &response.outcomes {
        assert_eq!(outcome.stats.algorithm, Algorithm::Enum);
        let KOutput::Counts(counts) = &outcome.output else {
            panic!("count is the default output mode");
        };
        assert_eq!(counts.num_cores, outcome.stats.num_cores);
        // Each k agrees with the brute-force reference.
        let expected = temporal_kcore::tkcore::naive_results(&graph, outcome.k, graph.span());
        assert_eq!(
            outcome.stats.num_cores as usize,
            expected.len(),
            "k = {}",
            outcome.k
        );
    }

    // At most one span-wide skyline build per k of the sweep.
    let cache = engine.cache_stats();
    assert_eq!(cache.misses, 3, "{cache:?}");

    // Re-running the sweep is pure cache hits: still one build per k.
    let again = QueryRequest::sweep(1..=3, 1, 7)
        .run(&graph, &backend)
        .unwrap();
    assert_eq!(again.total_cores(), response.total_cores());
    let cache = engine.cache_stats();
    assert_eq!(cache.misses, 3, "no rebuild on the second sweep: {cache:?}");
    assert!(cache.hits >= 3);
}

#[test]
fn sharded_sweep_builds_only_the_touched_shards_per_k() {
    let graph = paper_example::graph(); // tmax = 7
    let engine = Arc::new(ShardedEngine::new(graph.clone(), ShardPlan::FixedCount(4)).unwrap());
    // FixedCount(4) over [1, 7] resolves to [1,1] [2,3] [4,5] [6,7].
    assert_eq!(engine.num_shards(), 4);
    let backend = ShardedBackend::new(Arc::clone(&engine));

    // The window [4, 7] touches shards 2 and 3 only.
    let response = QueryRequest::sweep(1..=3, 4, 7)
        .run(&engine.graph(), &backend)
        .unwrap();
    assert_eq!(response.outcomes.len(), 3);
    for outcome in &response.outcomes {
        let expected =
            temporal_kcore::tkcore::naive_results(&graph, outcome.k, TimeWindow::new(4, 7));
        assert_eq!(
            outcome.stats.num_cores as usize,
            expected.len(),
            "k = {}",
            outcome.k
        );
    }

    // A window touching 2 of 4 shards builds exactly 2 shard skylines per
    // k of the sweep — the untouched shards stay cold.
    let cache = engine.cache_stats();
    let builds: Vec<u64> = cache.per_shard.iter().map(|s| s.builds).collect();
    assert_eq!(builds, vec![0, 0, 3, 3], "{cache:?}");
    assert_eq!(cache.misses, 6, "2 shard misses per k: {cache:?}");

    // Re-running the sweep is pure cache hits: no shard is rebuilt.
    let again = QueryRequest::sweep(1..=3, 4, 7)
        .run(&engine.graph(), &backend)
        .unwrap();
    assert_eq!(again.total_cores(), response.total_cores());
    let cache = engine.cache_stats();
    let builds: Vec<u64> = cache.per_shard.iter().map(|s| s.builds).collect();
    assert_eq!(builds, vec![0, 0, 3, 3], "no rebuild: {cache:?}");
    assert!(cache.hits >= 6, "{cache:?}");
}

#[test]
fn all_backends_answer_the_paper_query_identically() {
    let graph = paper_example::graph();
    let engine = Arc::new(QueryEngine::new(graph.clone()));
    let backends: Vec<Box<dyn CoreBackend>> = vec![
        Box::new(Algorithm::Enum),
        Box::new(Algorithm::EnumBase),
        Box::new(Algorithm::Otcd),
        Box::new(Algorithm::Naive),
        Box::new(CachedBackend::new(Arc::clone(&engine))),
        Box::new(CachedBackend::with_algorithm(
            Arc::clone(&engine),
            Algorithm::EnumBase,
        )),
        Box::new(ShardedBackend::new(Arc::new(
            ShardedEngine::new(graph.clone(), ShardPlan::FixedCount(3)).unwrap(),
        ))),
        Box::new(ShardedBackend::with_algorithm(
            Arc::new(
                ShardedEngine::new(graph.clone(), ShardPlan::ExplicitCuts(vec![2, 4])).unwrap(),
            ),
            Algorithm::EnumBase,
        )),
    ];
    let mut reference: Option<Vec<TemporalKCore>> = None;
    for backend in &backends {
        let response = QueryRequest::single(2, 1, 4)
            .materialize()
            .run(&graph, backend.as_ref())
            .unwrap();
        let KOutput::Cores(cores) = &response.outcomes[0].output else {
            panic!("materialized request");
        };
        assert_eq!(cores.len(), 2, "{}", backend.name());
        match &reference {
            None => reference = Some(cores.clone()),
            Some(expected) => assert_eq!(cores, expected, "{}", backend.name()),
        }
    }
}

#[test]
fn malformed_requests_are_typed_errors_on_every_entry_point() {
    let graph = paper_example::graph();
    let engine = Arc::new(QueryEngine::new(graph.clone()));
    let cached = CachedBackend::new(Arc::clone(&engine));
    let backends: Vec<&dyn CoreBackend> = vec![&Algorithm::Enum, &Algorithm::Naive, &cached];
    for backend in backends {
        assert!(matches!(
            QueryRequest::single(0, 1, 4).run(&graph, backend),
            Err(TkError::KOutOfRange { k: 0 })
        ));
        assert!(matches!(
            QueryRequest::single(2, 0, 4).run(&graph, backend),
            Err(TkError::EmptyWindow { .. })
        ));
        assert!(matches!(
            QueryRequest::single(2, 6, 3).run(&graph, backend),
            Err(TkError::EmptyWindow { .. })
        ));
        assert!(matches!(
            QueryRequest::single(2, 8, 9).run(&graph, backend),
            Err(TkError::WindowPastTmax { start: 8, tmax: 7 })
        ));
        assert!(matches!(
            QueryRequest::with_selection(KSelection::Range { min: 5, max: 2 }, 1, 4)
                .run(&graph, backend),
            Err(TkError::EmptyKSelection)
        ));
    }
    // The whole-span shorthand: an overhanging end is clamped, not refused.
    let response = QueryRequest::single(2, 1, Timestamp::MAX)
        .run(&graph, &Algorithm::Enum)
        .unwrap();
    assert_eq!(response.window, TimeWindow::new(1, 7));
}
