//! Integration test: the paper's running example through the public facade.

use temporal_kcore::prelude::*;
use temporal_kcore::tkcore::paper_example;

#[test]
fn figure_2_results_via_public_api() {
    let graph = paper_example::graph();
    let response = QueryRequest::single(2, 1, 4)
        .materialize()
        .run(&graph, &Algorithm::Enum)
        .unwrap();
    let KOutput::Cores(cores) = &response.outcomes[0].output else {
        unreachable!("materialized request")
    };
    assert_eq!(cores.len(), 2);

    // The smaller core is the triangle {v1, v2, v4} with TTI [2, 3].
    let small = cores.iter().find(|c| c.num_edges() == 3).unwrap();
    assert_eq!(small.tti, TimeWindow::new(2, 3));
    let labels: Vec<u64> = small
        .vertices(&graph)
        .into_iter()
        .map(|v| graph.label(v))
        .collect();
    assert_eq!(labels, vec![1, 2, 4]);

    // The larger core spans {v1, v2, v3, v4, v9} with TTI [1, 4].
    let large = cores.iter().find(|c| c.num_edges() == 6).unwrap();
    assert_eq!(large.tti, TimeWindow::new(1, 4));
    let labels: Vec<u64> = large
        .vertices(&graph)
        .into_iter()
        .map(|v| graph.label(v))
        .collect();
    assert_eq!(labels, vec![1, 2, 3, 4, 9]);
}

#[test]
fn all_algorithms_agree_via_public_api() {
    let graph = paper_example::graph();
    let span = graph.span();
    let mut reference = CollectingSink::default();
    Algorithm::Enum
        .execute(&graph, 2, span, &mut reference)
        .unwrap();
    let reference = reference.into_sorted();
    for algo in [Algorithm::Otcd, Algorithm::EnumBase, Algorithm::Naive] {
        let mut sink = CollectingSink::default();
        algo.execute(&graph, 2, span, &mut sink).unwrap();
        assert_eq!(sink.into_sorted(), reference, "{}", algo.name());
    }
}

#[test]
fn vertex_core_time_index_is_queryable() {
    let graph = paper_example::graph();
    let vct = VertexCoreTimeIndex::build(&graph, 2, graph.span());
    // Example 2: CT_1(v1) = 3, CT_3(v1) = 5.
    let v1 = graph.labels().iter().position(|&l| l == 1).unwrap() as VertexId;
    assert_eq!(vct.core_time(v1, 1), 3);
    assert_eq!(vct.core_time(v1, 3), 5);
    assert_eq!(vct.size(), 24);
}
