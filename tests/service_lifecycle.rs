//! Regression tests for the service's shutdown lifecycle:
//!
//! * `CoreService::shutdown(self)` runs the drain once and the `Drop`
//!   that immediately follows it must be a no-op — the double-drain used
//!   to re-join an already-torn-down pool;
//! * stopping a service with an in-flight ingest append must wait the
//!   append out (the ticket resolves, never hangs, never reports
//!   `ServiceStopped` for work that was admitted);
//! * a worker panicking mid-absorb resolves the `IngestTicket` with a
//!   typed `TkError::WorkerPanicked` instead of hanging the caller, and
//!   leaves the engine fully usable.
//!
//! Determinism: worker pinning uses a gated stream sink that blocks inside
//! `emit` until released — no sleeps or timing assumptions.

use std::sync::mpsc;
use temporal_kcore::prelude::*;
use temporal_kcore::tkcore::paper_example;

/// Blocks the executing worker inside the request's first `emit` until the
/// test sends the release signal.
struct GatedSink {
    started: mpsc::Sender<()>,
    release: mpsc::Receiver<()>,
    blocked_once: bool,
}

impl ResultSink for GatedSink {
    fn emit(&mut self, _tti: TimeWindow, _edges: &[temporal_graph::EdgeId]) {
        if !self.blocked_once {
            self.blocked_once = true;
            self.started.send(()).expect("test is listening");
            self.release.recv().expect("test releases the sink");
        }
    }
}

#[test]
fn shutdown_then_drop_drains_exactly_once() {
    let service = CoreService::start(paper_example::graph(), ServiceConfig::default());
    let ticket = service.submit(QueryRequest::single(2, 1, 4)).unwrap();
    // `shutdown(self)` drains and then drops `self`, whose `Drop` calls the
    // drain again; the second pass must return immediately instead of
    // re-joining dead workers.  Hanging or panicking here fails the test.
    service.shutdown();
    // Admitted work was waited out, not abandoned.
    let reply = ticket
        .wait()
        .expect("admitted requests complete during the drain");
    assert_eq!(reply.response.total_cores(), 2);
}

#[test]
fn dropping_with_in_flight_ingest_waits_the_append_out() {
    let service = CoreService::start_sharded(
        paper_example::graph(), // tmax = 7
        ShardPlan::FixedCount(2),
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
    )
    .unwrap();

    // Pin the single worker inside a streamed query...
    let (started_tx, started_rx) = mpsc::channel();
    let (release_tx, release_rx) = mpsc::channel();
    let pin = service
        .submit(QueryRequest::single(2, 1, 4).stream(Box::new(GatedSink {
            started: started_tx,
            release: release_rx,
            blocked_once: false,
        })))
        .unwrap();
    started_rx.recv().expect("worker is pinned");

    // ...so this append is provably still queued when the drain begins.
    let ingest = service
        .submit_append(vec![(10, 11, 8), (11, 12, 9)])
        .unwrap();

    release_tx.send(()).expect("worker is waiting");
    service.shutdown();

    // The drain executed the queued append before tearing down: the ticket
    // resolves with the absorb result rather than hanging or reporting
    // `ServiceStopped`.
    let reply = ingest
        .wait()
        .expect("queued appends complete during the drain");
    assert_eq!(reply.stats.appended, 2);
    assert!(pin.wait().is_ok());
}

#[test]
fn a_panicking_absorb_resolves_the_ticket_with_worker_panicked() {
    let service = CoreService::start_sharded(
        paper_example::graph(),
        ShardPlan::FixedCount(2),
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
    )
    .unwrap();

    // Arm the fail point: the next absorb panics on the worker before
    // touching any engine state.
    service.sharded_engine().unwrap().fail_next_absorbs(1);
    let err = service
        .submit_append(vec![(10, 11, 8)])
        .unwrap()
        .wait()
        .expect_err("the injected panic surfaces as a typed error");
    assert!(
        matches!(&err, TkError::WorkerPanicked { detail } if detail.contains("fail point")),
        "{err}"
    );

    let stats = service.stats();
    assert_eq!(stats.ingest.submitted, 1);
    assert_eq!(stats.ingest.failed, 1);
    assert_eq!(stats.ingest.events_appended, 0);
    assert_eq!(
        stats.per_worker.iter().map(|w| w.panicked).sum::<u64>(),
        1,
        "the panic is accounted to the worker that absorbed it"
    );

    // The worker survived and the engine is untouched: the same append now
    // lands, and queries keep working.
    let reply = service
        .submit_append(vec![(10, 11, 8)])
        .unwrap()
        .wait()
        .expect("the engine is intact after the injected panic");
    assert_eq!(reply.stats.appended, 1);
    let query = service
        .submit(QueryRequest::single(2, 1, 4))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(query.response.total_cores(), 2);
    service.shutdown();
}
