//! Deterministic overload soak for the priority-lane, deadline-aware
//! service: with the single worker pinned by a gated sink, a saturating
//! request mix (from the datasets crate's [`OverloadWorkload`] generator)
//! fills the queue; when the worker is released, every admitted
//! interactive request completes within its deadline while every
//! deadline-carrying batch request is shed at dequeue with a typed
//! `TkError::DeadlineExceeded`, and the per-lane counters sum to the
//! service totals.
//!
//! Determinism: no sleeps.  The worker is pinned by a sink blocking in
//! `emit`, and batch deadlines are *proven* expired by spinning on
//! `Instant` past the deadline before the worker is released — shedding is
//! then a certainty, not a race.  Set `TKC_OVERLOAD_QUICK=1` for a smaller
//! mix (the CI quick mode).

use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};
use temporal_kcore::prelude::*;
use temporal_kcore::tkcore::paper_example;

/// Blocks the executing worker inside the request's first `emit` until the
/// test sends the release signal.
struct GatedSink {
    started: mpsc::Sender<()>,
    release: mpsc::Receiver<()>,
    blocked_once: bool,
}

impl ResultSink for GatedSink {
    fn emit(&mut self, _tti: TimeWindow, _edges: &[temporal_graph::EdgeId]) {
        if !self.blocked_once {
            self.blocked_once = true;
            self.started.send(()).expect("test is listening");
            self.release.recv().expect("test releases the sink");
        }
    }
}

/// Records the order in which requests start executing.
struct LabelSink {
    order: Arc<Mutex<Vec<&'static str>>>,
    label: &'static str,
    logged: bool,
}

impl ResultSink for LabelSink {
    fn emit(&mut self, _tti: TimeWindow, _edges: &[temporal_graph::EdgeId]) {
        if !self.logged {
            self.logged = true;
            self.order.lock().unwrap().push(self.label);
        }
    }
}

fn mix_size() -> usize {
    if std::env::var("TKC_OVERLOAD_QUICK").is_ok() {
        12
    } else {
        48
    }
}

/// Pins the service's single worker; returns the pinned ticket and the
/// release sender.
fn pin_worker(service: &CoreService) -> (Ticket, mpsc::Sender<()>) {
    let (started_tx, started_rx) = mpsc::channel();
    let (release_tx, release_rx) = mpsc::channel();
    let ticket = service
        .submit(QueryRequest::single(2, 1, 4).stream(Box::new(GatedSink {
            started: started_tx,
            release: release_rx,
            blocked_once: false,
        })))
        .expect("the pin is admitted");
    started_rx.recv().expect("worker is pinned");
    (ticket, release_tx)
}

#[test]
fn saturation_serves_interactive_in_deadline_and_sheds_batch() {
    let n = mix_size();
    let batch_deadline = Duration::from_millis(5);
    let interactive_deadline = Duration::from_secs(3600);
    let mix = OverloadWorkload::generate(
        7, // the paper example's tmax
        &OverloadConfig {
            num_requests: n,
            interactive_percent: 25,
            k: 2,
            range_len: 4,
            interactive_deadline_ms: interactive_deadline.as_millis() as u64,
            batch_deadline_ms: Some(batch_deadline.as_millis() as u64),
            seed: 9,
        },
    );
    let service = CoreService::start(
        paper_example::graph(),
        ServiceConfig {
            workers: 1,
            queue_depth: n,
            ..ServiceConfig::default()
        },
    );
    let (pin, release) = pin_worker(&service);

    // A zero deadline is already expired: shed at admission (the queue has
    // room — this is the deadline gate, not the depth gate).
    let err = service
        .submit_opts(
            QueryRequest::single(2, 1, 4).count(),
            SubmitOptions::default().with_deadline(Duration::ZERO),
        )
        .expect_err("a zero deadline can never be met");
    assert!(matches!(err, TkError::DeadlineExceeded { .. }), "{err}");

    // Saturate: the mix exactly fills the queue behind the pinned worker.
    let submitted_at = Instant::now();
    let tickets: Vec<(bool, Ticket)> = mix
        .requests
        .iter()
        .map(|r| {
            let opts = SubmitOptions::default()
                .with_lane(if r.interactive {
                    Lane::Interactive
                } else {
                    Lane::Batch
                })
                .with_deadline(Duration::from_millis(r.deadline_ms.unwrap()));
            let request = QueryRequest::single(r.k, r.range.start(), r.range.end()).count();
            (r.interactive, service.submit_opts(request, opts).unwrap())
        })
        .collect();

    // One more request overflows the depth gate with a typed budget error.
    let err = service
        .submit_opts(
            QueryRequest::single(2, 1, 4).count(),
            SubmitOptions::batch(),
        )
        .expect_err("the queue is full");
    assert!(
        matches!(
            err,
            TkError::BudgetExceeded {
                resource: "request queue",
                ..
            }
        ),
        "{err}"
    );

    // Prove every batch deadline has expired before any queued request can
    // run, then release the worker.
    while submitted_at.elapsed() <= batch_deadline * 4 {
        std::hint::spin_loop();
    }
    release.send(()).expect("worker is waiting");
    assert!(pin.wait().is_ok());

    let mut interactive_latencies = Vec::new();
    let mut batch_shed = 0u64;
    for (interactive, ticket) in tickets {
        if interactive {
            let reply = ticket.wait().expect("interactive requests are served");
            interactive_latencies.push(reply.queue_wait + reply.execute_time);
        } else {
            let err = ticket.wait().expect_err("expired batch requests are shed");
            let TkError::DeadlineExceeded { deadline, waited } = err else {
                panic!("expected DeadlineExceeded, got {err}");
            };
            assert_eq!(deadline, batch_deadline);
            assert!(waited > deadline, "shed only after the deadline passed");
            batch_shed += 1;
        }
    }
    assert_eq!(interactive_latencies.len(), n / 4);
    assert_eq!(batch_shed as usize, n - n / 4);

    // Every admitted interactive request completed within its deadline —
    // in particular the p99 (here the max) is bounded by it.
    interactive_latencies.sort();
    let p99 = interactive_latencies[(interactive_latencies.len() * 99).div_ceil(100) - 1];
    assert!(
        p99 < interactive_deadline,
        "interactive p99 {p99:?} must stay within the {interactive_deadline:?} deadline"
    );

    // Per-lane counters sum to the service totals across every class.
    let stats = service.stats();
    let sum =
        |f: fn(&LaneStats) -> u64| f(stats.lane(Lane::Interactive)) + f(stats.lane(Lane::Batch));
    assert_eq!(sum(|l| l.admitted), stats.admitted);
    assert_eq!(sum(|l| l.completed), stats.completed);
    assert_eq!(sum(|l| l.shed), stats.shed);
    assert_eq!(sum(|l| l.rejected), stats.rejected);
    // And the headline movement is exactly what the scenario dictates: the
    // pin and the mix admitted (the zero-deadline request never was); the
    // batch mix shed at dequeue plus the one admission shed; one overflow
    // rejected.
    assert_eq!(stats.admitted, 1 + n as u64);
    assert_eq!(stats.shed, 1 + batch_shed);
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.lane(Lane::Batch).shed, batch_shed);
    service.shutdown();
}

#[test]
fn interactive_requests_dequeue_ahead_of_earlier_batch_requests() {
    let service = CoreService::start(
        paper_example::graph(),
        ServiceConfig {
            workers: 1,
            queue_depth: 8,
            ..ServiceConfig::default()
        },
    );
    let (pin, release) = pin_worker(&service);

    // Batch requests are queued FIRST...
    let order = Arc::new(Mutex::new(Vec::new()));
    let mut tickets = Vec::new();
    for _ in 0..3 {
        let sink = LabelSink {
            order: Arc::clone(&order),
            label: "batch",
            logged: false,
        };
        tickets.push(
            service
                .submit_opts(
                    QueryRequest::single(2, 1, 4).stream(Box::new(sink)),
                    SubmitOptions::batch(),
                )
                .unwrap(),
        );
    }
    // ...and interactive ones after them.
    for _ in 0..2 {
        let sink = LabelSink {
            order: Arc::clone(&order),
            label: "interactive",
            logged: false,
        };
        tickets.push(
            service
                .submit(QueryRequest::single(2, 1, 4).stream(Box::new(sink)))
                .unwrap(),
        );
    }

    release.send(()).expect("worker is waiting");
    assert!(pin.wait().is_ok());
    for ticket in tickets {
        ticket.wait().expect("no deadlines: everything executes");
    }

    // Despite arriving later, every interactive request ran first.
    let order = order.lock().unwrap();
    assert_eq!(
        *order,
        vec!["interactive", "interactive", "batch", "batch", "batch"],
        "the worker drains the interactive lane before the batch lane"
    );
    service.shutdown();
}
