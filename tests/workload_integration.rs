//! Integration tests for the evaluation pipeline: dataset statistics,
//! workload generation and framework measurements behave sensibly on the
//! scaled dataset profiles.

use temporal_kcore::prelude::*;

#[test]
fn table3_statistics_are_reasonable_for_every_profile() {
    for profile in temporal_kcore::datasets::ALL_PROFILES {
        // Generating the largest profiles takes a little while; statistics
        // are checked for all of them but the heavier algorithms only run on
        // the smaller ones (see other tests).
        if profile.num_edges > 12_000 {
            continue;
        }
        let graph = profile.generate();
        let stats = DatasetStats::compute(&graph);
        assert!(stats.num_vertices > 0, "{}", profile.name);
        assert!(stats.num_edges > 0, "{}", profile.name);
        assert!(stats.tmax >= 1, "{}", profile.name);
        assert!(
            stats.kmax >= 4,
            "{}: kmax {} too small for a 10%..40% sweep",
            profile.name,
            stats.kmax
        );
    }
}

#[test]
fn framework_stats_track_result_size() {
    let profile = DatasetProfile::by_name("CM").unwrap();
    let graph = profile.generate();
    let stats = DatasetStats::compute(&graph);
    let k = stats.k_for_percent(30);
    let len = stats.range_len_for_percent(10);
    let range = TimeWindow::new(1, len.min(graph.tmax()));
    let fw = FrameworkStats::measure(&graph, k, range);
    // |ECS| <= |R| whenever at least one core exists (every skyline window's
    // edge appears in at least one result), and |VCT| is positive as soon as
    // any vertex is ever in a core.
    if fw.num_cores > 0 {
        assert!(fw.vct_entries > 0);
        assert!(fw.ecs_windows > 0);
        assert!(fw.result_size >= fw.ecs_windows as u64);
    }
    // Counting through the unified request API agrees with the measurement.
    let response = QueryRequest::single(k, range.start(), range.end())
        .run(&graph, &Algorithm::Enum)
        .unwrap();
    let KOutput::Counts(count) = response.outcomes[0].output else {
        unreachable!("count is the default mode")
    };
    assert_eq!(count.num_cores, fw.num_cores);
    assert_eq!(count.total_edges, fw.result_size);
}

#[test]
fn workloads_drive_all_algorithms_within_budget() {
    let profile = DatasetProfile::by_name("FB").unwrap();
    let graph = profile.generate();
    let stats = DatasetStats::compute(&graph);
    let config = WorkloadConfig {
        num_queries: 2,
        ..WorkloadConfig::paper_default(&stats, 2, 17)
    };
    let workload = QueryWorkload::generate(&graph, &config);
    for query in workload.queries() {
        for algo in [Algorithm::Enum, Algorithm::EnumBase, Algorithm::Otcd] {
            let mut sink = CountingSink::default();
            let run = query.run_with(&graph, algo, &mut sink);
            assert_eq!(run.num_cores, sink.num_cores);
            assert!(
                run.peak_memory_bytes < 1 << 30,
                "{} unexpectedly large",
                algo.name()
            );
        }
    }
}

#[test]
fn varying_k_monotonically_shrinks_results() {
    let profile = DatasetProfile::by_name("FB").unwrap();
    let graph = profile.generate();
    let stats = DatasetStats::compute(&graph);
    let range = TimeWindow::new(1, stats.range_len_for_percent(20).min(graph.tmax()));
    let mut previous = u64::MAX;
    for percent in [10, 20, 30, 40] {
        let k = stats.k_for_percent(percent);
        let mut count = CountingSink::default();
        Algorithm::Enum
            .execute(&graph, k, range, &mut count)
            .unwrap();
        assert!(
            count.total_edges <= previous,
            "result size must not grow with k"
        );
        previous = count.total_edges;
    }
}

#[test]
fn varying_range_monotonically_grows_results() {
    let profile = DatasetProfile::by_name("FB").unwrap();
    let graph = profile.generate();
    let stats = DatasetStats::compute(&graph);
    let k = stats.k_for_percent(30);
    let mut previous = 0u64;
    for percent in [5, 10, 20, 40] {
        let len = stats.range_len_for_percent(percent).min(graph.tmax());
        let mut count = CountingSink::default();
        Algorithm::Enum
            .execute(&graph, k, TimeWindow::new(1, len), &mut count)
            .unwrap();
        assert!(
            count.total_edges >= previous,
            "result size must not shrink as the range grows"
        );
        previous = count.total_edges;
    }
}
