//! Correctness harness for the boundary-stitch index (`BoundaryIndex`):
//! boundary-spanning queries answered by composing cached cut-crossing
//! windows with the restricted per-shard skylines must equal both the PR 3
//! transient-merge path (`boundary_cache_entries = 0`, which rebuilds a
//! merged sub-window skyline per spanning query) and the unsharded
//! span-wide engine — over random graphs, random shard plans, random
//! windows and all four algorithms.

use proptest::prelude::*;
use temporal_kcore::prelude::*;
use temporal_kcore::tkcore::paper_example;

/// Strategy: a random temporal graph with up to `max_v` vertices, up to
/// `max_e` edges and up to `max_t` distinct timestamps.
fn arb_graph(max_v: u64, max_e: usize, max_t: i64) -> impl Strategy<Value = TemporalGraph> {
    prop::collection::vec((0..max_v, 0..max_v, 1..=max_t), 1..max_e).prop_filter_map(
        "graph must have at least one non-loop edge",
        |edges| {
            let edges: Vec<(u64, u64, i64)> =
                edges.into_iter().filter(|(u, v, _)| u != v).collect();
            if edges.is_empty() {
                return None;
            }
            TemporalGraphBuilder::new().with_edges(edges).build().ok()
        },
    )
}

fn canonical(mut cores: Vec<TemporalKCore>) -> Vec<TemporalKCore> {
    cores.sort_by(|a, b| a.tti.cmp(&b.tti).then_with(|| a.edges.cmp(&b.edges)));
    cores
}

/// Derives a shard plan from two random parameters, biased toward layouts
/// with many cuts so spanning windows actually exercise the stitch index.
fn plan_for(kind: u8, param: usize, tmax: Timestamp) -> ShardPlan {
    match kind % 4 {
        0 => ShardPlan::FixedCount(2 + param % 5),
        1 => ShardPlan::FixedCount(tmax as usize), // one shard per timestamp
        2 => ShardPlan::TargetEdgesPerShard(1 + param % 5),
        _ => {
            let mid = tmax / 2;
            if mid >= 1 && mid < tmax {
                ShardPlan::ExplicitCuts(vec![mid])
            } else {
                ShardPlan::ExplicitCuts(vec![])
            }
        }
    }
}

fn stitch_engine(g: &TemporalGraph, plan: &ShardPlan, cache_entries: usize) -> ShardedEngine {
    ShardedEngine::with_config(
        g.clone(),
        plan.clone(),
        EngineConfig {
            boundary_cache_entries: cache_entries,
            ..EngineConfig::default()
        },
    )
    .expect("derived plans are valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For random graphs, plans and windows, the stitched boundary path
    /// (cached cut-crossing windows composed with restricted shard
    /// skylines) equals the transient-merge path and the unsharded engine,
    /// for every algorithm — and repeating each query answers from the
    /// cache without growing the build counters.
    #[test]
    fn stitched_equals_transient_equals_unsharded(
        g in arb_graph(10, 40, 8),
        k in 1usize..4,
        (kind, param) in (0u8..4, 0usize..16),
        (raw_start, raw_len) in (1u32..=8, 0u32..8),
    ) {
        let plan = plan_for(kind, param, g.tmax());
        let span_engine = QueryEngine::new(g.clone());
        let stitched = stitch_engine(&g, &plan, 32);
        let transient = stitch_engine(&g, &plan, 0);

        let start = raw_start.min(g.tmax());
        let random = TimeWindow::new(start, (start + raw_len).min(g.tmax()));
        let mut windows = vec![g.span()];
        if random != g.span() {
            windows.push(random);
        }

        for window in windows {
            let query = TimeRangeKCoreQuery::new(k, window).expect("k >= 1");
            for algo in Algorithm::ALL {
                let mut expected = CollectingSink::default();
                span_engine.run_with(&query, algo, &mut expected)
                    .expect("window is inside the span");
                let mut via_stitch = CollectingSink::default();
                stitched.run_with(&query, algo, &mut via_stitch)
                    .expect("window is inside the span");
                let mut via_transient = CollectingSink::default();
                transient.run_with(&query, algo, &mut via_transient)
                    .expect("window is inside the span");
                let expected = canonical(expected.cores);
                prop_assert_eq!(
                    canonical(via_stitch.cores),
                    expected.clone(),
                    "stitched: {:?} k={} window={} algo={}",
                    plan, k, window, algo
                );
                prop_assert_eq!(
                    canonical(via_transient.cores),
                    expected,
                    "transient: {:?} k={} window={} algo={}",
                    plan, k, window, algo
                );
            }
        }

        // Replaying the same windows must be pure cache reuse: identical
        // answers, no additional stitch builds.
        let builds_after_first_pass = stitched.cache_stats().boundary.builds;
        let query = TimeRangeKCoreQuery::new(k, g.span()).expect("k >= 1");
        let mut replay = CollectingSink::default();
        stitched.run(&query, &mut replay).expect("span query is valid");
        let stats = stitched.cache_stats();
        prop_assert_eq!(
            stats.boundary.builds, builds_after_first_pass,
            "warm replay must not rebuild stitch entries: {:?}", stats.boundary
        );
        // The transient engine never populates the stitch cache.
        prop_assert_eq!(transient.cache_stats().boundary.builds, 0);
    }
}

/// Deterministic fixture: paper-example graph (`tmax = 7`) cut after
/// timestamps 2 and 4, giving shards `[1,2] [3,4] [5,7]`.
fn fixture() -> (TemporalGraph, ShardedEngine) {
    let g = paper_example::graph();
    let engine = ShardedEngine::new(g.clone(), ShardPlan::ExplicitCuts(vec![2, 4]))
        .expect("cuts are inside the span");
    (g, engine)
}

#[test]
fn adjacent_pair_entries_are_keyed_per_shard_range() {
    let (_, engine) = fixture();
    let mut sink = CountingSink::default();
    // Spans the first cut only: entry (0, 1, k).
    engine
        .run(
            &TimeRangeKCoreQuery::new(2, TimeWindow::new(2, 3)).unwrap(),
            &mut sink,
        )
        .unwrap();
    // Spans the second cut only: entry (1, 2, k).
    engine
        .run(
            &TimeRangeKCoreQuery::new(2, TimeWindow::new(4, 5)).unwrap(),
            &mut sink,
        )
        .unwrap();
    // Spans both cuts: entry (0, 2, k).
    engine
        .run(
            &TimeRangeKCoreQuery::new(2, TimeWindow::new(1, 7)).unwrap(),
            &mut sink,
        )
        .unwrap();
    let stats = engine.cache_stats();
    assert_eq!(stats.boundary.builds, 3, "{:?}", stats.boundary);
    assert_eq!(stats.boundary.resident_entries, 3, "{:?}", stats.boundary);
    // Each range reuses its own entry on repetition.
    engine
        .run(
            &TimeRangeKCoreQuery::new(2, TimeWindow::new(2, 3)).unwrap(),
            &mut sink,
        )
        .unwrap();
    let stats = engine.cache_stats();
    assert_eq!(stats.boundary.builds, 3, "{:?}", stats.boundary);
    assert_eq!(stats.boundary.hits, 1, "{:?}", stats.boundary);
}

#[test]
fn stitch_entries_are_smaller_than_the_merged_skyline() {
    // The stitch entry stores only cut-crossing windows, so it must be no
    // larger than the merged-window skyline it was filtered from.
    let (g, engine) = fixture();
    let mut sink = CountingSink::default();
    engine
        .run(&TimeRangeKCoreQuery::new(2, g.span()).unwrap(), &mut sink)
        .unwrap();
    let merged = EdgeCoreSkyline::build(&g, 2, g.span());
    let stats = engine.cache_stats();
    assert!(stats.boundary.resident_bytes <= merged.memory_bytes());
    assert!(stats.boundary.resident_bytes > 0, "{:?}", stats.boundary);
}

#[test]
fn warm_spanning_queries_skip_the_merged_sweep_entirely() {
    // After warming shards and the stitch entry, a spanning query touches
    // only caches: shard hits grow, builds and stitch builds do not.
    let (_, engine) = fixture();
    let query = TimeRangeKCoreQuery::new(2, TimeWindow::new(2, 6)).unwrap();
    let mut sink = CountingSink::default();
    engine.run(&query, &mut sink).unwrap();
    let cold = engine.cache_stats();
    let mut sink = CountingSink::default();
    engine.run(&query, &mut sink).unwrap();
    let warm = engine.cache_stats();
    assert_eq!(warm.boundary.builds, cold.boundary.builds);
    assert_eq!(warm.boundary.hits, cold.boundary.hits + 1);
    let cold_builds: u64 = cold.per_shard.iter().map(|s| s.builds).sum();
    let warm_builds: u64 = warm.per_shard.iter().map(|s| s.builds).sum();
    assert_eq!(warm_builds, cold_builds, "no shard rebuilt on the warm run");
    assert!(warm.hits > cold.hits, "shard skylines answered from cache");
}
