//! # temporal-kcore
//!
//! A Rust implementation of *time-range temporal k-core enumeration*: given
//! a temporal graph (edges carry timestamps), an integer `k` and a query
//! time range, enumerate **every distinct temporal k-core** that appears in
//! the snapshot of **any** sub-window of the range.
//!
//! The library reproduces the framework of *Accelerating K-Core Computation
//! in Temporal Graphs* (EDBT 2026):
//!
//! 1. **CoreTime** — compute the vertex core time index and, as a byproduct,
//!    the minimal core windows (edge core window skyline) of every edge in
//!    `O(|VCT| · deg_avg)`;
//! 2. **Enum** — enumerate all temporal k-cores directly from the skylines
//!    in time bounded by the total result size, which is optimal.
//!
//! The crate also contains the `EnumBase` baseline (Algorithm 3), the OTCD
//! state-of-the-art competitor (Algorithm 1 of Yang et al., VLDB 2023), a
//! brute-force reference, dataset/workload generators, and a benchmark
//! harness that regenerates every table and figure of the paper's
//! evaluation.
//!
//! # Quick start
//!
//! ```
//! use temporal_kcore::prelude::*;
//!
//! // A temporal graph: (vertex, vertex, timestamp) triples.
//! let graph = TemporalGraphBuilder::new()
//!     .with_edges([
//!         (1u64, 2u64, 1i64),
//!         (2, 3, 2),
//!         (1, 3, 3),
//!         (3, 4, 4),
//!         (4, 5, 5),
//!         (3, 5, 5),
//!     ])
//!     .build()
//!     .unwrap();
//!
//! // All temporal 2-cores appearing in any sub-window of [1, 5].
//! let query = TimeRangeKCoreQuery::new(2, TimeWindow::new(1, 5));
//! let cores = query.enumerate(&graph);
//! assert_eq!(cores.len(), 3); // two triangles and their union
//! for core in &cores {
//!     println!("TTI {} with {} edges", core.tti, core.num_edges());
//! }
//! ```
//!
//! See the `examples/` directory for domain-oriented walkthroughs
//! (transaction-ring detection, contact tracing, misinformation bursts) and
//! `crates/bench` for the experiment harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use static_kcore;
pub use temporal_graph;
pub use tkc_datasets as datasets;
pub use tkcore;

/// Convenient re-exports of the types most applications need.
pub mod prelude {
    pub use static_kcore::{CoreDecomposition, StaticGraph};
    pub use temporal_graph::{
        generator, loader, TemporalEdge, TemporalGraph, TemporalGraphBuilder, TimeWindow,
        Timestamp, VertexId,
    };
    pub use tkc_datasets::{DatasetProfile, DatasetStats, QueryWorkload, WorkloadConfig};
    pub use tkcore::{
        Algorithm, BatchStats, CacheStats, CollectingSink, CountingSink, EdgeCoreSkyline,
        EngineConfig, FrameworkStats, QueryEngine, QueryStats, ResultSink, TemporalKCore,
        TimeRangeKCoreQuery, VertexCoreTimeIndex,
    };
}
