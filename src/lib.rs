//! # temporal-kcore
//!
//! A Rust implementation of *time-range temporal k-core enumeration*: given
//! a temporal graph (edges carry timestamps), an integer `k` and a query
//! time range, enumerate **every distinct temporal k-core** that appears in
//! the snapshot of **any** sub-window of the range.
//!
//! The library reproduces the framework of *Accelerating K-Core Computation
//! in Temporal Graphs* (EDBT 2026):
//!
//! 1. **CoreTime** — compute the vertex core time index and, as a byproduct,
//!    the minimal core windows (edge core window skyline) of every edge in
//!    `O(|VCT| · deg_avg)`;
//! 2. **Enum** — enumerate all temporal k-cores directly from the skylines
//!    in time bounded by the total result size, which is optimal.
//!
//! All execution goes through one typed, fallible surface: a
//! [`prelude::QueryRequest`] (single `k`, multi-`k`, or `k`-range sweep,
//! with materialize / count / stream output) validated against the graph and
//! executed on any [`prelude::CoreBackend`] — each algorithm is a backend,
//! and [`prelude::CachedBackend`] answers from a shared
//! [`prelude::QueryEngine`]'s skyline cache.  [`prelude::CoreService`] adds
//! a bounded request queue with admission control on top.  Malformed input
//! returns a structured [`prelude::TkError`], never a panic.
//!
//! # Quick start
//!
//! ```
//! use temporal_kcore::prelude::*;
//!
//! // A temporal graph: (vertex, vertex, timestamp) triples.
//! let graph = TemporalGraphBuilder::new()
//!     .with_edges([
//!         (1u64, 2u64, 1i64),
//!         (2, 3, 2),
//!         (1, 3, 3),
//!         (3, 4, 4),
//!         (4, 5, 5),
//!         (3, 5, 5),
//!     ])
//!     .build()
//!     .unwrap();
//!
//! // All temporal 2-cores appearing in any sub-window of [1, 5].
//! let response = QueryRequest::single(2, 1, 5)
//!     .materialize()
//!     .run(&graph, &Algorithm::Enum)
//!     .unwrap();
//! let KOutput::Cores(cores) = &response.outcomes[0].output else { unreachable!() };
//! assert_eq!(cores.len(), 3); // two triangles and their union
//! for core in cores {
//!     println!("TTI {} with {} edges", core.tti, core.num_edges());
//! }
//!
//! // Bad input is a typed error, not a panic.
//! assert!(QueryRequest::single(0, 1, 5).run(&graph, &Algorithm::Enum).is_err());
//! ```
//!
//! # Serving
//!
//! [`prelude::TkServer`] puts a std-only TCP front end over a shared
//! [`prelude::CoreService`]: line-delimited JSON, one request per line, one
//! reply line per request.  Each query line may carry a `deadline_ms` and a
//! `lane` (`"interactive"` or `"batch"`); the service refuses
//! already-expired requests at admission, sheds queued requests whose
//! deadline passes with a typed [`prelude::TkError::DeadlineExceeded`]
//! *reply* (the connection stays open), and always dequeues interactive
//! traffic ahead of batch traffic.  A `{"op": "shutdown"}` line drains
//! gracefully: accepting stops, in-flight requests finish, and
//! [`prelude::TkServer::serve`] returns a [`prelude::ServeSummary`].
//!
//! ```no_run
//! use std::sync::Arc;
//! use temporal_kcore::prelude::*;
//! use temporal_kcore::tkcore::paper_example;
//!
//! let service = Arc::new(CoreService::start(
//!     paper_example::graph(),
//!     ServiceConfig::default(),
//! ));
//! let server = TkServer::bind(service, "127.0.0.1:7411", ServerConfig::default())?;
//! println!("listening on {}", server.local_addr());
//! let summary = server.serve()?; // blocks until a shutdown op drains it
//! println!("served {} requests", summary.requests);
//! # Ok::<(), TkError>(())
//! ```
//!
//! On the command line the same protocol is `tkc serve` / `tkc client`, and
//! `examples/tcp_serving.rs` is the end-to-end walkthrough.
//!
//! See the `examples/` directory for domain-oriented walkthroughs
//! (transaction-ring detection, contact tracing, misinformation bursts) and
//! `crates/bench` for the experiment harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use static_kcore;
pub use temporal_graph;
pub use tkc_datasets as datasets;
pub use tkcore;

/// Convenient re-exports of the types most applications need.
pub mod prelude {
    pub use static_kcore::{CoreDecomposition, StaticGraph};
    pub use temporal_graph::{
        generator, loader, AppendableGraph, TemporalEdge, TemporalGraph, TemporalGraphBuilder,
        TimeWindow, Timestamp, TimestampMode, VertexId,
    };
    pub use tkc_datasets::{
        ArrivalProfile, DatasetProfile, DatasetStats, EventStream, EventStreamConfig,
        OverloadConfig, OverloadRequest, OverloadWorkload, QueryWorkload, WorkloadConfig,
    };
    pub use tkcore::{
        AbsorbStats, Affinity, Algorithm, BatchStats, BoundaryCacheStats, CacheStats,
        CachedBackend, CollectingSink, CoreBackend, CoreService, CountingSink, EdgeCoreSkyline,
        EngineConfig, ExecPool, FrameworkStats, IngestDelta, IngestEvent, IngestLaneStats,
        IngestReply, IngestTicket, KOutcome, KOutput, KSelection, Lane, LaneStats,
        LatencyHistogram, OutputMode, QueryEngine, QueryRequest, QueryResponse, QueryStats,
        RequestId, ResultSink, SealPolicy, ServeSummary, ServerConfig, ServiceConfig, ServiceReply,
        ServiceStats, ShardCacheStats, ShardPlan, ShardedBackend, ShardedEngine, SubmitOptions,
        TemporalKCore, Ticket, TimeRangeKCoreQuery, TkError, TkServer, ValidatedRequest,
        VertexCoreTimeIndex, WarmStats, WorkerStats,
    };
}
