//! Contact tracing: finding transmission clusters in a proximity network.
//!
//! During an outbreak, interactions between infected individuals peak and
//! decline over unpredictable durations (Section I of the paper).  A single
//! fixed analysis window either misses short-lived clusters or drowns them
//! in unrelated contacts.  Enumerating all temporal k-cores over a query
//! range reconstructs every tightly interacting group together with the
//! precise interval in which it was active.
//!
//! Run with: `cargo run --release --example contact_tracing`

use temporal_kcore::prelude::*;
use temporal_kcore::temporal_graph::generator::{planted_bursty_cores, BurstyConfig};

fn main() {
    // A fortnight of proximity events (1 timestamp = 10 minutes): households,
    // workplaces and one superspreading event appear as planted bursts.
    let config = BurstyConfig {
        num_vertices: 800,
        background_edges: 4_000,
        num_bursts: 10,
        burst_size: 14,
        burst_duration: 24, // ~4 hours
        burst_density: 0.65,
        num_timestamps: 2_016, // 14 days * 144 ten-minute slots
    };
    let graph = planted_bursty_cores(&config, 7);
    println!(
        "Proximity network: {} people, {} contacts, {} time slots",
        graph.num_vertices(),
        graph.num_edges(),
        graph.tmax()
    );

    // Health authorities focus on the three days around the first detected
    // case; they do not know the exact window of the superspreading event.
    let day = 144u32;
    let focus = TimeWindow::new(4 * day, (7 * day).min(graph.tmax()));
    let k = 4;
    let query = TimeRangeKCoreQuery::new(k, focus).expect("k >= 1");

    let mut sink = CollectingSink::default();
    let stats = query.run_with(&graph, Algorithm::Enum, &mut sink);
    let cores = sink.into_sorted();
    println!(
        "\nFound {} candidate transmission clusters (temporal {}-cores) in {} \
         — precompute {:?}, enumerate {:?}",
        cores.len(),
        k,
        focus,
        stats.precompute_time,
        stats.enumerate_time
    );

    // Rank clusters by how concentrated in time they are: short, dense
    // windows are the highest-priority follow-ups.
    let mut ranked: Vec<&TemporalKCore> = cores.iter().collect();
    ranked.sort_by_key(|c| (c.tti.len(), std::cmp::Reverse(c.num_edges())));
    println!("Top clusters by temporal concentration:");
    for core in ranked.iter().take(5) {
        let people = core.vertices(&graph);
        let hours = core.tti.len() as f64 / 6.0;
        println!(
            "  {:>2} people, {:>3} contacts, active {:>5.1} h within slot window {}",
            people.len(),
            core.num_edges(),
            hours,
            core.tti
        );
    }

    // The same query answered by the OTCD baseline gives identical clusters —
    // the difference is purely computational cost.
    let mut counting = CountingSink::default();
    let otcd_stats = query.run_with(&graph, Algorithm::Otcd, &mut counting);
    println!(
        "\nCross-check with OTCD: {} clusters (same as {}), {:?} vs {:?} total",
        counting.num_cores,
        cores.len(),
        otcd_stats.total_time(),
        stats.total_time()
    );
}
