//! Sharded, multi-worker query serving.
//!
//! The span-wide engine of `index_reuse.rs` keeps one skyline per `k`
//! covering the whole timeline — on a big graph that single index is the
//! memory bottleneck, and the first query of every `k` pays its full build.
//! This example cuts the timeline into time-interval shards instead
//! (`ShardPlan::FixedCount`), serves a dashboard-style stream of short
//! window queries through a two-worker `CoreService`, and prints what the
//! sharding bought:
//!
//! * each query builds (or reuses) only the shard indexes its window
//!   touches — the per-shard build counters show the untouched timeline
//!   staying cold;
//! * the resident cache holds several small per-shard skylines whose peak
//!   is a fraction of the span-wide index;
//! * answers are exact even when a window crosses a shard cut (the engine
//!   re-verifies boundary-spanning cores against the merged sub-window).
//!
//! Run with: `cargo run --release --example sharded_serving`

use temporal_kcore::prelude::*;

fn main() {
    let profile = DatasetProfile::by_name("EM").expect("profile exists");
    let graph = profile.generate();
    let stats = DatasetStats::compute(&graph);
    let k = stats.k_for_percent(30);
    println!(
        "Dataset {} analogue: {} vertices, {} edges, {} timestamps, k = {}",
        profile.name, stats.num_vertices, stats.num_edges, stats.tmax, k
    );

    // The span-wide index this deployment avoids keeping resident.
    let span_index = EdgeCoreSkyline::build(&graph, k, graph.span());
    let span_mib = span_index.memory_bytes() as f64 / (1024.0 * 1024.0);
    drop(span_index);

    // A sharded service: 8 time-interval shards, 2 worker threads with
    // shard-affine routing — each request lands on the worker owning the
    // shards its window overlaps, and idle workers steal across lanes.
    let shards = 8;
    let service = CoreService::start_sharded(
        graph.clone(),
        ShardPlan::FixedCount(shards),
        ServiceConfig {
            workers: 2,
            affinity: Affinity::Shard,
            ..ServiceConfig::default()
        },
    )
    .expect("fixed-count plan resolves");

    // A dashboard workload: overlapping windows of 10% of the timeline,
    // sliding from the start to the end of the span.
    let len = stats.range_len_for_percent(10).max(1);
    let step = (len / 2).max(1);
    let starts: Vec<u32> = (1..=graph.tmax().saturating_sub(len - 1))
        .step_by(step as usize)
        .collect();
    println!(
        "Serving {} sliding windows of {} timestamps over {} shards with 2 workers\n",
        starts.len(),
        len,
        shards
    );

    let tickets: Vec<Ticket> = starts
        .iter()
        .map(|&start| {
            service
                .submit(QueryRequest::single(k, start, start + len - 1))
                .expect("queue is deep enough for the whole stream")
        })
        .collect();
    let mut total_cores = 0u64;
    for (start, ticket) in starts.iter().zip(tickets) {
        let reply = ticket.wait().expect("request completes");
        total_cores += reply.response.total_cores();
        if reply.response.total_cores() > 0 {
            println!(
                "  window [{start}, {}] -> {} cores (worker {}, {:?})",
                start + len - 1,
                reply.response.total_cores(),
                reply.worker,
                reply.execute_time
            );
        }
    }

    let cache = service.cache_stats();
    let builds: Vec<u64> = cache.per_shard.iter().map(|s| s.builds).collect();
    let peak_shard_mib = cache
        .per_shard
        .iter()
        .map(|s| s.resident_bytes)
        .max()
        .unwrap_or(0) as f64
        / (1024.0 * 1024.0);
    let service_stats = service.stats();
    println!("\n{total_cores} cores over the whole stream");
    println!(
        "shard builds for k = {k}: {builds:?} ({} hits, {} misses)",
        cache.hits, cache.misses
    );
    println!(
        "boundary stitch index: {} builds, {} hits, {} entries ({:.2} MiB) — spanning \
         windows reuse cut-crossing skylines instead of re-sweeping",
        cache.boundary.builds,
        cache.boundary.hits,
        cache.boundary.resident_entries,
        cache.boundary.resident_bytes as f64 / (1024.0 * 1024.0)
    );
    println!("peak resident shard index: {peak_shard_mib:.2} MiB vs span-wide {span_mib:.2} MiB");
    let per_worker: Vec<u64> = service_stats
        .per_worker
        .iter()
        .map(|w| w.completed)
        .collect();
    println!(
        "service: {} completed, per-worker {:?}, queue wait {:?}, execute {:?}",
        service_stats.completed,
        per_worker,
        service_stats.queue_wait_total,
        service_stats.execute_total
    );
    service.shutdown();
}
