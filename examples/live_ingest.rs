//! Live ingestion: appending a temporal graph while serving queries.
//!
//! The other examples treat the graph as frozen — every engine is built
//! once over a fixed timeline.  Real event streams do not stop, so this
//! example runs the appendable path end to end:
//!
//! * the timeline of a dataset analogue is split into "history" (the base
//!   graph the engine starts from) and "tonight's events" (a stream
//!   generated past the base watermark with `EventStream`);
//! * the stream is pushed through `CoreService::submit_append` — the
//!   service's ingest lane absorbs each batch into the live tail shard of
//!   a `ShardedEngine` while the same workers keep answering queries;
//! * a `SealPolicy::EdgeCount` rolls the growing tail into closed shards
//!   mid-stream, and the cache counters show the incremental-maintenance
//!   contract: closed-shard skylines are **never** rebuilt, only
//!   tail-touching entries are invalidated;
//! * out-of-order events (a jittered replay of old timestamps) come back
//!   as typed `TkError` rejections instead of corrupting the timeline.
//!
//! Run with: `cargo run --release --example live_ingest`

use temporal_kcore::prelude::*;

fn main() {
    let profile = DatasetProfile::by_name("CM").expect("profile exists");
    let base = profile.generate();
    let stats = DatasetStats::compute(&base);
    let k = stats.k_for_percent(30);
    println!(
        "Base graph ({} analogue): {} vertices, {} edges, timeline [1, {}], k = {}",
        profile.name, stats.num_vertices, stats.num_edges, stats.tmax, k
    );

    // A sharded service over the base graph: the last shard of the plan is
    // the live tail that absorbs appends.  EdgeCount(400): after ~400
    // appended edges the tail seals into a closed shard and a fresh tail
    // opens with the next batch.
    let service = CoreService::start_sharded(
        base.clone(),
        ShardPlan::FixedCount(4),
        ServiceConfig {
            workers: 2,
            affinity: Affinity::Shard,
            engine: EngineConfig {
                seal_policy: SealPolicy::EdgeCount(400),
                ..EngineConfig::default()
            },
            ..ServiceConfig::default()
        },
    )
    .expect("fixed-count plan resolves");

    // Tonight's events: a steady stream starting strictly past the base
    // watermark.  It concentrates on 48 hot vertices, so the fresh slice
    // of the timeline is dense enough to contain live cores.
    let stream = EventStream::generate(&EventStreamConfig {
        num_events: 1_200,
        num_vertices: 48,
        start_after: base.tmax(),
        profile: ArrivalProfile::Steady { events_per_tick: 8 },
        seed: 7,
    });
    println!(
        "\nStreaming {} events into the live tail (batches of 96)...",
        stream.len()
    );

    let before = service.cache_stats();
    let mut appended = 0usize;
    let mut seals = 0u32;
    // 96 = 12 full ticks of 8 events: batches end on timestamp boundaries.
    // A seal closes the tail at its last timestamp, so a batch that split a
    // timestamp would leave its second half out-of-order behind the seal.
    for batch in stream.chunks(96) {
        // Waiting on each ticket keeps batches strictly ordered; queries
        // submitted by other clients race the absorb freely.
        let reply = service
            .submit_append(batch.to_vec())
            .expect("service is accepting")
            .wait()
            .expect("steady streams are time-ordered");
        appended += reply.stats.appended;
        seals += u32::from(reply.stats.sealed);

        // A live dashboard query (k = 2: "communities forming right now")
        // over the freshest slice of the timeline, served while the stream
        // keeps flowing.
        let tmax = reply.stats.tmax;
        let window_start = tmax.saturating_sub(10).max(1);
        let ticket = service
            .submit(QueryRequest::single(2, window_start, tmax).count())
            .expect("window is live");
        let answer = ticket.wait().expect("query completes");
        let KOutput::Counts(counts) = &answer.response.outcomes[0].output else {
            unreachable!("count request");
        };
        println!(
            "  absorbed {:>4} events (worker {}, {:>9?}) -> {} cores in [{}, {}]{}",
            reply.stats.appended,
            reply.worker,
            reply.absorb_time,
            counts.num_cores,
            window_start,
            tmax,
            if reply.stats.sealed {
                "  [tail sealed]"
            } else {
                ""
            },
        );
    }

    // Out-of-order events are refused with a typed error, atomically: the
    // whole bad batch changes nothing.
    let stale = vec![(1u64, 2u64, 1u32)];
    let err = service
        .submit_append(stale)
        .expect("admission succeeds; the absorb itself fails")
        .wait()
        .expect_err("stale timestamps are rejected");
    println!("\nReplayed an old timestamp: {err}");

    // What the incremental maintenance did.
    let after = service.cache_stats();
    let delta = IngestDelta::between(&before, &after);
    let lane = service.stats().ingest;
    println!(
        "\nIngest lane: {} batches submitted, {} absorbed, {} rejected, {} events, \
         total absorb time {:?}",
        lane.submitted, lane.completed, lane.failed, lane.events_appended, lane.absorb_total
    );
    println!(
        "Cache movement during the stream: {} tail invalidations, {} boundary \
         invalidations, {} seals, {} skyline builds",
        delta.tail_invalidations, delta.boundary_invalidations, delta.seals, delta.builds
    );
    println!(
        "Appended {appended} events; {seals} seals rolled the tail into closed shards \
         (timeline now has {} shards, {} sealed).",
        service
            .sharded_engine()
            .map(|e| e.num_shards())
            .unwrap_or(0),
        service
            .sharded_engine()
            .map(|e| e.sealed_shards())
            .unwrap_or(0),
    );
    println!(
        "Closed-shard skylines were never rebuilt: appends only dirty the live tail, \
         so history stays warm while the stream flows."
    );
    service.shutdown();
}
