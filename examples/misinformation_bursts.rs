//! Spotting coordinated amplification bursts in a social interaction graph.
//!
//! Coordinated misinformation campaigns unfold in bursts over varying time
//! scales (Section I of the paper): the same accounts repeatedly interact
//! within short windows that do not align with any predefined slicing of
//! the timeline.  Exhaustively enumerating temporal k-cores across a query
//! range reveals those bursts — including recurring ones — without guessing
//! window boundaries in advance.
//!
//! Run with: `cargo run --release --example misinformation_bursts`

use std::collections::HashMap;
use temporal_kcore::prelude::*;
use temporal_kcore::temporal_graph::generator::{planted_bursty_cores, BurstyConfig};

fn main() {
    // One week of retweet/reply interactions with several coordinated
    // campaigns: the same bot cluster fires repeatedly in short bursts.
    let config = BurstyConfig {
        num_vertices: 1_500,
        background_edges: 4_500,
        num_bursts: 12,
        burst_size: 16,
        burst_duration: 30,
        burst_density: 0.55,
        num_timestamps: 1_008, // 7 days * 144 slots
    };
    let graph = planted_bursty_cores(&config, 99);
    let stats = DatasetStats::compute(&graph);
    println!(
        "Interaction graph: {} accounts, {} interactions, {} slots, kmax = {}",
        stats.num_vertices, stats.num_edges, stats.tmax, stats.kmax
    );

    // Pick k above what organic (background) activity can sustain in any
    // window but below the in-burst degree of a coordinated cluster.
    let k = 6;
    let response = QueryRequest::single(k, 1, graph.tmax())
        .materialize()
        .run(&graph, &Algorithm::Enum)
        .expect("valid query");
    let KOutput::Cores(cores) = &response.outcomes[0].output else {
        unreachable!("materialized request")
    };
    println!(
        "\n{} temporal {}-cores across the whole week",
        cores.len(),
        k
    );

    // Group cores by their account set to expose *recurring* campaigns:
    // the same group surfacing in separated windows is a strong signal of
    // coordination rather than organic activity.
    let mut appearances: HashMap<Vec<VertexId>, Vec<TimeWindow>> = HashMap::new();
    for core in cores {
        appearances
            .entry(core.vertices(&graph))
            .or_default()
            .push(core.tti);
    }
    let mut recurring: Vec<(&Vec<VertexId>, &Vec<TimeWindow>)> = appearances
        .iter()
        .filter(|(accounts, windows)| windows.len() >= 2 && accounts.len() <= 40)
        .collect();
    recurring.sort_by_key(|(_, windows)| std::cmp::Reverse(windows.len()));

    println!("Account groups appearing as a dense core in multiple windows:");
    for (accounts, windows) in recurring.iter().take(5) {
        let spans: Vec<String> = windows.iter().map(|w| w.to_string()).collect();
        println!(
            "  {:>2} accounts, {} separate windows: {}",
            accounts.len(),
            windows.len(),
            spans.join("  ")
        );
    }
    if recurring.is_empty() {
        println!("  (none at this k — try lowering k or extending the range)");
    }

    // Show how much of the work is precomputation vs enumeration.
    let mut counting = CountingSink::default();
    let run = Algorithm::Enum
        .execute(&graph, k, graph.span(), &mut counting)
        .expect("valid query");
    println!(
        "\nCost split: CoreTime {:?}, enumeration {:?}, |R| = {} edges",
        run.precompute_time, run.enumerate_time, counting.total_edges
    );
}
