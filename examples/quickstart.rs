//! Quickstart: run the paper's running example end to end.
//!
//! Builds the temporal graph of Figure 1, asks for all temporal 2-cores in
//! the query range [1, 4] (Example 1), and prints the two resulting cores
//! of Figure 2 together with the underlying index structures.
//!
//! Run with: `cargo run --example quickstart`

use temporal_kcore::prelude::*;
use temporal_kcore::tkcore::paper_example;

fn main() {
    // The graph of Figure 1: vertices v1..v9, edges with timestamps 1..7.
    let graph = paper_example::graph();
    println!(
        "Temporal graph G: {} vertices, {} temporal edges, timestamps 1..={}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.tmax()
    );

    // The time-range k-core query of Example 1: k = 2, range [1, 4].
    let response = QueryRequest::single(2, 1, 4)
        .materialize()
        .run(&graph, &Algorithm::Enum)
        .expect("valid query on the example graph");
    let KOutput::Cores(cores) = &response.outcomes[0].output else {
        unreachable!("materialized request")
    };
    println!(
        "\nTemporal 2-cores in range [1, 4] (Figure 2): {}",
        cores.len()
    );
    for core in cores {
        let vertex_labels: Vec<String> = core
            .vertices(&graph)
            .into_iter()
            .map(|v| format!("v{}", graph.label(v)))
            .collect();
        println!(
            "  TTI {:>6}  vertices {{{}}}  ({} edges)",
            core.tti.to_string(),
            vertex_labels.join(", "),
            core.num_edges()
        );
    }

    // The two index structures behind the fast enumeration.
    let vct = VertexCoreTimeIndex::build(&graph, 2, graph.span());
    println!(
        "\nVertex core time index (Table I), |VCT| = {}:",
        vct.size()
    );
    for label in 1..=9u64 {
        let u = graph
            .labels()
            .iter()
            .position(|&l| l == label)
            .expect("vertex exists") as VertexId;
        let entries: Vec<String> = vct
            .entries(u)
            .iter()
            .map(|&(ts, ct)| {
                if ct == temporal_graph::T_INFINITY {
                    format!("[{ts}, inf]")
                } else {
                    format!("[{ts}, {ct}]")
                }
            })
            .collect();
        println!("  v{label}: {}", entries.join(", "));
    }

    let ecs = EdgeCoreSkyline::build(&graph, 2, graph.span());
    println!(
        "\nEdge core window skylines (Table II), |ECS| = {} windows over {} edges:",
        ecs.total_windows(),
        ecs.num_edges_with_windows()
    );
    for (edge, windows) in ecs.iter() {
        let e = graph.edge(edge);
        let ws: Vec<String> = windows.iter().map(|w| w.to_string()).collect();
        println!(
            "  (v{}, v{}, {}): {}",
            graph.label(e.u),
            graph.label(e.v),
            e.t,
            ws.join(", ")
        );
    }

    // Compare algorithms on the same query: each one is a `CoreBackend`.
    println!("\nAlgorithm comparison on the full span {}:", graph.span());
    for algo in [Algorithm::Otcd, Algorithm::EnumBase, Algorithm::Enum] {
        let mut sink = CountingSink::default();
        let stats = algo
            .execute(&graph, 2, graph.span(), &mut sink)
            .expect("valid query");
        println!(
            "  {:>8}: {} cores, |R| = {} edges, {:?}",
            algo.name(),
            sink.num_cores,
            sink.total_edges,
            stats.total_time()
        );
    }
}
