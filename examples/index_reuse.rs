//! Reusing the edge core window skyline across repeated queries.
//!
//! The framework of the paper splits a query into a precomputation phase
//! (the CoreTime sweep producing the edge core window skyline) and an
//! enumeration phase whose cost is bounded by the result size.  When an
//! application issues several enumeration passes over the same `(k, range)`
//! configuration — e.g. streaming results into different consumers, or
//! re-ranking with different filters — the skyline can be built once and
//! reused, paying the precomputation cost a single time.
//!
//! Run with: `cargo run --release --example index_reuse`

use std::time::Instant;
use temporal_kcore::prelude::*;
use temporal_kcore::tkcore::{enumerate, FnSink};

fn main() {
    let profile = DatasetProfile::by_name("EM").expect("profile exists");
    let graph = profile.generate();
    let stats = DatasetStats::compute(&graph);
    let k = stats.k_for_percent(30);
    let range = graph.span();
    println!(
        "Dataset {} analogue: {} vertices, {} edges, {} timestamps, k = {}",
        profile.name,
        stats.num_vertices,
        stats.num_edges,
        stats.tmax,
        k
    );

    // Build the skyline once.
    let t0 = Instant::now();
    let ecs = EdgeCoreSkyline::build(&graph, k, range);
    let build_time = t0.elapsed();
    println!(
        "CoreTime phase: |ECS| = {} minimal core windows in {:?}",
        ecs.total_windows(),
        build_time
    );

    // Pass 1: count everything.
    let t1 = Instant::now();
    let mut counter = CountingSink::default();
    enumerate(&graph, &ecs, &mut counter);
    println!(
        "Pass 1 (count all): {} cores, |R| = {} edges in {:?}",
        counter.num_cores,
        counter.total_edges,
        t1.elapsed()
    );

    // Pass 2: keep only large cores, without re-running the precomputation.
    let t2 = Instant::now();
    let mut large = 0u64;
    let mut largest = 0usize;
    {
        let mut sink = FnSink(|_tti, edges: &[temporal_graph::EdgeId]| {
            if edges.len() >= 100 {
                large += 1;
            }
            largest = largest.max(edges.len());
        });
        enumerate(&graph, &ecs, &mut sink);
    }
    println!(
        "Pass 2 (filter >= 100 edges): {} large cores, largest has {} edges, in {:?}",
        large,
        largest,
        t2.elapsed()
    );

    // Pass 3: per-start-time histogram of core counts.
    let t3 = Instant::now();
    let mut per_start = vec![0u32; graph.tmax() as usize + 1];
    {
        let mut sink = FnSink(|tti: TimeWindow, _edges: &[temporal_graph::EdgeId]| {
            per_start[tti.start() as usize] += 1;
        });
        enumerate(&graph, &ecs, &mut sink);
    }
    let busiest = per_start
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(t, &c)| (t, c))
        .unwrap_or((0, 0));
    println!(
        "Pass 3 (per-start histogram): busiest start time {} begins {} distinct cores, in {:?}",
        busiest.0,
        busiest.1,
        t3.elapsed()
    );

    println!(
        "\nTotal: one {:?} precomputation amortised over three enumeration passes.",
        build_time
    );
}
