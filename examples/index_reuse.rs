//! Index reuse through the cached batch-query engine.
//!
//! The framework of the paper splits a query into a precomputation phase
//! (the CoreTime sweep producing the edge core window skyline) and an
//! enumeration phase whose cost is bounded by the result size.  A skyline
//! built for the whole time span answers *every* sub-range query for the
//! same `k` by restriction, so a serving workload should build it once and
//! amortise it across the query stream.  That is exactly what
//! [`QueryEngine`] automates: this example fires a batch of sub-range
//! queries cold (one fresh skyline per query, as the one-shot API does) and
//! then through the engine, and prints the amortisation.
//!
//! Run with: `cargo run --release --example index_reuse`

use std::sync::Arc;
use std::time::Instant;
use temporal_kcore::prelude::*;

fn main() {
    let profile = DatasetProfile::by_name("EM").expect("profile exists");
    let graph = profile.generate();
    let stats = DatasetStats::compute(&graph);
    let k = stats.k_for_percent(30);
    println!(
        "Dataset {} analogue: {} vertices, {} edges, {} timestamps, k = {}",
        profile.name, stats.num_vertices, stats.num_edges, stats.tmax, k
    );

    // A stream of sliding sub-range queries, the shape a monitoring
    // dashboard would issue (overlapping windows of 10% of the timeline).
    let len = stats.range_len_for_percent(10).max(1);
    let step = (len / 2).max(1);
    let queries: Vec<TimeRangeKCoreQuery> = (1..=graph.tmax().saturating_sub(len - 1))
        .step_by(step as usize)
        .map(|start| {
            TimeRangeKCoreQuery::new(k, TimeWindow::new(start, start + len - 1))
                .expect("k >= 1 by construction")
        })
        .collect();
    println!(
        "Query stream: {} overlapping windows of {} timestamps\n",
        queries.len(),
        len
    );

    // Cold baseline: every query pays its own CoreTime sweep.
    let t0 = Instant::now();
    let mut cold_cores = 0u64;
    for query in &queries {
        let mut sink = CountingSink::default();
        query.run_with(&graph, Algorithm::Enum, &mut sink);
        cold_cores += sink.num_cores;
    }
    let cold_time = t0.elapsed();
    println!("Cold per-query (skyline rebuilt every time): {cold_cores} cores in {cold_time:?}");

    // Engine, first batch: pays the one-time span-wide build for this k,
    // which every later query for the same k reuses.
    let engine = Arc::new(QueryEngine::new(graph.clone()));
    let t1 = Instant::now();
    let (_, first_batch) = engine.run_batch(&queries).expect("valid workload queries");
    let first_time = t1.elapsed();
    println!(
        "Engine batch 1 (builds the span-wide index):  {} cores in {first_time:?}",
        first_batch.total_cores
    );

    // Engine, steady state: the index is resident, so every query is a
    // cache hit plus a cheap restriction — the CoreTime phase is amortised
    // to ~zero.
    let t2 = Instant::now();
    let (results, batch) = engine.run_batch(&queries).expect("valid workload queries");
    let warm_time = t2.elapsed();
    let warm_cores = batch.total_cores;
    println!(
        "Engine batch 2 (warm, {} threads):            {warm_cores} cores in {warm_time:?}",
        batch.threads
    );
    assert_eq!(
        cold_cores, warm_cores,
        "identical results are non-negotiable"
    );

    let cache = engine.cache_stats();
    println!(
        "\nIndex cache: {} miss (the single span-wide build), {} hits, {:.2} MiB resident",
        cache.misses,
        cache.hits,
        cache.resident_bytes as f64 / (1024.0 * 1024.0)
    );
    println!(
        "Warm precompute time summed over {} queries: {:?} (restriction only)",
        queries.len(),
        batch.precompute_time,
    );
    println!(
        "Steady-state speedup over cold per-query: {:.1}x on this run",
        cold_time.as_secs_f64() / warm_time.as_secs_f64().max(1e-9)
    );

    // The per-query sinks are available too, e.g. for the largest window.
    let busiest = results
        .iter()
        .zip(&queries)
        .max_by_key(|((sink, _), _)| sink.num_cores)
        .expect("at least one query");
    println!(
        "Busiest window {} holds {} distinct {k}-cores (|R| = {} edges)",
        busiest.1.range(),
        busiest.0 .0.num_cores,
        busiest.0 .0.total_edges
    );

    // The same cache also serves k-range sweeps through the unified request
    // API: each k of the sweep builds its span-wide index at most once.
    let backend = CachedBackend::new(Arc::clone(&engine));
    let misses_before = engine.cache_stats().misses;
    // Run against the engine's own graph: the backend's identity check is
    // O(1) for it, while an equal clone would cost an O(|E|) comparison.
    let sweep = QueryRequest::sweep(k.saturating_sub(1).max(1)..=k + 1, 1, graph.tmax())
        .run(engine.graph(), &backend)
        .expect("valid sweep");
    println!("\nk-range sweep around k = {k} (one skyline build per new k):");
    for outcome in &sweep.outcomes {
        println!(
            "  k = {:>2}: {:>6} cores, |R| = {:>8} edges ({:?})",
            outcome.k,
            outcome.stats.num_cores,
            outcome.stats.total_result_edges,
            outcome.stats.total_time()
        );
    }
    println!(
        "Sweep added {} index builds for {} k values",
        engine.cache_stats().misses - misses_before,
        sweep.outcomes.len()
    );
}
