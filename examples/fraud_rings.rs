//! Detecting transaction rings in a synthetic money-transfer network.
//!
//! The paper motivates time-range k-core queries with anti-money-laundering:
//! tightly connected groups of accounts that transact intensely within short
//! time windows.  This example plants a few such "smurfing rings" inside a
//! large background of ordinary transfers and shows how enumerating all
//! temporal k-cores surfaces each ring together with the exact window in
//! which it operated — something a single fixed window would miss.
//!
//! Run with: `cargo run --release --example fraud_rings`

use temporal_kcore::prelude::*;
use temporal_kcore::temporal_graph::generator::{planted_bursty_cores, BurstyConfig};

fn main() {
    // A synthetic transaction network: 2,000 accounts exchanging ordinary
    // transfers over 3,000 time units (sparse background), plus 6 planted
    // rings of 12 accounts that transact densely within ~40 time units.
    let config = BurstyConfig {
        num_vertices: 2_000,
        background_edges: 4_000,
        num_bursts: 6,
        burst_size: 12,
        burst_duration: 40,
        burst_density: 0.7,
        num_timestamps: 3_000,
    };
    let graph = planted_bursty_cores(&config, 2_024);
    let stats = DatasetStats::compute(&graph);
    println!(
        "Transaction network: {} accounts, {} transfers, {} timestamps, kmax = {}",
        stats.num_vertices, stats.num_edges, stats.tmax, stats.kmax
    );

    // Ask for all temporal 5-cores anywhere in the full history.  A ring of
    // 12 accounts at 70% density forms a dense subgraph with minimum degree
    // well above 5 inside its burst window, while random background activity
    // almost never does within a short window.  The full result set over a
    // 3,000-timestamp history is huge, so the results are *streamed*: only
    // the suspicious ones (cores confined to a short window) are retained.
    let k = 5;
    let query = TimeRangeKCoreQuery::new(k, graph.span()).expect("k >= 1");
    let window_cap = 2 * u64::from(config.burst_duration);
    let t0 = std::time::Instant::now();
    let mut total_cores = 0u64;
    let mut suspicious: Vec<TemporalKCore> = Vec::new();
    {
        use temporal_kcore::tkcore::FnSink;
        let mut sink = FnSink(|tti: TimeWindow, edges: &[temporal_graph::EdgeId]| {
            total_cores += 1;
            if tti.len() <= window_cap {
                suspicious.push(TemporalKCore::new(tti, edges.to_vec()));
            }
        });
        query.run_with(&graph, Algorithm::Enum, &mut sink);
    }
    println!(
        "\nEnumerated {} temporal {}-cores in {:?} (streamed, not stored)",
        total_cores,
        k,
        t0.elapsed()
    );

    suspicious.sort_by_key(|c| c.tti);
    println!(
        "{} cores are confined to windows of at most {} time units:",
        suspicious.len(),
        window_cap
    );

    // Deduplicate by account set to present each ring once.
    let mut seen_rings: Vec<Vec<VertexId>> = Vec::new();
    for core in &suspicious {
        let accounts = core.vertices(&graph);
        if seen_rings.iter().any(|r| r == &accounts) {
            continue;
        }
        println!(
            "  ring of {:>2} accounts active in {} ({} transfers)",
            accounts.len(),
            core.tti,
            core.num_edges()
        );
        seen_rings.push(accounts);
    }
    println!(
        "\n{} distinct suspicious account groups found (planted: {}).",
        seen_rings.len(),
        config.num_bursts
    );
}
