//! Serving temporal k-core queries over TCP with priority lanes and
//! deadlines.
//!
//! A monitoring dashboard (interactive lane, generous deadline) shares one
//! `CoreService` with a nightly report generator (batch lane).  The TCP
//! front end keeps them on one socket protocol — line-delimited JSON, one
//! request per line — while the service guarantees that interactive
//! requests dequeue first and that requests whose deadline expired while
//! queued are shed with a typed error instead of wasting a worker.
//!
//! Everything runs in this one process: the example binds an ephemeral
//! loopback port, serves itself a handful of requests, then drains
//! gracefully via the `shutdown` op.
//!
//! Run with: `cargo run --release --example tcp_serving`

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use temporal_kcore::prelude::*;
use temporal_kcore::tkcore::paper_example;

fn main() {
    // The service: one worker so the priority inversion below is visible.
    let service = Arc::new(CoreService::start(
        paper_example::graph(),
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
    ));
    let server = Arc::new(
        TkServer::bind(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default())
            .expect("bind a loopback listener"),
    );
    let addr = server.local_addr();
    println!("serving the paper example on {addr}");

    // The accept loop blocks, so it gets its own thread; a real deployment
    // would let `tkc serve` own the main thread instead.
    let acceptor = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.serve())
    };

    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut replies = BufReader::new(stream.try_clone().expect("clone"));
    let mut ask = |line: &str| -> String {
        writeln!(stream, "{line}").expect("send");
        let mut reply = String::new();
        replies.read_line(&mut reply).expect("reply");
        reply.trim_end().to_string()
    };

    // The dashboard refreshes a count with a 2-second deadline.
    println!("\ninteractive count with a 2s deadline:");
    println!(
        "  {}",
        ask(r#"{"id": 1, "k": 2, "start": 1, "end": 4, "deadline_ms": 2000}"#)
    );

    // The report generator materializes cores on the batch lane; it only
    // runs once no interactive request is waiting.
    println!("\nbatch sweep, materialized:");
    println!(
        "  {}",
        ask(
            r#"{"id": 2, "k_min": 1, "k_max": 3, "start": 1, "end": 7, "lane": "batch", "output": "cores"}"#
        )
    );

    // An already-expired deadline is shed with a typed error reply — the
    // connection stays open, and no worker ever ran the query.
    println!("\nan expired deadline is shed, not executed:");
    println!(
        "  {}",
        ask(r#"{"id": 3, "k": 2, "start": 1, "end": 4, "deadline_ms": 0}"#)
    );

    // The per-lane ledger: admissions, completions, sheds, rejections.
    println!("\nservice stats:");
    println!("  {}", ask(r#"{"op": "stats"}"#));

    // Graceful drain: stop accepting, finish in-flight work, return.
    println!("\ndraining:");
    println!("  {}", ask(r#"{"op": "shutdown"}"#));
    let summary = acceptor
        .join()
        .expect("acceptor exits")
        .expect("drain succeeds");
    println!(
        "served {} connections, {} requests",
        summary.connections, summary.requests
    );
}
