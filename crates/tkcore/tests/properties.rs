//! Property-based tests: the three enumeration algorithms agree with the
//! brute-force reference on randomized temporal graphs, and the framework's
//! structural invariants hold.

use proptest::prelude::*;
use std::sync::Arc;
use temporal_graph::{EdgeId, TemporalGraph, TemporalGraphBuilder, TimeWindow};
use tkcore::{
    enumerate_base_from_graph, enumerate_from_graph, naive_results, run_otcd, Algorithm,
    CachedBackend, CollectingSink, CoreBackend, EdgeCoreSkyline, QueryEngine, TemporalKCore,
    TimeRangeKCoreQuery, VertexCoreTimeIndex,
};

/// Strategy: a random temporal graph with up to `max_v` vertices, up to
/// `max_e` edges and up to `max_t` distinct timestamps.
fn arb_graph(max_v: u64, max_e: usize, max_t: i64) -> impl Strategy<Value = TemporalGraph> {
    prop::collection::vec((0..max_v, 0..max_v, 1..=max_t), 1..max_e).prop_filter_map(
        "graph must have at least one non-loop edge",
        |edges| {
            let edges: Vec<(u64, u64, i64)> =
                edges.into_iter().filter(|(u, v, _)| u != v).collect();
            if edges.is_empty() {
                return None;
            }
            TemporalGraphBuilder::new().with_edges(edges).build().ok()
        },
    )
}

fn canonical(mut cores: Vec<TemporalKCore>) -> Vec<TemporalKCore> {
    cores.sort_by(|a, b| a.tti.cmp(&b.tti).then_with(|| a.edges.cmp(&b.edges)));
    cores
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The final algorithm, the skyline baseline and OTCD all produce exactly
    /// the naive reference's result set, for several values of k.
    #[test]
    fn all_algorithms_agree_with_naive(g in arb_graph(12, 50, 10), k in 2usize..4) {
        let range = g.span();
        let expected = naive_results(&g, k, range);

        let mut s1 = CollectingSink::default();
        enumerate_from_graph(&g, k, range, &mut s1);
        prop_assert_eq!(&canonical(s1.cores), &expected);

        let mut s2 = CollectingSink::default();
        enumerate_base_from_graph(&g, k, range, &mut s2);
        prop_assert_eq!(&canonical(s2.cores), &expected);

        let mut s3 = CollectingSink::default();
        run_otcd(&g, k, range, &mut s3);
        prop_assert_eq!(&canonical(s3.cores), &expected);
    }

    /// Results from sub-ranges of the span are also identical across
    /// algorithms (exercises range clamping and active-time bookkeeping).
    #[test]
    fn sub_range_queries_agree(g in arb_graph(10, 40, 8), k in 2usize..3, lo in 1u32..4, len in 0u32..6) {
        let start = lo.min(g.tmax());
        let end = (start + len).min(g.tmax()).max(start);
        let range = TimeWindow::new(start, end);
        let expected = naive_results(&g, k, range);

        let mut s1 = CollectingSink::default();
        enumerate_from_graph(&g, k, range, &mut s1);
        prop_assert_eq!(&canonical(s1.cores), &expected);

        let mut s3 = CollectingSink::default();
        run_otcd(&g, k, range, &mut s3);
        prop_assert_eq!(&canonical(s3.cores), &expected);
    }

    /// The unified `CoreBackend` surface agrees with the naive reference for
    /// all four algorithm backends plus the engine-cached backend, on random
    /// graphs and sub-ranges.
    #[test]
    fn core_backends_agree_with_naive(
        g in arb_graph(12, 50, 10),
        k in 2usize..4,
        raw_lo in 1u32..10,
        raw_len in 0u32..10,
    ) {
        let lo = raw_lo.min(g.tmax());
        let range = TimeWindow::new(lo, (lo + raw_len).min(g.tmax()).max(lo));
        let expected = naive_results(&g, k, range);
        let engine = Arc::new(QueryEngine::new(g.clone()));
        let backends: Vec<Box<dyn CoreBackend>> = vec![
            Box::new(Algorithm::Enum),
            Box::new(Algorithm::EnumBase),
            Box::new(Algorithm::Otcd),
            Box::new(Algorithm::Naive),
            Box::new(CachedBackend::new(Arc::clone(&engine))),
        ];
        for backend in &backends {
            let mut sink = CollectingSink::default();
            let stats = backend
                .execute(&g, k, range, &mut sink)
                .expect("validated inputs execute");
            prop_assert_eq!(stats.num_cores as usize, expected.len(), "{}", backend.name());
            prop_assert_eq!(&canonical(sink.cores), &expected, "{}", backend.name());
        }
        // Malformed inputs are typed errors on every backend, never panics.
        for backend in &backends {
            let mut sink = CollectingSink::default();
            let zero_k = matches!(
                backend.execute(&g, 0, range, &mut sink),
                Err(tkcore::TkError::KOutOfRange { k: 0 })
            );
            prop_assert!(zero_k, "k = 0 must be KOutOfRange");
            let past = TimeWindow::new(g.tmax() + 1, g.tmax() + 3);
            let past_tmax = matches!(
                backend.execute(&g, k, past, &mut sink),
                Err(tkcore::TkError::WindowPastTmax { .. })
            );
            prop_assert!(past_tmax, "past-tmax window must be WindowPastTmax");
        }
    }

    /// Every emitted core is a valid k-core, has a tight TTI contained in the
    /// query range, and no two cores share the same edge set.
    #[test]
    fn result_invariants(g in arb_graph(14, 60, 12), k in 2usize..4) {
        let range = g.span();
        let mut sink = CollectingSink::default();
        enumerate_from_graph(&g, k, range, &mut sink);
        let mut seen = std::collections::HashSet::new();
        for core in &sink.cores {
            prop_assert!(core.is_valid_k_core(&g, k));
            prop_assert!(core.tti_is_tight(&g));
            prop_assert!(range.contains_window(&core.tti));
            prop_assert!(seen.insert(core.edges.clone()), "duplicate edge set");
        }
    }

    /// Skyline invariants: windows of an edge strictly increase in both
    /// endpoints, contain the edge's timestamp, and lie within the range;
    /// moreover the edge really is in the k-core of each minimal window but
    /// not in the k-core of the two windows obtained by shrinking it.
    #[test]
    fn skyline_invariants(g in arb_graph(10, 40, 8), k in 2usize..3) {
        let range = g.span();
        let ecs = EdgeCoreSkyline::build(&g, k, range);
        for (edge, windows) in ecs.iter() {
            let t = g.edge(edge).t;
            for pair in windows.windows(2) {
                prop_assert!(pair[0].start() < pair[1].start());
                prop_assert!(pair[0].end() < pair[1].end());
            }
            for w in windows {
                prop_assert!(range.contains_window(w));
                prop_assert!(w.contains(t));
                prop_assert!(tkcore::naive::edge_in_core_of_window(&g, k, *w, edge));
                if w.start() < w.end() {
                    let shrunk_left = TimeWindow::new(w.start() + 1, w.end());
                    let shrunk_right = TimeWindow::new(w.start(), w.end() - 1);
                    prop_assert!(!tkcore::naive::edge_in_core_of_window(&g, k, shrunk_left, edge));
                    prop_assert!(!tkcore::naive::edge_in_core_of_window(&g, k, shrunk_right, edge));
                }
            }
        }
    }

    /// VCT invariant: the level sets of the index reproduce per-window core
    /// membership (vertex u is in the k-core of [ts, te] iff its core time
    /// for ts is at most te).
    #[test]
    fn vct_membership_matches_peeling(g in arb_graph(10, 36, 7), k in 2usize..3) {
        let range = g.span();
        let vct = VertexCoreTimeIndex::build(&g, k, range);
        for ts in range.start()..=range.end() {
            for te in ts..=range.end() {
                let window = TimeWindow::new(ts, te);
                let core_edges = tkcore::core_edges_of_window(&g, k, window);
                let mut in_core = vec![false; g.num_vertices()];
                for &e in &core_edges {
                    let edge = g.edge(e);
                    in_core[edge.u as usize] = true;
                    in_core[edge.v as usize] = true;
                }
                for u in 0..g.num_vertices() as u32 {
                    let predicted = vct.core_time(u, ts) <= te;
                    prop_assert_eq!(predicted, in_core[u as usize],
                        "u={} window={}", u, window);
                }
            }
        }
    }

    /// Query-engine equivalence: for random `(k, sub-range)` pairs and every
    /// algorithm, answers served from the engine's cached span-wide skyline
    /// (restricted to the sub-range) are identical — same cores, same `|R|`,
    /// same canonical order — to answers from a skyline freshly built for
    /// that sub-range.
    #[test]
    fn engine_restriction_matches_fresh_build(
        g in arb_graph(12, 50, 10),
        k in 2usize..4,
        raw_lo in 1u32..12,
        raw_len in 0u32..12,
    ) {
        let lo = raw_lo.min(g.tmax());
        let range = TimeWindow::new(lo, (lo + raw_len).min(g.tmax()).max(lo));
        let engine = QueryEngine::new(g.clone());
        let query = TimeRangeKCoreQuery::new(k, range).expect("k >= 2");
        for algorithm in Algorithm::ALL {
            let mut fresh = CollectingSink::default();
            let fresh_stats = query.run_with(&g, algorithm, &mut fresh);
            let mut cached = CollectingSink::default();
            let cached_stats = engine
                .run_with(&query, algorithm, &mut cached)
                .expect("in-span query");
            prop_assert_eq!(cached_stats.num_cores, fresh_stats.num_cores,
                "{} k={} range={}", algorithm.name(), k, range);
            prop_assert_eq!(cached_stats.total_result_edges, fresh_stats.total_result_edges,
                "{} k={} range={}", algorithm.name(), k, range);
            prop_assert_eq!(&canonical(cached.cores), &canonical(fresh.cores),
                "{} k={} range={}", algorithm.name(), k, range);
        }
        // The skyline-based algorithms shared one span-wide index.
        let stats = engine.cache_stats();
        prop_assert_eq!(stats.misses, 1, "cache misses: {:?}", stats);
        prop_assert!(stats.hits >= 1, "cache hits: {:?}", stats);
    }

    /// The total result size reported by the counting path equals the sum of
    /// the collected cores' edge counts.
    #[test]
    fn counting_equals_collecting(g in arb_graph(12, 50, 10), k in 2usize..3) {
        let range = g.span();
        let mut collecting = CollectingSink::default();
        let stats = enumerate_from_graph(&g, k, range, &mut collecting);
        let total: usize = collecting.cores.iter().map(|c| c.num_edges()).sum();
        prop_assert_eq!(stats.total_edges as usize, total);
        prop_assert_eq!(stats.num_cores as usize, collecting.cores.len());
        let edge_ids: Vec<EdgeId> = collecting.cores.iter().flat_map(|c| c.edges.clone()).collect();
        prop_assert!(edge_ids.iter().all(|&e| (e as usize) < g.num_edges()));
    }
}
