//! Structured errors for the fallible query API.
//!
//! Every public entry point of the unified query surface —
//! [`crate::QueryRequest::validate`], [`crate::CoreBackend::execute`],
//! [`crate::QueryEngine::run_with`], [`crate::CoreService::submit`] — returns
//! `Result<_, TkError>` instead of panicking or silently clamping degenerate
//! input.  The variants mirror the ways a `(k, [Ts, Te])` query can be
//! malformed or refused, so callers (the CLI, a serving layer) can render or
//! route them without string matching.

use crate::query::Algorithm;
use std::fmt;
use std::time::Duration;
use temporal_graph::Timestamp;

/// Error type of the unified time-range temporal k-core query API.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TkError {
    /// The query parameter `k` is outside the meaningful range (`k >= 1`; a
    /// 0-core is the whole projected graph, not a cohesive-subgraph query).
    KOutOfRange {
        /// The rejected value.
        k: usize,
    },
    /// A multi-`k` request selected no `k` at all (an empty set, or an
    /// inverted `k` range such as `4..=2`).
    EmptyKSelection,
    /// The requested window `[start, end]` covers no timestamp: `start`
    /// is zero (timestamps are 1-based) or exceeds `end`.
    EmptyWindow {
        /// Requested window start.
        start: Timestamp,
        /// Requested window end.
        end: Timestamp,
    },
    /// The requested window starts after the graph's last timestamp, so no
    /// edge occurrence can fall inside it.
    WindowPastTmax {
        /// Requested window start.
        start: Timestamp,
        /// The graph's last timestamp.
        tmax: Timestamp,
    },
    /// An admission-control budget was hit; the request was refused rather
    /// than queued or executed.
    BudgetExceeded {
        /// The exhausted resource (`"request queue"`, `"cache memory"`).
        resource: &'static str,
        /// The configured limit in the resource's natural unit.
        limit: usize,
    },
    /// The request's deadline expired before a worker could execute it: it
    /// was shed from the queue (or refused at admission when it arrived
    /// already expired) without running.  Nothing was computed.
    DeadlineExceeded {
        /// The deadline the request carried at submission.
        deadline: Duration,
        /// How long the request had waited when it was shed.
        waited: Duration,
    },
    /// A precomputed [`crate::EdgeCoreSkyline`] was supplied for different
    /// query parameters than the query being executed.
    SkylineMismatch {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// The chosen algorithm cannot perform the requested operation (e.g.
    /// `Otcd` and `Naive` cannot run from a precomputed skyline).
    UnsupportedAlgorithm {
        /// The algorithm that was asked to do the work.
        algorithm: Algorithm,
        /// The operation it does not support.
        operation: &'static str,
    },
    /// An algorithm name did not parse (see [`Algorithm`]'s `FromStr`).
    UnknownAlgorithm {
        /// The unparseable input.
        name: String,
    },
    /// A [`crate::ShardPlan`] could not be resolved against the graph's
    /// timeline (zero shard count, out-of-range or non-increasing cut
    /// points, zero edge target).
    InvalidShardPlan {
        /// Human-readable description of the defect.
        detail: String,
    },
    /// A [`crate::CachedBackend`] was handed a graph other than the one its
    /// engine serves; cached skylines would be silently wrong for it.
    GraphMismatch,
    /// The [`crate::CoreService`] worker has shut down; the request cannot
    /// be accepted or its reply was dropped.
    ServiceStopped,
    /// A service worker caught a panic while executing the request
    /// (typically a panicking user sink).  The worker survived, its
    /// statistics are intact, and only this request failed.
    WorkerPanicked {
        /// The rendered panic payload.
        detail: String,
    },
    /// An I/O error while loading inputs or persisting outputs.
    Io {
        /// The rendered underlying error.
        detail: String,
    },
    /// An ingest event arrived out of time order: live appends must carry
    /// non-decreasing timestamps strictly past the sealed watermark.
    AppendOutOfOrder {
        /// The rejected event timestamp.
        t: Timestamp,
        /// The smallest timestamp the ingest lane currently accepts.
        watermark: Timestamp,
    },
    /// An ingest event duplicates an edge occurrence already present at the
    /// same timestamp.
    AppendDuplicate {
        /// First endpoint label of the rejected event.
        u: u64,
        /// Second endpoint label of the rejected event.
        v: u64,
        /// Timestamp of the rejected event.
        t: Timestamp,
    },
    /// An ingest batch was refused before any event was applied (a self
    /// loop or malformed event, or the target engine does not ingest).
    AppendRejected {
        /// Human-readable description of the rejection.
        detail: String,
    },
}

impl TkError {
    /// Stable machine-readable name of this error's variant.
    ///
    /// The `tkc serve` wire protocol puts this in every error reply's
    /// `"error"` field so clients can route on it (retry `BudgetExceeded`,
    /// drop `DeadlineExceeded`, surface the rest) without parsing the
    /// human-readable [`fmt::Display`] rendering.
    pub fn code(&self) -> &'static str {
        match self {
            TkError::KOutOfRange { .. } => "KOutOfRange",
            TkError::EmptyKSelection => "EmptyKSelection",
            TkError::EmptyWindow { .. } => "EmptyWindow",
            TkError::WindowPastTmax { .. } => "WindowPastTmax",
            TkError::BudgetExceeded { .. } => "BudgetExceeded",
            TkError::DeadlineExceeded { .. } => "DeadlineExceeded",
            TkError::SkylineMismatch { .. } => "SkylineMismatch",
            TkError::UnsupportedAlgorithm { .. } => "UnsupportedAlgorithm",
            TkError::UnknownAlgorithm { .. } => "UnknownAlgorithm",
            TkError::InvalidShardPlan { .. } => "InvalidShardPlan",
            TkError::GraphMismatch => "GraphMismatch",
            TkError::ServiceStopped => "ServiceStopped",
            TkError::WorkerPanicked { .. } => "WorkerPanicked",
            TkError::Io { .. } => "Io",
            TkError::AppendOutOfOrder { .. } => "AppendOutOfOrder",
            TkError::AppendDuplicate { .. } => "AppendDuplicate",
            TkError::AppendRejected { .. } => "AppendRejected",
        }
    }
}

impl fmt::Display for TkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TkError::KOutOfRange { k } => {
                write!(
                    f,
                    "k = {k} is out of range (temporal k-core queries require k >= 1)"
                )
            }
            TkError::EmptyKSelection => write!(f, "the request selects no k at all"),
            TkError::EmptyWindow { start, end } => write!(
                f,
                "window [{start}, {end}] is empty (timestamps are 1-based and start <= end)"
            ),
            TkError::WindowPastTmax { start, tmax } => write!(
                f,
                "window starts at {start}, past the graph's last timestamp {tmax}"
            ),
            TkError::BudgetExceeded { resource, limit } => {
                write!(
                    f,
                    "{resource} budget exceeded (limit {limit}); request rejected"
                )
            }
            TkError::DeadlineExceeded { deadline, waited } => write!(
                f,
                "deadline of {deadline:?} exceeded after waiting {waited:?}; request shed \
                 without executing"
            ),
            TkError::SkylineMismatch { detail } => {
                write!(f, "skyline does not match the query: {detail}")
            }
            TkError::UnsupportedAlgorithm {
                algorithm,
                operation,
            } => write!(f, "algorithm {algorithm} does not support {operation}"),
            TkError::UnknownAlgorithm { name } => write!(
                f,
                "unknown algorithm `{name}` (expected enum, enum-base, otcd or naive)"
            ),
            TkError::InvalidShardPlan { detail } => {
                write!(f, "invalid shard plan: {detail}")
            }
            TkError::GraphMismatch => {
                write!(
                    f,
                    "backend executed against a different graph than it serves"
                )
            }
            TkError::ServiceStopped => write!(f, "the query service has shut down"),
            TkError::WorkerPanicked { detail } => {
                write!(f, "a service worker panicked while executing: {detail}")
            }
            TkError::Io { detail } => write!(f, "I/O error: {detail}"),
            TkError::AppendOutOfOrder { t, watermark } => write!(
                f,
                "out-of-order append at t = {t}: the ingest lane accepts t >= {watermark}"
            ),
            TkError::AppendDuplicate { u, v, t } => write!(
                f,
                "duplicate append: edge ({u}, {v}) already occurs at t = {t}"
            ),
            TkError::AppendRejected { detail } => {
                write!(f, "append rejected: {detail}")
            }
        }
    }
}

impl std::error::Error for TkError {}

impl From<std::io::Error> for TkError {
    fn from(e: std::io::Error) -> Self {
        TkError::Io {
            detail: e.to_string(),
        }
    }
}

impl From<temporal_graph::TemporalGraphError> for TkError {
    fn from(e: temporal_graph::TemporalGraphError) -> Self {
        use temporal_graph::TemporalGraphError as G;
        match e {
            G::OutOfOrder { t, watermark } => TkError::AppendOutOfOrder { t, watermark },
            G::DuplicateEvent { u, v, t } => TkError::AppendDuplicate { u, v, t },
            G::Io(io) => TkError::Io {
                detail: io.to_string(),
            },
            other => TkError::AppendRejected {
                detail: other.to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let cases: Vec<(TkError, &str)> = vec![
            (TkError::KOutOfRange { k: 0 }, "k = 0"),
            (TkError::EmptyKSelection, "no k"),
            (TkError::EmptyWindow { start: 5, end: 2 }, "[5, 2]"),
            (
                TkError::WindowPastTmax { start: 9, tmax: 7 },
                "past the graph",
            ),
            (
                TkError::BudgetExceeded {
                    resource: "request queue",
                    limit: 1,
                },
                "request queue",
            ),
            (
                TkError::DeadlineExceeded {
                    deadline: Duration::from_millis(5),
                    waited: Duration::from_millis(9),
                },
                "deadline",
            ),
            (
                TkError::UnsupportedAlgorithm {
                    algorithm: Algorithm::Otcd,
                    operation: "skyline execution",
                },
                "OTCD",
            ),
            (
                TkError::UnknownAlgorithm {
                    name: "magic".into(),
                },
                "`magic`",
            ),
            (
                TkError::InvalidShardPlan {
                    detail: "zero shards".into(),
                },
                "shard plan",
            ),
            (TkError::GraphMismatch, "different graph"),
            (TkError::ServiceStopped, "shut down"),
            (
                TkError::WorkerPanicked {
                    detail: "sink exploded".into(),
                },
                "sink exploded",
            ),
            (
                TkError::Io {
                    detail: "gone".into(),
                },
                "gone",
            ),
            (
                TkError::AppendOutOfOrder { t: 3, watermark: 5 },
                "out-of-order",
            ),
            (TkError::AppendDuplicate { u: 1, v: 2, t: 9 }, "(1, 2)"),
            (
                TkError::AppendRejected {
                    detail: "self loop".into(),
                },
                "self loop",
            ),
        ];
        for (err, needle) in cases {
            let rendered = err.to_string();
            assert!(rendered.contains(needle), "{rendered:?} vs {needle:?}");
            assert!(!err.code().is_empty(), "every variant has a wire code");
        }
    }

    #[test]
    fn codes_name_the_variant() {
        assert_eq!(TkError::ServiceStopped.code(), "ServiceStopped");
        assert_eq!(
            TkError::DeadlineExceeded {
                deadline: Duration::from_millis(1),
                waited: Duration::from_millis(2),
            }
            .code(),
            "DeadlineExceeded"
        );
        assert_eq!(
            TkError::BudgetExceeded {
                resource: "request queue",
                limit: 4,
            }
            .code(),
            "BudgetExceeded"
        );
    }

    #[test]
    fn graph_append_errors_convert() {
        use temporal_graph::TemporalGraphError as G;
        assert!(matches!(
            TkError::from(G::OutOfOrder { t: 2, watermark: 4 }),
            TkError::AppendOutOfOrder { t: 2, watermark: 4 }
        ));
        assert!(matches!(
            TkError::from(G::DuplicateEvent { u: 1, v: 2, t: 3 }),
            TkError::AppendDuplicate { u: 1, v: 2, t: 3 }
        ));
        assert!(matches!(
            TkError::from(G::EmptyGraph),
            TkError::AppendRejected { .. }
        ));
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let err: TkError = io.into();
        assert!(matches!(err, TkError::Io { .. }));
        assert!(err.to_string().contains("missing"));
    }
}
