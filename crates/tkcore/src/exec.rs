//! A persistent work-stealing thread pool: [`ExecPool`].
//!
//! Before this module, every batch call spun up transient
//! `std::thread::scope` workers and [`crate::CoreService`] kept its own
//! dedicated worker threads over one shared queue.  `ExecPool` replaces both
//! with one persistent pool shared by the engines and the serving layer:
//!
//! * **per-worker lanes** — every worker owns a deque of tasks
//!   ([`ExecPool::spawn_on`] targets a lane), which is how the service pins
//!   shard-affine requests to the workers owning those shards' cache
//!   partitions;
//! * **stealing** — a worker that drains its own lane takes tasks from the
//!   shared injector ([`ExecPool::spawn`]) and then steals from the *back*
//!   of other workers' lanes, so affinity is a preference, never a stall;
//! * **nested batches** — [`ExecPool::run_batch`] fans an indexed closure
//!   across the pool with the *calling thread participating*: the caller
//!   claims indexes from the same atomic counter as the helper tasks, so a
//!   batch submitted from inside a pool task (a service request fanning a
//!   `k`-sweep across the same pool) always completes even if every worker
//!   is busy — no thread ever waits on work only other threads can do;
//! * **panic isolation** — a panicking task never kills its worker thread:
//!   the worker catches the unwind and keeps serving its lane, and
//!   `run_batch` re-raises the first payload on the calling thread.
//!
//! The offline build environment has no crates.io access, so there is no
//! rayon or crossbeam here: the deques are `VecDeque`s behind one pool
//! mutex.  Tasks are whole temporal k-core queries or index builds
//! (microseconds to seconds), so the scheduler lock is never the
//! bottleneck; the *scheduling policy* (own lane first, then injector, then
//! steal) is the same as a crossbeam-deque pool and swapping the storage
//! for lock-free deques later is local to this file.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

use crate::sync;

/// One unit of work; receives the index of the worker executing it.
type Task = Box<dyn FnOnce(usize) + Send + 'static>;

struct PoolState {
    /// Shared FIFO for tasks without lane affinity (batch helpers).
    injector: VecDeque<Task>,
    /// Per-worker deques: the owner pops the front, thieves pop the back.
    lanes: Vec<VecDeque<Task>>,
    /// `false` once the pool is shutting down; queued tasks still drain.
    open: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    work_ready: Condvar,
}

impl PoolShared {
    /// Locks the scheduler state, recovering from poisoning: a panicking
    /// task cannot take the whole pool down with it.
    fn lock(&self) -> MutexGuard<'_, PoolState> {
        sync::lock(&self.state)
    }
}

/// A persistent work-stealing pool of named OS threads.
///
/// See the [module documentation](self) for the scheduling policy.  Workers
/// live until the pool is dropped; dropping signals shutdown, drains every
/// queued task and joins the threads.
///
/// # Example
///
/// ```
/// use tkcore::exec::ExecPool;
///
/// let pool = ExecPool::new(2);
/// let squares = pool.run_batch(4, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9]);
/// ```
pub struct ExecPool {
    shared: Arc<PoolShared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    workers: usize,
}

impl ExecPool {
    /// Spawns a pool of `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Arc<Self> {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                injector: VecDeque::new(),
                lanes: (0..workers).map(|_| VecDeque::new()).collect(),
                open: true,
            }),
            work_ready: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|worker| {
                let worker_shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("tkcore-exec-{worker}"))
                    .spawn(move || worker_loop(&worker_shared, worker))
                    // tkc-lint: allow(no-panic-api) — failing to spawn pool workers at startup is unrecoverable; no queries are in flight yet
                    .expect("spawn exec pool worker")
            })
            .collect();
        Arc::new(Self {
            shared,
            handles: Mutex::new(handles),
            workers,
        })
    }

    /// Number of worker threads (and lanes) in the pool.
    pub fn num_workers(&self) -> usize {
        self.workers
    }

    /// Enqueues a task on the shared injector; any worker may execute it.
    pub fn spawn(&self, task: impl FnOnce(usize) + Send + 'static) {
        let mut state = self.shared.lock();
        state.injector.push_back(Box::new(task));
        drop(state);
        self.shared.work_ready.notify_one();
    }

    /// Enqueues a task on worker `lane % num_workers()`'s own deque.  The
    /// owning worker prefers it over stolen work, but an idle worker will
    /// steal it — affinity is a locality hint, not a pin.
    pub fn spawn_on(&self, lane: usize, task: impl FnOnce(usize) + Send + 'static) {
        let lane = lane % self.workers;
        let mut state = self.shared.lock();
        state.lanes[lane].push_back(Box::new(task));
        drop(state);
        self.shared.work_ready.notify_one();
    }

    /// Queue depth of every lane, in lane order (the service's least-loaded
    /// routing reads this).
    pub fn lane_lens(&self) -> Vec<usize> {
        let state = self.shared.lock();
        state.lanes.iter().map(VecDeque::len).collect()
    }

    /// Runs `run(i)` for every `i < len` across the pool **and the calling
    /// thread**, returning the results in index order.
    ///
    /// The caller claims indexes from the same shared counter as the helper
    /// tasks, so the batch completes even when every pool worker is busy —
    /// which makes nested batches (a pool task fanning out a sub-batch on
    /// the same pool) deadlock-free by construction.
    ///
    /// # Panics
    /// Re-raises the first panic any task produced, after every in-flight
    /// task of the batch has finished (worker threads survive; see the
    /// module docs).
    pub fn run_batch<R, F>(&self, len: usize, run: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(usize) -> R + Send + Sync + 'static,
    {
        run_batch_inner(Some(self), len, run)
    }

    fn close(&self) {
        let mut state = self.shared.lock();
        state.open = false;
        drop(state);
        self.shared.work_ready.notify_all();
    }
}

impl Drop for ExecPool {
    fn drop(&mut self) {
        self.close();
        let handles = std::mem::take(&mut *sync::lock(&self.handles));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// Pops the next task for `worker`: own lane front, then the injector, then
/// steal from the back of the other lanes (oldest task of the most local
/// victim first).
fn pop_task(state: &mut PoolState, worker: usize) -> Option<Task> {
    if let Some(task) = state.lanes[worker].pop_front() {
        return Some(task);
    }
    if let Some(task) = state.injector.pop_front() {
        return Some(task);
    }
    let n = state.lanes.len();
    for offset in 1..n {
        if let Some(task) = state.lanes[(worker + offset) % n].pop_back() {
            return Some(task);
        }
    }
    None
}

fn worker_loop(shared: &PoolShared, worker: usize) {
    loop {
        let task = {
            let mut state = shared.lock();
            loop {
                if let Some(task) = pop_task(&mut state, worker) {
                    break task;
                }
                if !state.open {
                    return; // closed and fully drained
                }
                // tkc-lint: allow(no-blocking-in-worker) — the idle wait IS the scheduler loop: it blocks only when no work is queued, and close() wakes every sleeper
                state = sync::wait(&shared.work_ready, state);
            }
        };
        // A panicking task must not kill the worker: lanes pinned to this
        // worker would starve until stolen, and the service's per-worker
        // accounting would lose a lane.  The payload is dropped here; batch
        // tasks re-raise on the calling thread, service tasks convert the
        // panic to a typed error before it reaches this frame.
        let _ = catch_unwind(AssertUnwindSafe(|| task(worker)));
    }
}

/// Shared state of one [`ExecPool::run_batch`] call.
struct BatchState<R> {
    next: AtomicUsize,
    results: Mutex<Vec<Option<std::thread::Result<R>>>>,
    remaining: Mutex<usize>,
    done: Condvar,
}

/// Executes an indexed batch, optionally with pool helpers; the calling
/// thread always participates.  Factored out so `pool = None` gives the
/// inline single-threaded path with identical semantics.
pub(crate) fn run_batch_inner<R, F>(pool: Option<&ExecPool>, len: usize, run: F) -> Vec<R>
where
    R: Send + 'static,
    F: Fn(usize) -> R + Send + Sync + 'static,
{
    if len == 0 {
        return Vec::new();
    }
    let batch = Arc::new(BatchState {
        next: AtomicUsize::new(0),
        results: Mutex::new((0..len).map(|_| None).collect()),
        remaining: Mutex::new(len),
        done: Condvar::new(),
    });
    let run = Arc::new(run);
    if let Some(pool) = pool {
        // The caller claims at least one index itself, so at most len - 1
        // helpers can ever find work.
        let helpers = pool.num_workers().min(len.saturating_sub(1));
        for _ in 0..helpers {
            let helper_batch = Arc::clone(&batch);
            let helper_run = Arc::clone(&run);
            pool.spawn(move |_worker| drain_batch(&helper_batch, helper_run.as_ref(), len));
        }
    }
    drain_batch(&batch, run.as_ref(), len);
    let mut remaining = sync::lock(&batch.remaining);
    while *remaining > 0 {
        // tkc-lint: allow(no-blocking-in-worker) — claim-alongside-helpers: the calling worker drained batch indexes itself above, so every index it can wait on is owned by an already-running thread, never queued behind this one
        remaining = sync::wait(&batch.done, remaining);
    }
    drop(remaining);
    let results = std::mem::take(&mut *sync::lock(&batch.results));
    results
        .into_iter()
        .map(
            // tkc-lint: allow(no-panic-api) — run_batch stores every index exactly once before signalling done
            |slot| match slot.expect("every index was claimed and stored") {
                Ok(result) => result,
                Err(payload) => std::panic::resume_unwind(payload),
            },
        )
        .collect()
}

/// Claims indexes until the batch counter runs dry, recording each result
/// (or the panic payload) and signalling completion of the last one.
fn drain_batch<R, F>(batch: &BatchState<R>, run: &F, len: usize)
where
    R: Send,
    F: Fn(usize) -> R,
{
    loop {
        let i = batch.next.fetch_add(1, Ordering::Relaxed);
        if i >= len {
            return;
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| run(i)));
        {
            let mut results = sync::lock(&batch.results);
            results[i] = Some(outcome);
        }
        let mut remaining = sync::lock(&batch.remaining);
        *remaining -= 1;
        if *remaining == 0 {
            batch.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    #[test]
    fn batch_results_come_back_in_index_order() {
        let pool = ExecPool::new(3);
        let results = pool.run_batch(100, |i| i * 2);
        assert_eq!(results, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(pool.num_workers(), 3);
    }

    #[test]
    fn zero_and_one_worker_pools_still_complete_batches() {
        let pool = ExecPool::new(0); // clamped to 1
        assert_eq!(pool.num_workers(), 1);
        assert_eq!(pool.run_batch(5, |i| i + 1), vec![1, 2, 3, 4, 5]);
        assert_eq!(pool.run_batch(0, |i: usize| i), Vec::<usize>::new());
    }

    #[test]
    fn nested_batches_do_not_deadlock() {
        // One worker, and the outer batch occupies it: the inner batches can
        // only complete because their callers participate.
        let pool = ExecPool::new(1);
        let inner_pool = Arc::clone(&pool);
        let results = pool.run_batch(4, move |i| inner_pool.run_batch(3, move |j| i * 10 + j));
        assert_eq!(results[2], vec![20, 21, 22]);
        assert_eq!(results.len(), 4);
    }

    #[test]
    fn spawned_tasks_run_and_report_a_worker_index() {
        let pool = ExecPool::new(2);
        let counter = Arc::new(AtomicU64::new(0));
        let (tx, rx) = std::sync::mpsc::channel();
        for lane in 0..4 {
            let task_counter = Arc::clone(&counter);
            let task_tx = tx.clone();
            pool.spawn_on(lane, move |worker| {
                assert!(worker < 2, "worker index within the pool");
                task_counter.fetch_add(1, Ordering::Relaxed);
                task_tx.send(()).unwrap();
            });
        }
        for _ in 0..4 {
            rx.recv_timeout(Duration::from_secs(10)).expect("task ran");
        }
        assert_eq!(counter.load(Ordering::Relaxed), 4);
        assert_eq!(pool.lane_lens().len(), 2);
    }

    #[test]
    fn a_panicking_task_reaches_the_caller_and_spares_the_workers() {
        let pool = ExecPool::new(2);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_batch(8, |i| {
                if i == 3 {
                    panic!("task 3 exploded");
                }
                i
            })
        }));
        assert!(caught.is_err(), "the panic propagates to the caller");
        // The pool survives and keeps executing new batches.
        assert_eq!(pool.run_batch(4, |i| i), vec![0, 1, 2, 3]);
    }

    #[test]
    fn dropping_the_pool_drains_queued_tasks() {
        let pool = ExecPool::new(1);
        let counter = Arc::new(AtomicU64::new(0));
        for lane in 0..8 {
            let task_counter = Arc::clone(&counter);
            pool.spawn_on(lane, move |_| {
                task_counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        drop(pool);
        assert_eq!(counter.load(Ordering::Relaxed), 8, "drained before join");
    }
}
