//! Vertex core times (Definition 4) and the Vertex Core Time index (VCT).
//!
//! The *core time* `CT_ts(u)` of vertex `u` for a start time `ts` is the
//! earliest end time `te` such that `u` belongs to the temporal k-core of the
//! window `[ts, te]`.  The VCT index stores, for every vertex, the distinct
//! core times over all start times of the query range together with the
//! earliest start time at which each value holds (the paper's Table I).
//!
//! # Computation
//!
//! The historical-k-core work the paper builds on ([13]) computes core times
//! with an `O(|VCT|·deg_avg)` sweep over start times.  We reproduce the same
//! sweep structure through a *least-fixpoint* characterisation that is easy
//! to verify and has the same output-sensitive behaviour:
//!
//! For a fixed start time `ts`, let `t_uv(ts)` be the earliest timestamp
//! `>= ts` of an edge between `u` and a distinct neighbour `v` (within the
//! query range).  Then the core times are the *least* fixpoint of
//!
//! ```text
//! CT(u) = k-th smallest over distinct neighbours v of max(t_uv(ts), CT(v))
//! ```
//!
//! (values above the range end are `∞`).  Any fixpoint's "≤ te" level sets
//! are k-cores, and the true core times form a fixpoint, so the least
//! fixpoint is exactly `CT_ts` (see `CoreTimeSweep` docs for the argument).
//! The least fixpoint is computed by a monotone worklist iteration starting
//! from the lower bound `k-th smallest t_uv`.  When the start time advances
//! (`ts → ts+1`), only the endpoints of edges with timestamp `ts` can have
//! their `t_uv` change; their re-evaluation is propagated through the
//! worklist, and core times only ever increase.  Every increase corresponds
//! to one VCT entry and costs a constant number of `O(deg)` neighbourhood
//! scans, giving the paper's `O(|VCT|·deg_avg)`-style behaviour.

use std::collections::VecDeque;
use temporal_graph::{TemporalGraph, TimeWindow, Timestamp, VertexId, T_INFINITY};

#[derive(Debug, Clone)]
struct SweepGroup {
    neighbor: VertexId,
    occ_start: u32,
    occ_end: u32,
    /// Index of the first occurrence with timestamp >= the current start time
    /// (advanced lazily while re-evaluating the owning vertex).
    ptr: u32,
}

/// Incremental computation of vertex core times over increasing start times.
///
/// After construction the sweep holds the core times for `ts = range.start()`;
/// each call to [`CoreTimeSweep::advance`] moves to the next start time and
/// reports which vertices changed.  Both the [`VertexCoreTimeIndex`] and the
/// edge core window skyline (`crate::EdgeCoreSkyline`) are built by driving
/// this sweep.
pub struct CoreTimeSweep<'g> {
    graph: &'g TemporalGraph,
    k: usize,
    range: TimeWindow,
    current_ts: Timestamp,
    ct: Vec<Timestamp>,
    group_offsets: Vec<u32>,
    groups: Vec<SweepGroup>,
    occ: Vec<Timestamp>,
    queue: VecDeque<VertexId>,
    in_queue: Vec<bool>,
    changed: Vec<VertexId>,
    changed_mark: Vec<bool>,
    scratch: Vec<Timestamp>,
}

impl<'g> CoreTimeSweep<'g> {
    /// Builds the sweep and computes core times for the first start time
    /// (`range.start()`).
    ///
    /// # Range clamping contract
    ///
    /// The stored range (reported by [`CoreTimeSweep::range`]) is
    /// `range.end()` clamped to the graph's last timestamp: windows beyond
    /// `tmax` contain no additional edges, so results are unchanged and the
    /// start-time sweep does not iterate over empty timestamps.  A range
    /// **starting** past `tmax` degenerates to the single-start sweep
    /// `[start, start]` over an empty projection — every core time is
    /// [`T_INFINITY`] and [`CoreTimeSweep::advance`] immediately returns
    /// `None`.  This is the sweep-level counterpart of
    /// [`crate::EdgeCoreSkyline::build`]'s contract, which maps the same
    /// degenerate case to an empty skyline that reports the *requested*
    /// (unclamped) range back; the two layers agree that "past `tmax`"
    /// means "no cores", they only differ in which range they echo.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(graph: &'g TemporalGraph, k: usize, range: TimeWindow) -> Self {
        assert!(k >= 1, "temporal k-core queries require k >= 1");
        // Clamp the range end to the graph's last timestamp (and never below
        // the start, so a past-tmax range degenerates to [start, start]
        // instead of an invalid window) — see the contract above.
        let range = TimeWindow::new(
            range.start(),
            range.end().min(graph.tmax()).max(range.start()),
        );
        let n = graph.num_vertices();
        let mut group_offsets = vec![0u32; n + 1];
        let mut groups = Vec::new();
        let mut occ = Vec::new();
        for u in 0..n as VertexId {
            for g in graph.neighbors(u) {
                let occs = g.occurrences_in(range);
                if occs.is_empty() {
                    continue;
                }
                let occ_start = occ.len() as u32;
                occ.extend(occs.iter().map(|&(t, _)| t));
                groups.push(SweepGroup {
                    neighbor: g.neighbor,
                    occ_start,
                    occ_end: occ.len() as u32,
                    ptr: occ_start,
                });
            }
            group_offsets[u as usize + 1] = groups.len() as u32;
        }

        let mut sweep = Self {
            graph,
            k,
            range,
            current_ts: range.start(),
            ct: vec![T_INFINITY; n],
            group_offsets,
            groups,
            occ,
            queue: VecDeque::new(),
            in_queue: vec![false; n],
            changed: Vec::new(),
            changed_mark: vec![false; n],
            scratch: Vec::new(),
        };

        // Lower bound: k-th smallest earliest occurrence time per vertex.
        for u in 0..n as VertexId {
            let lo = sweep.group_offsets[u as usize] as usize;
            let hi = sweep.group_offsets[u as usize + 1] as usize;
            if hi - lo < sweep.k {
                continue;
            }
            sweep.scratch.clear();
            for gi in lo..hi {
                let g = &sweep.groups[gi];
                sweep.scratch.push(sweep.occ[g.occ_start as usize]);
            }
            let kth = {
                let idx = sweep.k - 1;
                *sweep.scratch.select_nth_unstable(idx).1
            };
            sweep.ct[u as usize] = if kth > range.end() { T_INFINITY } else { kth };
            if sweep.ct[u as usize] != T_INFINITY {
                sweep.in_queue[u as usize] = true;
                sweep.queue.push_back(u);
            }
        }
        sweep.run_worklist();

        // Report every vertex with a finite core time as "changed" so that
        // index builders can record the initial entries.
        sweep.changed.clear();
        for u in 0..n as VertexId {
            if sweep.ct[u as usize] != T_INFINITY {
                sweep.changed.push(u);
            }
        }
        sweep
    }

    /// The query parameter `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The query time range.
    #[inline]
    pub fn range(&self) -> TimeWindow {
        self.range
    }

    /// Start time the current core times refer to.
    #[inline]
    pub fn current_start_time(&self) -> Timestamp {
        self.current_ts
    }

    /// Core time of every vertex for the current start time
    /// ([`T_INFINITY`] if the vertex is in no temporal k-core).
    #[inline]
    pub fn core_times(&self) -> &[Timestamp] {
        &self.ct
    }

    /// Vertices whose core time changed in the most recent step: after
    /// construction, every vertex with a finite core time; after
    /// [`Self::advance`], the vertices whose value differs from the previous
    /// start time.
    #[inline]
    pub fn changed_vertices(&self) -> &[VertexId] {
        &self.changed
    }

    /// Advances to the next start time, returning it, or `None` when the end
    /// of the query range has been reached.
    // tkc-lint: hot
    pub fn advance(&mut self) -> Option<Timestamp> {
        if self.current_ts >= self.range.end() {
            return None;
        }
        let leaving = self.current_ts;
        self.current_ts += 1;
        for &u in &self.changed {
            self.changed_mark[u as usize] = false;
        }
        self.changed.clear();

        // Only the endpoints of edges leaving the window can be directly
        // affected; everything else changes only through propagation.
        for e in self.graph.edges_at(leaving) {
            for u in [e.u, e.v] {
                if self.ct[u as usize] != T_INFINITY && !self.in_queue[u as usize] {
                    self.in_queue[u as usize] = true;
                    self.queue.push_back(u);
                }
            }
        }
        self.run_worklist();
        Some(self.current_ts)
    }

    fn run_worklist(&mut self) {
        while let Some(u) = self.queue.pop_front() {
            self.in_queue[u as usize] = false;
            if self.ct[u as usize] == T_INFINITY {
                continue;
            }
            let new = self.reevaluate(u);
            debug_assert!(new >= self.ct[u as usize], "core times must not decrease");
            if new > self.ct[u as usize] {
                self.ct[u as usize] = new;
                if !self.changed_mark[u as usize] {
                    self.changed_mark[u as usize] = true;
                    self.changed.push(u);
                }
                let lo = self.group_offsets[u as usize] as usize;
                let hi = self.group_offsets[u as usize + 1] as usize;
                for gi in lo..hi {
                    let v = self.groups[gi].neighbor;
                    if self.ct[v as usize] != T_INFINITY && !self.in_queue[v as usize] {
                        self.in_queue[v as usize] = true;
                        self.queue.push_back(v);
                    }
                }
            }
        }
    }

    /// Applies the fixpoint operator at `u`: k-th smallest over available
    /// distinct neighbours `v` of `max(t_uv, CT(v))`.
    fn reevaluate(&mut self, u: VertexId) -> Timestamp {
        let lo = self.group_offsets[u as usize] as usize;
        let hi = self.group_offsets[u as usize + 1] as usize;
        self.scratch.clear();
        for gi in lo..hi {
            let g = &mut self.groups[gi];
            let mut ptr = g.ptr as usize;
            while ptr < g.occ_end as usize && self.occ[ptr] < self.current_ts {
                ptr += 1;
            }
            g.ptr = ptr as u32;
            if ptr >= g.occ_end as usize {
                continue;
            }
            let t_uv = self.occ[ptr];
            let ct_v = self.ct[g.neighbor as usize];
            self.scratch.push(t_uv.max(ct_v));
        }
        if self.scratch.len() < self.k {
            return T_INFINITY;
        }
        let idx = self.k - 1;
        let kth = *self.scratch.select_nth_unstable(idx).1;
        if kth > self.range.end() {
            T_INFINITY
        } else {
            kth
        }
    }
}

/// The Vertex Core Time index: for every vertex, the list of
/// `(start time, core time)` pairs at which the core time changes
/// (the paper's Table I; `∞` entries are represented by [`T_INFINITY`]).
#[derive(Debug, Clone)]
pub struct VertexCoreTimeIndex {
    k: usize,
    range: TimeWindow,
    entries: Vec<Vec<(Timestamp, Timestamp)>>,
}

impl VertexCoreTimeIndex {
    /// Builds the index for the given `k` and query range.
    pub fn build(graph: &TemporalGraph, k: usize, range: TimeWindow) -> Self {
        let mut sweep = CoreTimeSweep::new(graph, k, range);
        let mut entries = vec![Vec::new(); graph.num_vertices()];
        loop {
            let ts = sweep.current_start_time();
            for &u in sweep.changed_vertices() {
                entries[u as usize].push((ts, sweep.core_times()[u as usize]));
            }
            if sweep.advance().is_none() {
                break;
            }
        }
        Self { k, range, entries }
    }

    /// The query parameter `k` the index was built for.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The query range the index was built for.
    #[inline]
    pub fn range(&self) -> TimeWindow {
        self.range
    }

    /// The `(start time, core time)` entries of vertex `u` (possibly empty).
    #[inline]
    pub fn entries(&self, u: VertexId) -> &[(Timestamp, Timestamp)] {
        &self.entries[u as usize]
    }

    /// Core time of vertex `u` for start time `ts`, or [`T_INFINITY`] if `u`
    /// is in no temporal k-core of a window starting at `ts`.
    pub fn core_time(&self, u: VertexId, ts: Timestamp) -> Timestamp {
        if ts < self.range.start() || ts > self.range.end() {
            return T_INFINITY;
        }
        let entries = &self.entries[u as usize];
        let idx = entries.partition_point(|&(start, _)| start <= ts);
        if idx == 0 {
            T_INFINITY
        } else {
            entries[idx - 1].1
        }
    }

    /// Total number of index entries — the paper's `|VCT|`.
    pub fn size(&self) -> usize {
        self.entries.iter().map(|e| e.len()).sum()
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.size() * std::mem::size_of::<(Timestamp, Timestamp)>()
            + self.entries.len() * std::mem::size_of::<Vec<(Timestamp, Timestamp)>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::core_edges_of_window;
    use temporal_graph::TemporalGraphBuilder;

    /// Brute-force core time for cross-checking: the earliest `te` such that
    /// `u` has an incident edge in the k-core of `[ts, te]`.
    fn naive_core_time(
        graph: &TemporalGraph,
        k: usize,
        range: TimeWindow,
        u: VertexId,
        ts: Timestamp,
    ) -> Timestamp {
        for te in ts..=range.end() {
            let edges = core_edges_of_window(graph, k, TimeWindow::new(ts, te));
            let in_core = edges.iter().any(|&e| {
                let edge = graph.edge(e);
                edge.u == u || edge.v == u
            });
            if in_core {
                return te;
            }
        }
        T_INFINITY
    }

    fn small_graph() -> TemporalGraph {
        TemporalGraphBuilder::new()
            .with_edges([
                (0u64, 1u64, 1i64),
                (1, 2, 2),
                (0, 2, 3),
                (2, 3, 4),
                (3, 4, 5),
                (2, 4, 6),
                (0, 1, 6),
                (1, 2, 7),
                (0, 2, 7),
            ])
            .build()
            .unwrap()
    }

    #[test]
    fn matches_naive_core_times_everywhere() {
        let g = small_graph();
        let range = g.span();
        for k in 1..=3 {
            let vct = VertexCoreTimeIndex::build(&g, k, range);
            for u in 0..g.num_vertices() as VertexId {
                for ts in range.start()..=range.end() {
                    assert_eq!(
                        vct.core_time(u, ts),
                        naive_core_time(&g, k, range, u, ts),
                        "k={k} u={u} ts={ts}"
                    );
                }
            }
        }
    }

    #[test]
    fn sub_range_queries_are_respected() {
        let g = small_graph();
        let range = TimeWindow::new(2, 6);
        let vct = VertexCoreTimeIndex::build(&g, 2, range);
        for u in 0..g.num_vertices() as VertexId {
            for ts in 2..=6 {
                assert_eq!(vct.core_time(u, ts), naive_core_time(&g, 2, range, u, ts));
            }
            // Outside the query range the index answers "infinity".
            assert_eq!(vct.core_time(u, 1), T_INFINITY);
            assert_eq!(vct.core_time(u, 7), T_INFINITY);
        }
    }

    #[test]
    fn entries_are_strictly_increasing() {
        let g = small_graph();
        let vct = VertexCoreTimeIndex::build(&g, 2, g.span());
        assert!(vct.size() > 0);
        for u in 0..g.num_vertices() as VertexId {
            let entries = vct.entries(u);
            for pair in entries.windows(2) {
                assert!(pair[0].0 < pair[1].0, "start times strictly increase");
                assert!(pair[0].1 < pair[1].1, "core times strictly increase");
            }
        }
    }

    #[test]
    fn isolated_and_low_degree_vertices_have_no_entries() {
        let g = TemporalGraphBuilder::new()
            .with_edges([(0u64, 1u64, 1i64), (1, 2, 2), (0, 2, 3), (3, 4, 2)])
            .build()
            .unwrap();
        let vct = VertexCoreTimeIndex::build(&g, 2, g.span());
        // Vertices 3 and 4 have a single neighbour, so they are never in a 2-core.
        let v3 = g.labels().iter().position(|&l| l == 3).unwrap() as VertexId;
        let v4 = g.labels().iter().position(|&l| l == 4).unwrap() as VertexId;
        assert!(vct.entries(v3).is_empty());
        assert!(vct.entries(v4).is_empty());
        assert_eq!(vct.core_time(v3, 1), T_INFINITY);
    }

    #[test]
    fn sweep_reports_changes() {
        let g = small_graph();
        let mut sweep = CoreTimeSweep::new(&g, 2, g.span());
        assert_eq!(sweep.current_start_time(), 1);
        assert!(!sweep.changed_vertices().is_empty());
        let mut steps = 0;
        while sweep.advance().is_some() {
            steps += 1;
            // changed vertices always carry a value different from infinity
            // only when they remain in some core; either way the list is
            // consistent with the ct array.
            for &u in sweep.changed_vertices() {
                let _ = sweep.core_times()[u as usize];
            }
        }
        assert_eq!(steps, g.tmax() - 1);
        assert_eq!(sweep.current_start_time(), g.tmax());
    }

    #[test]
    fn a_range_starting_past_tmax_degenerates_to_an_empty_sweep() {
        // Regression test for the clamping contract: `CoreTimeSweep::new`
        // clamps a past-tmax range to the degenerate `[start, start]` and
        // must report "no cores" (all core times infinite, no start times to
        // advance to) — the sweep-level mirror of
        // `EdgeCoreSkyline::build`'s documented empty skyline.
        let g = small_graph(); // tmax = 7
        let past = TimeWindow::new(g.tmax() + 1, g.tmax() + 9);
        let mut sweep = CoreTimeSweep::new(&g, 2, past);
        assert_eq!(
            sweep.range(),
            TimeWindow::new(g.tmax() + 1, g.tmax() + 1),
            "the clamped degenerate range is reported"
        );
        assert_eq!(sweep.current_start_time(), g.tmax() + 1);
        assert!(sweep.changed_vertices().is_empty());
        assert!(sweep.core_times().iter().all(|&ct| ct == T_INFINITY));
        assert_eq!(sweep.advance(), None, "nothing to sweep past tmax");
        // The index built through the same sweep is empty too.
        let vct = VertexCoreTimeIndex::build(&g, 2, past);
        assert_eq!(vct.size(), 0);
        // And the skyline layer maps the same case to an empty skyline that
        // echoes the *requested* range (see EdgeCoreSkyline::build).
        let ecs = crate::EdgeCoreSkyline::build(&g, 2, past);
        assert_eq!(ecs.total_windows(), 0);
        assert_eq!(ecs.range(), past);
    }

    #[test]
    #[should_panic]
    fn k_zero_is_rejected() {
        let g = small_graph();
        let _ = CoreTimeSweep::new(&g, 0, g.span());
    }
}
