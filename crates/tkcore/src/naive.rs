//! Brute-force reference implementation.
//!
//! Enumerates temporal k-cores by independently peeling the projected graph
//! of *every* sub-window of the query range and de-duplicating by edge set.
//! Runtime is `O(tmax² · m)`, so this is only suitable for small inputs; it
//! serves as the ground truth for the unit, integration and property tests.

use crate::result::TemporalKCore;
use crate::sink::ResultSink;
use std::collections::{HashMap, HashSet, VecDeque};
use temporal_graph::{EdgeId, TemporalGraph, TimeWindow, VertexId};

/// Computes the temporal k-core of a single window: the temporal edges of the
/// projected graph `G[window]` whose endpoints survive peeling to the k-core
/// (degree counts *distinct* neighbours).  Returns the edge ids sorted.
pub fn core_edges_of_window(graph: &TemporalGraph, k: usize, window: TimeWindow) -> Vec<EdgeId> {
    let edge_range = graph.edge_ids_in(window);
    if edge_range.is_empty() {
        return Vec::new();
    }
    // Distinct-neighbour adjacency of the projected graph.
    let mut neighbors: HashMap<VertexId, HashSet<VertexId>> = HashMap::new();
    for id in edge_range.clone() {
        let e = graph.edge(id);
        neighbors.entry(e.u).or_default().insert(e.v);
        neighbors.entry(e.v).or_default().insert(e.u);
    }
    // Peel vertices with fewer than k distinct neighbours.
    let mut removed: HashSet<VertexId> = HashSet::new();
    let mut queue: VecDeque<VertexId> = neighbors
        .iter()
        .filter(|(_, ns)| ns.len() < k)
        .map(|(&v, _)| v)
        .collect();
    while let Some(u) = queue.pop_front() {
        if !removed.insert(u) {
            continue;
        }
        let Some(ns) = neighbors.remove(&u) else {
            continue;
        };
        for v in ns {
            if let Some(vns) = neighbors.get_mut(&v) {
                vns.remove(&u);
                if vns.len() < k {
                    queue.push_back(v);
                }
            }
        }
    }
    // Surviving vertices induce the temporal k-core's edge set.
    edge_range
        .filter(|&id| {
            let e = graph.edge(id);
            neighbors.contains_key(&e.u) && neighbors.contains_key(&e.v)
        })
        .collect()
}

/// Is the given temporal edge contained in the k-core of `window`?
pub fn edge_in_core_of_window(
    graph: &TemporalGraph,
    k: usize,
    window: TimeWindow,
    edge: EdgeId,
) -> bool {
    let e = graph.edge(edge);
    if !window.contains(e.t) {
        return false;
    }
    core_edges_of_window(graph, k, window)
        .binary_search(&edge)
        .is_ok()
}

/// Enumerates all distinct temporal k-cores of every sub-window of `range`,
/// streaming them into `sink`.  Cores are emitted with their tightest time
/// interval, in ascending `(start, end)` TTI order.
pub fn enumerate_naive(
    graph: &TemporalGraph,
    k: usize,
    range: TimeWindow,
    sink: &mut dyn ResultSink,
) {
    let mut seen: HashSet<Vec<EdgeId>> = HashSet::new();
    let mut results: Vec<TemporalKCore> = Vec::new();
    for window in range.sub_windows() {
        let edges = core_edges_of_window(graph, k, window);
        if edges.is_empty() {
            continue;
        }
        if seen.contains(&edges) {
            continue;
        }
        // tkc-lint: allow(no-panic-api) — candidate cores are non-empty by construction of the enumeration
        let min_t = edges.iter().map(|&e| graph.edge(e).t).min().unwrap();
        // tkc-lint: allow(no-panic-api) — candidate cores are non-empty by construction of the enumeration
        let max_t = edges.iter().map(|&e| graph.edge(e).t).max().unwrap();
        seen.insert(edges.clone());
        results.push(TemporalKCore::new(TimeWindow::new(min_t, max_t), edges));
    }
    results.sort_by(|a, b| a.tti.cmp(&b.tti).then_with(|| a.edges.cmp(&b.edges)));
    for core in results {
        sink.emit(core.tti, &core.edges);
    }
}

/// Convenience wrapper returning the naive results as a vector.
pub fn naive_results(graph: &TemporalGraph, k: usize, range: TimeWindow) -> Vec<TemporalKCore> {
    let mut sink = crate::sink::CollectingSink::default();
    enumerate_naive(graph, k, range, &mut sink);
    sink.into_sorted()
}

#[cfg(test)]
mod tests {
    use super::*;
    use temporal_graph::TemporalGraphBuilder;

    /// Two triangles in disjoint time windows plus a noise edge.
    fn two_burst_graph() -> TemporalGraph {
        TemporalGraphBuilder::new()
            .with_edges([
                (0u64, 1u64, 1i64),
                (1, 2, 2),
                (0, 2, 2),
                (3, 4, 5),
                (4, 5, 6),
                (3, 5, 6),
                (0, 5, 4),
            ])
            .build()
            .unwrap()
    }

    #[test]
    fn core_of_window_peels_correctly() {
        let g = two_burst_graph();
        // Window [1,2] contains the first triangle only.
        let core = core_edges_of_window(&g, 2, TimeWindow::new(1, 2));
        assert_eq!(core.len(), 3);
        // Window [3,4] has no 2-core.
        assert!(core_edges_of_window(&g, 2, TimeWindow::new(3, 4)).is_empty());
        // Whole range: both triangles plus the bridge edge survive (every
        // vertex keeps two distinct neighbours once all edges are present).
        let core = core_edges_of_window(&g, 2, TimeWindow::new(1, 6));
        assert_eq!(core.len(), 7);
        // k = 1 keeps every edge.
        assert_eq!(core_edges_of_window(&g, 1, TimeWindow::new(1, 6)).len(), 7);
        // k = 3 removes everything.
        assert!(core_edges_of_window(&g, 3, TimeWindow::new(1, 6)).is_empty());
    }

    #[test]
    fn edge_membership_helper() {
        let g = two_burst_graph();
        assert!(edge_in_core_of_window(&g, 2, TimeWindow::new(1, 2), 0));
        assert!(!edge_in_core_of_window(&g, 2, TimeWindow::new(2, 6), 0)); // t=1 outside window
                                                                           // Bridge edge (0,5,4) has id 3; in [3,5] nothing survives peeling,
                                                                           // in the full range everything does.
        assert!(!edge_in_core_of_window(&g, 2, TimeWindow::new(3, 5), 3));
        assert!(edge_in_core_of_window(&g, 2, TimeWindow::new(1, 6), 3));
    }

    #[test]
    fn naive_enumeration_finds_both_bursts() {
        let g = two_burst_graph();
        let results = naive_results(&g, 2, TimeWindow::new(1, 6));
        // Three distinct cores: triangle A, triangle B, and the whole graph
        // (which appears for windows covering both bursts and the bridge).
        assert_eq!(results.len(), 3);
        assert!(results.iter().all(|c| c.is_valid_k_core(&g, 2)));
        assert!(results.iter().all(|c| c.tti_is_tight(&g)));
        let sizes: Vec<usize> = results.iter().map(|c| c.num_edges()).collect();
        assert!(sizes.contains(&3));
        assert!(sizes.contains(&7));
    }

    #[test]
    fn naive_respects_query_range() {
        // Raw timestamps {1,2,4,5,6} are compressed to 1..=5 by the builder.
        let g = two_burst_graph();
        assert_eq!(g.tmax(), 5);
        // Restricting the range to the first burst yields a single core.
        let results = naive_results(&g, 2, TimeWindow::new(1, 3));
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].tti, TimeWindow::new(1, 2));
        // A range covering only the bridge edge and one edge of the second
        // burst has no 2-core.
        assert!(naive_results(&g, 2, TimeWindow::new(3, 4)).is_empty());
    }

    #[test]
    fn results_are_deduplicated() {
        let g = two_burst_graph();
        let results = naive_results(&g, 2, TimeWindow::new(1, 6));
        let mut edge_sets: Vec<Vec<EdgeId>> = results.iter().map(|c| c.edges.clone()).collect();
        edge_sets.sort();
        edge_sets.dedup();
        assert_eq!(edge_sets.len(), results.len());
    }
}
