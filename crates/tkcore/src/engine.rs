//! Cached batch-query engine with sub-range index reuse.
//!
//! The paper's framework splits a time-range temporal k-core query into a
//! CoreTime precomputation (the [`EdgeCoreSkyline`], Definitions 4–5) and a
//! result-size-bounded enumeration.  The skyline has a property that the
//! one-shot [`TimeRangeKCoreQuery`] API cannot exploit: an index built for a
//! range `R` answers *every* query over a sub-range `r ⊆ R`.  The
//! [`QueryEngine`] turns that into a serving architecture:
//!
//! * it owns the [`TemporalGraph`] and keeps an **LRU cache of span-wide
//!   skylines keyed by `k`**, bounded by a configurable memory budget
//!   (measured with [`EdgeCoreSkyline::memory_bytes`]);
//! * a query for `(k, r)` takes the cached skyline for `k` (building the
//!   `graph.span()`-wide index once on a cold miss) and **restricts** it to
//!   `r` with [`EdgeCoreSkyline::restrict`] — a per-edge slice of the
//!   already-computed minimal core windows — instead of re-running the
//!   CoreTime sweep;
//! * [`QueryEngine::run_batch`] fans a slice of queries across OS threads
//!   with per-query sinks and aggregated [`BatchStats`].
//!
//! # Why restriction is exact
//!
//! Whether a window `w` is a *minimal core window* of an edge is a property
//! of the graph alone: `e` is in the temporal k-core of `w` but of neither
//! window obtained by shrinking `w` on one side (Definition 5).  Building
//! the skyline for a range `R` merely restricts attention to the minimal
//! windows contained in `R`; containment in a sub-range `r ⊆ R` is a further
//! filter.  Hence
//!
//! ```text
//! skyline_r(e) = { w ∈ skyline_R(e) : w ⊆ r }        for every r ⊆ R,
//! ```
//!
//! and since both endpoints strictly increase along an edge's skyline
//! (Lemma 2), the windows contained in `r` form a *contiguous* subsequence
//! found by two binary searches.  Restriction therefore costs
//! `O(|E_r| + |ECS_r|)` with no worklist iteration, and by Lemma 3 the
//! restricted skyline drives the enumerators to exactly the same results as
//! an index freshly built for `r` (asserted exhaustively by the
//! `engine_restriction_matches_fresh_build` property test).
//!
//! # Cache policy
//!
//! One entry per `k`, always span-wide, evicted least-recently-used when the
//! summed [`EdgeCoreSkyline::memory_bytes`] exceeds the budget.  The entry
//! being inserted is never evicted, so a single index larger than the whole
//! budget still serves its own query (the cache simply holds that one
//! index).  Lookups and insertions take a [`Mutex`]; index *construction*
//! happens outside the lock, so concurrent batch workers can build indexes
//! for different `k` values in parallel.  Two threads racing on the same
//! cold `k` may both build it; the loser's copy is dropped and the winner's
//! is shared — wasted work bounded by one build, never wrong results.
//!
//! Parallelism note: batching fans across the engine's persistent
//! [`ExecPool`] — workers claim query indexes from a
//! shared counter and the calling thread participates, so nested batches
//! (a service request fanning a sweep on the same pool) never deadlock.
//! The pool is created lazily on the first multi-threaded batch, or
//! injected by [`crate::CoreService`] so the serving layer and the engine
//! share one set of threads.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::ecs::{EdgeCoreSkyline, SkylineScratch};
use crate::error::TkError;
use crate::exec::{run_batch_inner, ExecPool};
use crate::ingest::SealPolicy;
use crate::query::{Algorithm, QueryStats, TimeRangeKCoreQuery};
use crate::request::QueryRequest;
use crate::sink::{CountingSink, ResultSink};
use crate::sync;
use temporal_graph::TemporalGraph;

/// Tuning knobs of a [`QueryEngine`].
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Maximum summed [`EdgeCoreSkyline::memory_bytes`] of cached indexes
    /// before least-recently-used entries are evicted.  The entry being
    /// inserted is exempt, so one oversized index never thrashes.
    pub memory_budget_bytes: usize,
    /// Worker threads for [`QueryEngine::run_batch`]; `0` means one per
    /// available CPU.  The threads live in a persistent [`ExecPool`]
    /// created on the first multi-threaded batch (the calling thread
    /// counts as one of them).  When the engine shares an externally
    /// provided pool instead ([`QueryEngine::with_pool`], or any engine
    /// created by `CoreService::start*`/`over*`), that pool's size governs
    /// and this field is ignored.
    pub num_threads: usize,
    /// Maximum number of cached boundary-stitch entries kept by a
    /// [`crate::ShardedEngine`] (one entry per `(shard range, k)` holding
    /// the cut-crossing minimal core windows; see [`crate::shard`]).  `0`
    /// disables the stitch cache, restoring the transient merged-skyline
    /// pass that rebuilds per boundary-spanning query — the better choice
    /// when spanning windows are one-off, since a stitch entry's first
    /// build sweeps its shard range's whole merged window, not just the
    /// triggering query's window.  Ignored by the unsharded
    /// [`QueryEngine`].
    pub boundary_cache_entries: usize,
    /// When a [`crate::ShardedEngine`]'s live tail shard is rolled into a
    /// closed shard during ingest (see [`crate::ShardedEngine::absorb`]).
    /// Ignored by the unsharded [`QueryEngine`].
    pub seal_policy: SealPolicy,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            memory_budget_bytes: 256 * 1024 * 1024,
            num_threads: 0,
            boundary_cache_entries: 32,
            seal_policy: SealPolicy::Manual,
        }
    }
}

/// Cache effectiveness counters, readable via [`QueryEngine::cache_stats`]
/// (and [`crate::ShardedEngine::cache_stats`], which additionally populates
/// the per-shard dimension).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from an already-resident skyline.
    pub hits: u64,
    /// Queries that had to build a skyline first.
    pub misses: u64,
    /// Skylines evicted to respect the memory budget.
    pub evictions: u64,
    /// Summed memory estimate of the currently resident skylines.
    pub resident_bytes: usize,
    /// Number of currently resident skylines.
    pub resident_indexes: usize,
    /// Per-shard counters, one entry per time-interval shard.  Empty for the
    /// span-wide (unsharded) [`QueryEngine`]; a [`crate::ShardedEngine`]
    /// always reports one entry per shard of its plan, in timeline order.
    pub per_shard: Vec<ShardCacheStats>,
    /// Counters of the boundary-stitch index cache (always zero for the
    /// unsharded [`QueryEngine`]; see [`crate::shard`]).
    pub boundary: BoundaryCacheStats,
    /// Tail-shard `(shard, k)` skylines dropped by ingest
    /// ([`crate::ShardedEngine::absorb`]): closed-shard skylines are never
    /// invalidated, so this counts exactly the rebuilds ingest can cause.
    /// Always zero for the unsharded [`QueryEngine`].
    pub tail_invalidations: u64,
    /// Boundary-stitch entries whose shard range touches the live tail
    /// dropped by ingest.  Always zero for the unsharded [`QueryEngine`].
    pub boundary_invalidations: u64,
    /// Times the live tail shard was rolled into a closed shard (see
    /// [`SealPolicy`] and [`crate::ShardedEngine::seal_tail`]).
    pub seals: u64,
    /// Warm-path timing, with wall-clock and summed per-entry build times
    /// reported separately: warms fan missing builds across the pool, so
    /// the summed build time can exceed wall time by the parallelism
    /// factor — summing alone would make a parallel warm look slower than
    /// it is.
    pub warm: WarmStats,
}

/// Timing counters of the cache-warming paths ([`QueryEngine::warm`],
/// [`QueryEngine::warm_many`], [`crate::ShardedEngine::warm`]), reported in
/// [`CacheStats::warm`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WarmStats {
    /// Warm calls observed (one per `warm`/`warm_many` call).
    pub warms: u64,
    /// Skylines actually built by warm calls; already-resident entries
    /// don't count.
    pub entries_built: u64,
    /// Summed per-entry build time across workers.  Exceeds
    /// [`WarmStats::wall_time`] when a warm overlaps builds on the pool —
    /// compare the two to read off the effective build parallelism.
    pub build_time: Duration,
    /// Wall-clock time spent inside warm calls.
    pub wall_time: Duration,
}

/// Counters of the boundary-stitch index cache of a
/// [`crate::ShardedEngine`]: one LRU-cached entry per `(shard range, k)`
/// holding the cut-crossing minimal core windows of that range's merged
/// window, built on the first boundary-spanning query and reused until
/// evicted (see [`EngineConfig::boundary_cache_entries`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BoundaryCacheStats {
    /// Stitch entries built (one merged-window sweep each).
    pub builds: u64,
    /// Boundary-spanning queries answered from a cached stitch entry.
    pub hits: u64,
    /// Stitch entries evicted to respect the entry budget.
    pub evictions: u64,
    /// Summed memory estimate of the resident stitch entries.
    pub resident_bytes: usize,
    /// Number of resident stitch entries.
    pub resident_entries: usize,
}

/// Cache counters of one time-interval shard (see [`CacheStats::per_shard`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardCacheStats {
    /// Index of the shard in the engine's plan (timeline order).
    pub shard: usize,
    /// Skylines built for this shard (cold misses), over all `k`.
    pub builds: u64,
    /// Queries answered from an already-resident skyline of this shard.
    pub hits: u64,
    /// Summed memory estimate of this shard's resident skylines.
    pub resident_bytes: usize,
    /// Number of this shard's resident skylines (distinct `k` values).
    pub resident_indexes: usize,
}

struct CacheEntry {
    skyline: Arc<EdgeCoreSkyline>,
    last_used: u64,
}

struct SkylineCache {
    entries: HashMap<usize, CacheEntry>,
    clock: u64,
    resident_bytes: usize,
    budget: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    warm: WarmStats,
}

impl SkylineCache {
    fn new(budget: usize) -> Self {
        Self {
            entries: HashMap::new(),
            clock: 0,
            resident_bytes: 0,
            budget,
            hits: 0,
            misses: 0,
            evictions: 0,
            warm: WarmStats::default(),
        }
    }

    fn get(&mut self, k: usize) -> Option<Arc<EdgeCoreSkyline>> {
        self.clock += 1;
        let clock = self.clock;
        match self.entries.get_mut(&k) {
            Some(entry) => {
                entry.last_used = clock;
                self.hits += 1;
                Some(Arc::clone(&entry.skyline))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a freshly built skyline unless another thread won the race,
    /// then evicts LRU entries (never `k` itself) down to the budget.
    /// Returns the cached skyline to use.
    fn adopt(&mut self, k: usize, built: Arc<EdgeCoreSkyline>) -> Arc<EdgeCoreSkyline> {
        self.clock += 1;
        let clock = self.clock;
        let skyline = match self.entries.get_mut(&k) {
            Some(existing) => {
                existing.last_used = clock;
                Arc::clone(&existing.skyline)
            }
            None => {
                self.resident_bytes += built.memory_bytes();
                self.entries.insert(
                    k,
                    CacheEntry {
                        skyline: Arc::clone(&built),
                        last_used: clock,
                    },
                );
                built
            }
        };
        while self.resident_bytes > self.budget && self.entries.len() > 1 {
            let Some((&victim, _)) = self
                .entries
                .iter()
                .filter(|(&key, _)| key != k)
                .min_by_key(|(_, e)| e.last_used)
            else {
                break;
            };
            // tkc-lint: allow(no-panic-api) — the victim key was just yielded by iterating `entries`
            let removed = self.entries.remove(&victim).expect("victim present");
            self.resident_bytes -= removed.skyline.memory_bytes();
            self.evictions += 1;
        }
        skyline
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            resident_bytes: self.resident_bytes,
            resident_indexes: self.entries.len(),
            per_shard: Vec::new(),
            boundary: BoundaryCacheStats::default(),
            tail_invalidations: 0,
            boundary_invalidations: 0,
            seals: 0,
            warm: self.warm,
        }
    }
}

/// Aggregated outcome of one [`QueryEngine::run_batch`] call.  The cache
/// counters inside carry the per-shard dimension when the batch ran on a
/// [`crate::ShardedEngine`].
#[derive(Debug, Clone)]
pub struct BatchStats {
    /// Number of queries executed.
    pub num_queries: usize,
    /// Sum of distinct temporal k-cores over all queries.
    pub total_cores: u64,
    /// Sum of result edges (`|R|`) over all queries.
    pub total_result_edges: u64,
    /// Summed per-query precomputation time (cache lookup + any cold build
    /// + restriction).  Summed across workers, so it can exceed wall time.
    pub precompute_time: Duration,
    /// Summed per-query enumeration time.
    pub enumerate_time: Duration,
    /// Wall-clock time of the whole batch.
    pub wall_time: Duration,
    /// Worker threads used.
    pub threads: usize,
    /// Cache counters at the end of the batch (cumulative for the engine).
    pub cache: CacheStats,
}

/// A query-serving engine owning a temporal graph and a skyline cache.
///
/// See the [module documentation](self) for the cache policy and the
/// restriction correctness argument.
///
/// # Example
///
/// ```
/// use tkcore::{QueryEngine, TimeRangeKCoreQuery, paper_example};
/// use temporal_graph::TimeWindow;
///
/// let engine = QueryEngine::new(paper_example::graph());
/// let queries = [
///     TimeRangeKCoreQuery::new(2, TimeWindow::new(1, 4)).unwrap(),
///     TimeRangeKCoreQuery::new(2, TimeWindow::new(2, 7)).unwrap(),
/// ];
/// let (results, stats) = engine.run_batch(&queries).unwrap();
/// assert_eq!(results[0].0.num_cores, 2); // Figure 2 of the paper
/// assert_eq!(stats.num_queries, 2);
/// // Both queries share one span-wide skyline for k = 2.
/// assert_eq!(engine.cache_stats().misses, 1);
/// ```
pub struct QueryEngine {
    inner: Arc<EngineInner>,
}

/// The shared core of a [`QueryEngine`]: everything a batch task needs,
/// behind one `Arc` so tasks handed to the persistent pool are `'static`.
struct EngineInner {
    graph: Arc<TemporalGraph>,
    config: EngineConfig,
    cache: Mutex<SkylineCache>,
    pool: OnceLock<Arc<ExecPool>>,
    /// Pooled restriction buffers: taken whole per query, handed back via
    /// `absorb`; never held across another lock.
    scratch: Mutex<SkylineScratch>,
}

impl QueryEngine {
    /// Creates an engine with the default configuration.
    pub fn new(graph: TemporalGraph) -> Self {
        Self::with_config(graph, EngineConfig::default())
    }

    /// Creates an engine with an explicit configuration.
    pub fn with_config(graph: TemporalGraph, config: EngineConfig) -> Self {
        let cache = Mutex::new(SkylineCache::new(config.memory_budget_bytes));
        Self {
            inner: Arc::new(EngineInner {
                graph: Arc::new(graph),
                config,
                cache,
                pool: OnceLock::new(),
                scratch: Mutex::new(SkylineScratch::default()),
            }),
        }
    }

    /// Creates an engine whose batches execute on an existing persistent
    /// `pool` (typically shared with the [`crate::CoreService`] that owns
    /// the engine) instead of a lazily created private one.
    pub fn with_pool(graph: TemporalGraph, config: EngineConfig, pool: Arc<ExecPool>) -> Self {
        let engine = Self::with_config(graph, config);
        engine
            .inner
            .pool
            .set(pool)
            .ok()
            // tkc-lint: allow(no-panic-api) — the OnceLock is set exactly once, on a freshly constructed engine
            .expect("fresh engine has no pool yet");
        engine
    }

    /// Adopts `pool` for this engine's batches if it has not already
    /// created or been given one; returns whether the pool was installed.
    /// Lets [`crate::CoreService::over`] share its worker pool with a
    /// caller-constructed engine instead of the engine lazily spawning a
    /// second private pool.
    pub fn adopt_pool(&self, pool: Arc<ExecPool>) -> bool {
        self.inner.pool.set(pool).is_ok()
    }

    /// The graph this engine serves queries against.
    pub fn graph(&self) -> &TemporalGraph {
        &self.inner.graph
    }

    /// The graph behind a cheap shared handle (used by the serving layer,
    /// whose sharded sibling can only hand out owned snapshots).
    pub(crate) fn graph_arc(&self) -> Arc<TemporalGraph> {
        Arc::clone(&self.inner.graph)
    }

    /// Current cache counters (cumulative since construction).
    pub fn cache_stats(&self) -> CacheStats {
        sync::lock(&self.inner.cache).stats()
    }

    /// Drops every cached skyline, keeping the counters.
    pub fn clear_cache(&self) {
        let mut cache = sync::lock(&self.inner.cache);
        cache.entries.clear();
        cache.resident_bytes = 0;
    }

    /// Warms the cache for `k` without running a query; returns whether the
    /// skyline was already resident.
    pub fn warm(&self, k: usize) -> bool {
        self.warm_many(std::slice::from_ref(&k))
    }

    /// Warms the cache for every `k` in `ks` without running queries,
    /// fanning the missing span-wide builds across the engine's
    /// [`ExecPool`] — the same parallelism batches get, applied to index
    /// construction; returns whether all of them were already resident.
    ///
    /// Cache accounting matches `ks.len()` serial [`QueryEngine::warm`]
    /// calls (one hit or miss per `k`; racing builders keep the documented
    /// single-flight semantics, the loser's copy dropped), and the warm's
    /// wall-clock vs summed per-entry build times land in
    /// [`CacheStats::warm`].
    pub fn warm_many(&self, ks: &[usize]) -> bool {
        let t0 = Instant::now();
        let mut missing: Vec<usize> = Vec::new();
        {
            let mut cache = sync::lock(&self.inner.cache);
            for &k in ks {
                if cache.get(k).is_none() {
                    missing.push(k);
                }
            }
        }
        let all_resident = missing.is_empty();
        if !all_resident {
            let (_, pool) = batch_executor(
                &self.inner.pool,
                self.inner.config.num_threads,
                missing.len(),
            );
            let graph = Arc::clone(&self.inner.graph);
            let task_ks: Arc<[usize]> = missing.as_slice().into();
            let built = run_batch_inner(pool.as_deref(), missing.len(), move |i| {
                let t = Instant::now();
                let skyline = Arc::new(EdgeCoreSkyline::build(&graph, task_ks[i], graph.span()));
                (skyline, t.elapsed())
            });
            let mut cache = sync::lock(&self.inner.cache);
            for (&k, (skyline, took)) in missing.iter().zip(built) {
                cache.warm.entries_built += 1;
                cache.warm.build_time += took;
                let _ = cache.adopt(k, skyline);
            }
        }
        let mut cache = sync::lock(&self.inner.cache);
        cache.warm.warms += 1;
        cache.warm.wall_time += t0.elapsed();
        all_resident
    }

    /// Runs one query with the paper's final algorithm, streaming results
    /// into `sink`.
    ///
    /// # Errors
    /// See [`QueryEngine::run_with`].
    pub fn run(
        &self,
        query: &TimeRangeKCoreQuery,
        sink: &mut dyn ResultSink,
    ) -> Result<QueryStats, TkError> {
        self.run_with(query, Algorithm::Enum, sink)
    }

    /// Runs one query with the chosen algorithm.
    ///
    /// `Enum` and `EnumBase` answer from the cached skyline restricted to
    /// the query range; `Otcd` and `Naive` have no reusable index and run
    /// exactly as [`TimeRangeKCoreQuery::run_with`] does (they participate
    /// in batches for comparison runs, not for speed).
    ///
    /// The query is routed through [`QueryRequest::validate`] first, so a
    /// range starting past the graph's last timestamp is refused with
    /// [`TkError::WindowPastTmax`] instead of silently producing an empty
    /// stats row; a range merely overhanging the end is clamped.
    ///
    /// # Errors
    /// The validation errors of [`QueryRequest::validate`].
    pub fn run_with(
        &self,
        query: &TimeRangeKCoreQuery,
        algorithm: Algorithm,
        sink: &mut dyn ResultSink,
    ) -> Result<QueryStats, TkError> {
        let range = query.range();
        let validated = QueryRequest::single(query.k(), range.start(), range.end())
            .validate(&self.inner.graph)?;
        Ok(self
            .inner
            .run_validated(query.k(), validated.window(), algorithm, sink))
    }

    /// Runs a batch of queries with `Enum`, counting results per query.
    ///
    /// Convenience wrapper over [`QueryEngine::run_batch_with`] with a
    /// [`CountingSink`] per query.
    ///
    /// # Errors
    /// See [`QueryEngine::run_batch_with`].
    pub fn run_batch(
        &self,
        queries: &[TimeRangeKCoreQuery],
    ) -> Result<(Vec<(CountingSink, QueryStats)>, BatchStats), TkError> {
        self.run_batch_with(queries, Algorithm::Enum, |_| CountingSink::default())
    }

    /// Fans `queries` across worker threads, one fresh sink per query.
    ///
    /// `make_sink(i)` builds the sink for `queries[i]`; results come back in
    /// query order together with per-query [`QueryStats`] and aggregated
    /// [`BatchStats`].  Workers pull the next query index from a shared
    /// atomic counter, so long and short queries balance automatically.
    ///
    /// # Errors
    /// Every query is validated up front (same rules as
    /// [`QueryEngine::run_with`]); the first invalid query fails the whole
    /// batch before any work starts, so a partially-executed batch is never
    /// observable.
    pub fn run_batch_with<S, F>(
        &self,
        queries: &[TimeRangeKCoreQuery],
        algorithm: Algorithm,
        make_sink: F,
    ) -> Result<(Vec<(S, QueryStats)>, BatchStats), TkError>
    where
        S: ResultSink + Send + 'static,
        F: Fn(usize) -> S + Send + Sync + 'static,
    {
        let t0 = Instant::now();
        let validated = Arc::new(validate_batch(&self.inner.graph, queries)?);
        let (threads, pool) = batch_executor(
            &self.inner.pool,
            self.inner.config.num_threads,
            validated.len(),
        );
        let inner = Arc::clone(&self.inner);
        let per_query = fan_out_batch(pool, validated, make_sink, move |k, window, sink| {
            inner.run_validated(k, window, algorithm, sink)
        });
        let batch = aggregate_batch(&per_query, t0.elapsed(), threads, self.cache_stats());
        Ok((per_query, batch))
    }
}

impl EngineInner {
    /// Returns the span-wide skyline for `k`, building and caching it on a
    /// miss.  The build runs outside the cache lock (see module docs).
    fn span_skyline(&self, k: usize) -> Arc<EdgeCoreSkyline> {
        if let Some(hit) = sync::lock(&self.cache).get(k) {
            return hit;
        }
        let built = Arc::new(EdgeCoreSkyline::build(&self.graph, k, self.graph.span()));
        sync::lock(&self.cache).adopt(k, built)
    }

    /// Executes a query whose parameters already passed validation (`k >= 1`,
    /// window inside the graph span).
    fn run_validated(
        &self,
        k: usize,
        range: temporal_graph::TimeWindow,
        algorithm: Algorithm,
        sink: &mut dyn ResultSink,
    ) -> QueryStats {
        let clamped = TimeRangeKCoreQuery::validated(k, range);
        match algorithm {
            Algorithm::Enum | Algorithm::EnumBase => {
                let t0 = Instant::now();
                let span_skyline = self.span_skyline(k);
                // Take the whole scratch pool (short lock, guard dropped
                // immediately), reuse its buffers for the restriction, merge
                // it back once the restricted skyline is retired.
                let mut scratch = std::mem::take(&mut *sync::lock(&self.scratch));
                let restricted = span_skyline.restrict_with(&self.graph, range, &mut scratch);
                let precompute_time = t0.elapsed();
                let mut stats = clamped
                    .run_with_skyline(&self.graph, &restricted, algorithm, sink)
                    // tkc-lint: allow(no-panic-api) — restrict() targets exactly the clamped range, so validation cannot reject it
                    .expect("restricted skyline matches the clamped query by construction");
                stats.precompute_time = precompute_time;
                scratch.recycle(restricted);
                sync::lock(&self.scratch).absorb(scratch);
                stats
            }
            Algorithm::Otcd | Algorithm::Naive => clamped.run_with(&self.graph, algorithm, sink),
        }
    }
}

/// Validates every query of a batch against `graph` (the same rules as
/// [`QueryEngine::run_with`]); the first invalid query fails the whole batch
/// before any work starts.  Shared by [`QueryEngine`] and
/// [`crate::ShardedEngine`].
pub(crate) fn validate_batch(
    graph: &TemporalGraph,
    queries: &[TimeRangeKCoreQuery],
) -> Result<Vec<(usize, temporal_graph::TimeWindow)>, TkError> {
    queries
        .iter()
        .map(|query| {
            let range = query.range();
            QueryRequest::single(query.k(), range.start(), range.end())
                .validate(graph)
                .map(|v| (query.k(), v.window()))
        })
        .collect()
}

/// Resolves a configured thread count: `0` means one per available CPU.
pub(crate) fn resolve_threads(configured: usize) -> usize {
    if configured == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        configured
    }
}

/// Resolves a configured thread count (`0` = one per available CPU) against
/// the number of queries to run.
pub(crate) fn effective_threads(configured: usize, num_queries: usize) -> usize {
    resolve_threads(configured).clamp(1, num_queries.max(1))
}

/// Picks the executor for a batch of `num_queries`: the engine's persistent
/// pool (created lazily on the first multi-threaded batch, or injected by a
/// service at construction) plus the calling thread, or the inline
/// single-threaded path.  Returns the thread count to report in
/// [`BatchStats::threads`].  Shared by [`QueryEngine`] and
/// [`crate::ShardedEngine`].
pub(crate) fn batch_executor(
    pool: &OnceLock<Arc<ExecPool>>,
    configured_threads: usize,
    num_queries: usize,
) -> (usize, Option<Arc<ExecPool>>) {
    if let Some(pool) = pool.get() {
        let threads = (pool.num_workers() + 1).min(num_queries.max(1));
        return (threads, Some(Arc::clone(pool)));
    }
    let threads = effective_threads(configured_threads, num_queries);
    if threads <= 1 {
        return (threads, None);
    }
    // The calling thread participates in every batch, so the pool provides
    // the remaining threads.
    let pool = pool.get_or_init(|| ExecPool::new(resolve_threads(configured_threads) - 1));
    (threads, Some(Arc::clone(pool)))
}

/// Fans validated `(k, window)` queries across the persistent pool (plus the
/// calling thread), one fresh sink per query, results back in query order.
/// Workers claim the next query index from a shared atomic counter, so long
/// and short queries balance automatically.  `run` executes one
/// already-validated query — this is the seam both the span-wide and the
/// sharded engine plug their execution into.  `pool = None` runs inline on
/// the calling thread only.
pub(crate) fn fan_out_batch<S, F, R>(
    pool: Option<Arc<ExecPool>>,
    validated: Arc<Vec<(usize, temporal_graph::TimeWindow)>>,
    make_sink: F,
    run: R,
) -> Vec<(S, QueryStats)>
where
    S: ResultSink + Send + 'static,
    F: Fn(usize) -> S + Send + Sync + 'static,
    R: Fn(usize, temporal_graph::TimeWindow, &mut dyn ResultSink) -> QueryStats
        + Send
        + Sync
        + 'static,
{
    let len = validated.len();
    run_batch_inner(pool.as_deref(), len, move |i| {
        let (k, window) = validated[i];
        let mut sink = make_sink(i);
        let stats = run(k, window, &mut sink);
        (sink, stats)
    })
}

/// Sums per-query statistics into a [`BatchStats`].
pub(crate) fn aggregate_batch<S>(
    per_query: &[(S, QueryStats)],
    wall_time: Duration,
    threads: usize,
    cache: CacheStats,
) -> BatchStats {
    let mut batch = BatchStats {
        num_queries: per_query.len(),
        total_cores: 0,
        total_result_edges: 0,
        precompute_time: Duration::ZERO,
        enumerate_time: Duration::ZERO,
        wall_time,
        threads,
        cache,
    };
    for (_, stats) in per_query {
        batch.total_cores += stats.num_cores;
        batch.total_result_edges += stats.total_result_edges;
        batch.precompute_time += stats.precompute_time;
        batch.enumerate_time += stats.enumerate_time;
    }
    batch
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example;
    use crate::sink::CollectingSink;
    use temporal_graph::{TemporalGraphBuilder, TimeWindow};

    fn graph() -> TemporalGraph {
        TemporalGraphBuilder::new()
            .with_edges([
                (0u64, 1u64, 1i64),
                (1, 2, 2),
                (0, 2, 3),
                (2, 3, 4),
                (3, 4, 5),
                (2, 4, 6),
                (0, 1, 6),
                (1, 2, 7),
                (0, 2, 7),
            ])
            .build()
            .unwrap()
    }

    fn canonical(mut cores: Vec<crate::TemporalKCore>) -> Vec<crate::TemporalKCore> {
        cores.sort_by(|a, b| a.tti.cmp(&b.tti).then_with(|| a.edges.cmp(&b.edges)));
        cores
    }

    #[test]
    fn cached_answers_match_fresh_for_every_algorithm_and_range() {
        let g = graph();
        let engine = QueryEngine::new(g.clone());
        for k in 1..=3 {
            for range in [
                g.span(),
                TimeWindow::new(2, 6),
                TimeWindow::new(3, 5),
                TimeWindow::new(7, 7),
                TimeWindow::new(1, 200),
            ] {
                let query = TimeRangeKCoreQuery::new(k, range).unwrap();
                for algo in Algorithm::ALL {
                    let mut fresh = CollectingSink::default();
                    query.run_with(&g, algo, &mut fresh);
                    let mut cached = CollectingSink::default();
                    engine.run_with(&query, algo, &mut cached).unwrap();
                    assert_eq!(
                        canonical(cached.cores),
                        canonical(fresh.cores),
                        "k={k} range={range} algo={}",
                        algo.name()
                    );
                }
            }
        }
    }

    #[test]
    fn cache_hits_after_first_query_per_k() {
        let g = graph();
        let engine = QueryEngine::new(g.clone());
        let mut sink = CountingSink::default();
        engine
            .run(
                &TimeRangeKCoreQuery::new(2, TimeWindow::new(2, 5)).unwrap(),
                &mut sink,
            )
            .unwrap();
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses), (0, 1));
        let mut sink = CountingSink::default();
        engine
            .run(
                &TimeRangeKCoreQuery::new(2, TimeWindow::new(3, 6)).unwrap(),
                &mut sink,
            )
            .unwrap();
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.resident_indexes, 1);
        assert!(stats.resident_bytes > 0);
    }

    #[test]
    fn lru_eviction_respects_budget_and_keeps_newest() {
        let g = graph();
        let one_index_bytes = EdgeCoreSkyline::build(&g, 1, g.span()).memory_bytes();
        let engine = QueryEngine::with_config(
            g.clone(),
            EngineConfig {
                memory_budget_bytes: one_index_bytes, // room for ~one index
                num_threads: 1,
                ..EngineConfig::default()
            },
        );
        for k in 1..=3 {
            let mut sink = CountingSink::default();
            engine
                .run(&TimeRangeKCoreQuery::new(k, g.span()).unwrap(), &mut sink)
                .unwrap();
        }
        let stats = engine.cache_stats();
        assert_eq!(stats.misses, 3);
        assert!(stats.evictions >= 1, "evictions: {stats:?}");
        assert!(stats.resident_indexes >= 1);
        // The most recent k must have survived.
        assert!(engine.warm(3), "k=3 evicted despite being newest");
    }

    #[test]
    fn out_of_span_queries_are_refused_with_a_typed_error() {
        let g = graph();
        let engine = QueryEngine::new(g.clone());
        let past_the_end =
            TimeRangeKCoreQuery::new(2, TimeWindow::new(g.tmax() + 1, g.tmax() + 9)).unwrap();
        for algo in Algorithm::ALL {
            let mut sink = CountingSink::default();
            let err = engine.run_with(&past_the_end, algo, &mut sink).unwrap_err();
            assert!(
                matches!(err, TkError::WindowPastTmax { start, tmax }
                    if start == g.tmax() + 1 && tmax == g.tmax()),
                "{}: {err}",
                algo.name()
            );
            assert_eq!(sink.num_cores, 0, "{}", algo.name());
        }
        assert_eq!(
            engine.cache_stats().misses,
            0,
            "no index built for refused queries"
        );
        // A batch containing one bad query fails up front, executing nothing.
        let queries = [
            TimeRangeKCoreQuery::new(2, TimeWindow::new(1, 3)).unwrap(),
            past_the_end,
        ];
        assert!(matches!(
            engine.run_batch(&queries),
            Err(TkError::WindowPastTmax { .. })
        ));
        assert_eq!(engine.cache_stats().misses, 0);
    }

    #[test]
    fn batch_matches_sequential_and_aggregates() {
        let g = paper_example::graph();
        let engine = QueryEngine::new(g.clone());
        let queries: Vec<TimeRangeKCoreQuery> = (1..=g.tmax())
            .flat_map(|s| {
                (s..=g.tmax())
                    .map(move |e| TimeRangeKCoreQuery::new(2, TimeWindow::new(s, e)).unwrap())
            })
            .collect();
        // Pre-warm so the miss counter below is deterministic even when the
        // batch fans across several workers (concurrent cold queries for one
        // k may otherwise each count a miss — the documented build race).
        engine.warm(2);
        let (results, batch) = engine.run_batch(&queries).unwrap();
        assert_eq!(results.len(), queries.len());
        assert_eq!(batch.num_queries, queries.len());
        let mut expected_cores = 0u64;
        for (query, (sink, stats)) in queries.iter().zip(&results) {
            let mut fresh = CountingSink::default();
            query.run_with(&g, Algorithm::Enum, &mut fresh);
            assert_eq!(sink.num_cores, fresh.num_cores, "{}", query.range());
            assert_eq!(sink.total_edges, fresh.total_edges, "{}", query.range());
            assert_eq!(stats.num_cores, sink.num_cores);
            expected_cores += fresh.num_cores;
        }
        assert_eq!(batch.total_cores, expected_cores);
        assert_eq!(
            engine.cache_stats().misses,
            1,
            "one span-wide build serves the whole batch"
        );
        assert!(batch.threads >= 1);
    }

    /// A sink that panics mid-stream: the engine must treat the panic as
    /// contained (exec-pool isolation) and every lock it might have been
    /// near must stay usable afterwards.
    struct ExplodingSink;

    impl crate::sink::ResultSink for ExplodingSink {
        fn emit(&mut self, _tti: TimeWindow, _edges: &[temporal_graph::EdgeId]) {
            panic!("sink exploded mid-stream");
        }
    }

    #[test]
    fn a_panicking_sink_does_not_wedge_later_cache_stats_calls() {
        let g = paper_example::graph();
        let engine = Arc::new(QueryEngine::new(g.clone()));
        let queries = vec![TimeRangeKCoreQuery::new(2, g.span()).unwrap(); 4];
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.run_batch_with(&queries, Algorithm::Enum, |_| ExplodingSink)
        }));
        assert!(panicked.is_err(), "the sink panic reaches the caller");
        // The regression PR 6 guards against: the panic above (or any panic
        // that unwound with a cache guard held) used to poison the cache
        // mutex, and the old `.lock().expect("cache lock")` then took down
        // every later caller.  Stats and fresh queries must still work.
        let stats = engine.cache_stats();
        assert_eq!(stats.misses, 1, "the skyline build survived the panic");
        let mut sink = CountingSink::default();
        engine
            .run(&TimeRangeKCoreQuery::new(2, g.span()).unwrap(), &mut sink)
            .unwrap();
        assert!(sink.num_cores > 0);
    }

    #[test]
    fn a_poisoned_cache_lock_recovers_instead_of_wedging() {
        let g = graph();
        let engine = QueryEngine::new(g.clone());
        engine.warm(2);
        // Poison the cache mutex directly: panic while holding the guard.
        let inner = Arc::clone(&engine.inner);
        let poisoned = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = inner.cache.lock().expect("not poisoned yet");
            panic!("poison the cache lock");
        }));
        assert!(poisoned.is_err());
        assert!(inner.cache.is_poisoned());
        // Every later caller recovers the guard instead of propagating.
        assert_eq!(engine.cache_stats().resident_indexes, 1);
        assert!(engine.warm(2), "cached skyline still resident");
        let mut sink = CountingSink::default();
        engine
            .run(&TimeRangeKCoreQuery::new(2, g.span()).unwrap(), &mut sink)
            .unwrap();
    }

    #[test]
    fn batch_with_custom_sinks_and_threads() {
        let g = paper_example::graph();
        let engine = QueryEngine::with_config(
            g.clone(),
            EngineConfig {
                num_threads: 3,
                ..EngineConfig::default()
            },
        );
        let queries = vec![TimeRangeKCoreQuery::new(2, g.span()).unwrap(); 7];
        let (results, batch) = engine
            .run_batch_with(&queries, Algorithm::Enum, |i| {
                let mut sink = CollectingSink::default();
                sink.cores.reserve(i); // exercise the index argument
                sink
            })
            .unwrap();
        assert_eq!(batch.threads, 3);
        let first = canonical(results[0].0.cores.clone());
        for (sink, _) in &results {
            assert_eq!(canonical(sink.cores.clone()), first);
        }
    }
}
