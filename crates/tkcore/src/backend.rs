//! Pluggable query execution: the [`CoreBackend`] trait.
//!
//! The repository historically exposed three parallel entry points — free
//! functions per algorithm, [`crate::TimeRangeKCoreQuery`] methods, and
//! [`crate::QueryEngine`] — each with its own calling convention.
//! `CoreBackend` unifies them behind one fallible seam: *something that can
//! execute a validated `(k, window)` query against a graph, streaming cores
//! into a sink*.  Callers and tests select execution by value instead of
//! match-dispatching free functions:
//!
//! * every [`Algorithm`] variant is itself a backend (`Enum`, `EnumBase`,
//!   `Otcd`, `Naive`) that builds whatever per-query state it needs;
//! * [`CachedBackend`] wraps a shared [`QueryEngine`] so the same call shape
//!   answers from the engine's span-wide skyline cache;
//! * [`crate::ShardedBackend`] does the same over a
//!   [`crate::ShardedEngine`], answering from per-`(shard, k)` skylines with
//!   exact stitching at shard boundaries (see [`crate::shard`]).
//!
//! [`crate::QueryRequest`] drives a backend for multi-`k` and `k`-range
//! requests; [`crate::CoreService`] puts a queue in front of one.

use std::sync::Arc;

use crate::engine::QueryEngine;
use crate::error::TkError;
use crate::query::{Algorithm, QueryStats, TimeRangeKCoreQuery};
use crate::sink::ResultSink;
use temporal_graph::{TemporalGraph, TimeWindow};

/// A query executor: runs one `(k, window)` time-range temporal k-core query
/// against a graph, streaming every distinct core into `sink`.
///
/// Implementations validate their inputs and return a typed [`TkError`]
/// instead of panicking: `k == 0` is [`TkError::KOutOfRange`] and a window
/// starting past the graph's last timestamp is [`TkError::WindowPastTmax`].
/// Windows overhanging the end of the span are clamped, matching the
/// semantics of [`crate::QueryRequest::validate`].
pub trait CoreBackend {
    /// Short human-readable name for reports and error messages.
    fn name(&self) -> &str;

    /// Executes the query, returning per-phase statistics.
    ///
    /// # Errors
    /// [`TkError::KOutOfRange`] for `k == 0`; [`TkError::WindowPastTmax`]
    /// when `window` starts after `graph.tmax()`; backend-specific errors
    /// such as [`TkError::GraphMismatch`] for [`CachedBackend`].
    fn execute(
        &self,
        graph: &TemporalGraph,
        k: usize,
        window: TimeWindow,
        sink: &mut dyn ResultSink,
    ) -> Result<QueryStats, TkError>;
}

/// Validates `(k, window)` against `graph` and returns the window clamped to
/// the graph span — the shared admission rule of every backend.
pub(crate) fn validate_query(
    graph: &TemporalGraph,
    k: usize,
    window: TimeWindow,
) -> Result<TimeWindow, TkError> {
    if k == 0 {
        return Err(TkError::KOutOfRange { k });
    }
    // A constructed graph always has at least one edge, so tmax() >= 1;
    // the max(1) below only guards the TimeWindow invariant.
    let tmax = graph.tmax();
    if window.start() > tmax.max(1) {
        return Err(TkError::WindowPastTmax {
            start: window.start(),
            tmax,
        });
    }
    Ok(TimeWindow::new(
        window.start(),
        window.end().min(tmax.max(1)),
    ))
}

/// The graph-identity rule shared by every engine-backed backend
/// ([`CachedBackend`], [`crate::ShardedBackend`]): pointer equality is the
/// O(1) fast path, an equal clone is also accepted at O(|E|) comparison
/// cost.  Deciding [`TkError::GraphMismatch`] in one place keeps the two
/// backends' acceptance behavior in lockstep.
pub(crate) fn graph_matches(own: &TemporalGraph, other: &TemporalGraph) -> bool {
    std::ptr::eq(own, other)
        || (own.num_vertices() == other.num_vertices()
            && own.num_edges() == other.num_edges()
            && own.tmax() == other.tmax()
            && own.edges() == other.edges())
}

impl CoreBackend for Algorithm {
    fn name(&self) -> &str {
        Algorithm::name(self)
    }

    fn execute(
        &self,
        graph: &TemporalGraph,
        k: usize,
        window: TimeWindow,
        sink: &mut dyn ResultSink,
    ) -> Result<QueryStats, TkError> {
        let clamped = validate_query(graph, k, window)?;
        Ok(TimeRangeKCoreQuery::validated(k, clamped).run_with(graph, *self, sink))
    }
}

/// A backend answering from a shared [`QueryEngine`]'s skyline cache.
///
/// Skyline-based algorithms reuse the engine's span-wide index per `k`
/// (built at most once, asserted via [`crate::CacheStats`]); `Otcd` and
/// `Naive` pass through to per-query execution.  Because cached skylines are
/// graph-specific, [`CoreBackend::execute`] refuses with
/// [`TkError::GraphMismatch`] when handed a graph other than
/// [`QueryEngine::graph`].
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use tkcore::{paper_example, CachedBackend, CoreBackend, CountingSink, QueryEngine};
/// use temporal_graph::TimeWindow;
///
/// let engine = Arc::new(QueryEngine::new(paper_example::graph()));
/// let backend = CachedBackend::new(Arc::clone(&engine));
/// let mut sink = CountingSink::default();
/// let stats = backend
///     .execute(engine.graph(), 2, TimeWindow::new(1, 4), &mut sink)
///     .unwrap();
/// assert_eq!(stats.num_cores, 2); // Figure 2 of the paper
/// assert_eq!(engine.cache_stats().misses, 1);
/// ```
#[derive(Clone)]
pub struct CachedBackend {
    engine: Arc<QueryEngine>,
    algorithm: Algorithm,
}

impl CachedBackend {
    /// A cached backend running the paper's final algorithm (`Enum`).
    pub fn new(engine: Arc<QueryEngine>) -> Self {
        Self::with_algorithm(engine, Algorithm::Enum)
    }

    /// A cached backend running the chosen algorithm.
    pub fn with_algorithm(engine: Arc<QueryEngine>, algorithm: Algorithm) -> Self {
        Self { engine, algorithm }
    }

    /// The engine this backend answers from.
    pub fn engine(&self) -> &QueryEngine {
        &self.engine
    }

    /// The algorithm this backend runs.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// Is `graph` the graph this backend's engine serves?  Pass
    /// [`QueryEngine::graph`] to `execute` to hit the O(1) pointer fast
    /// path of [`graph_matches`]; an equal clone costs a full O(|E|) edge
    /// comparison per call, so hot paths should not rely on it.
    fn serves(&self, graph: &TemporalGraph) -> bool {
        graph_matches(self.engine.graph(), graph)
    }
}

impl CoreBackend for CachedBackend {
    fn name(&self) -> &str {
        match self.algorithm {
            Algorithm::Enum => "Cached(Enum)",
            Algorithm::EnumBase => "Cached(EnumBase)",
            Algorithm::Otcd => "Cached(OTCD)",
            Algorithm::Naive => "Cached(Naive)",
        }
    }

    fn execute(
        &self,
        graph: &TemporalGraph,
        k: usize,
        window: TimeWindow,
        sink: &mut dyn ResultSink,
    ) -> Result<QueryStats, TkError> {
        if !self.serves(graph) {
            return Err(TkError::GraphMismatch);
        }
        let clamped = validate_query(graph, k, window)?;
        self.engine.run_with(
            &TimeRangeKCoreQuery::validated(k, clamped),
            self.algorithm,
            sink,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example;
    use crate::sink::{CollectingSink, CountingSink};
    use crate::TemporalKCore;

    fn canonical(mut cores: Vec<TemporalKCore>) -> Vec<TemporalKCore> {
        cores.sort_by(|a, b| a.tti.cmp(&b.tti).then_with(|| a.edges.cmp(&b.edges)));
        cores
    }

    #[test]
    fn every_algorithm_backend_matches_naive_on_the_paper_example() {
        let g = paper_example::graph();
        let expected = crate::naive::naive_results(&g, 2, paper_example::full_range());
        for algo in Algorithm::ALL {
            let mut sink = CollectingSink::default();
            let stats = algo
                .execute(&g, 2, paper_example::full_range(), &mut sink)
                .unwrap();
            assert_eq!(stats.num_cores as usize, expected.len(), "{algo}");
            assert_eq!(canonical(sink.cores), expected, "{algo}");
        }
    }

    #[test]
    fn backends_reject_malformed_input_with_typed_errors() {
        let g = paper_example::graph();
        let mut sink = CountingSink::default();
        assert!(matches!(
            Algorithm::Enum.execute(&g, 0, paper_example::full_range(), &mut sink),
            Err(TkError::KOutOfRange { k: 0 })
        ));
        let past = TimeWindow::new(g.tmax() + 1, g.tmax() + 5);
        assert!(matches!(
            Algorithm::Otcd.execute(&g, 2, past, &mut sink),
            Err(TkError::WindowPastTmax { .. })
        ));
    }

    #[test]
    fn overhanging_windows_are_clamped_not_rejected() {
        let g = paper_example::graph();
        let mut overhang = CountingSink::default();
        let stats = Algorithm::Enum
            .execute(&g, 2, TimeWindow::new(1, 500), &mut overhang)
            .unwrap();
        let mut exact = CountingSink::default();
        Algorithm::Enum
            .execute(&g, 2, paper_example::full_range(), &mut exact)
            .unwrap();
        assert_eq!(overhang, exact);
        assert_eq!(stats.num_cores, exact.num_cores);
    }

    #[test]
    fn cached_backend_matches_direct_execution_and_caches() {
        let g = paper_example::graph();
        let engine = Arc::new(QueryEngine::new(g.clone()));
        let backend = CachedBackend::new(Arc::clone(&engine));
        assert_eq!(backend.algorithm(), Algorithm::Enum);
        assert_eq!(backend.name(), "Cached(Enum)");
        for window in [
            paper_example::example_query_range(),
            paper_example::full_range(),
        ] {
            let mut cached = CollectingSink::default();
            backend.execute(&g, 2, window, &mut cached).unwrap();
            let mut direct = CollectingSink::default();
            Algorithm::Enum.execute(&g, 2, window, &mut direct).unwrap();
            assert_eq!(canonical(cached.cores), canonical(direct.cores), "{window}");
        }
        let stats = engine.cache_stats();
        assert_eq!(stats.misses, 1, "one span-wide build for both windows");
        assert!(stats.hits >= 1);
    }

    #[test]
    fn cached_backend_refuses_a_foreign_graph() {
        let g = paper_example::graph();
        let engine = Arc::new(QueryEngine::new(g));
        let backend = CachedBackend::new(engine);
        let other = temporal_graph::TemporalGraphBuilder::new()
            .with_edges([(0u64, 1u64, 1i64), (1, 2, 2), (0, 2, 2)])
            .build()
            .unwrap();
        let mut sink = CountingSink::default();
        assert!(matches!(
            backend.execute(&other, 2, TimeWindow::new(1, 2), &mut sink),
            Err(TkError::GraphMismatch)
        ));
    }
}
