//! The baseline skyline-based enumerator (Algorithm 3, `EnumBase`).
//!
//! For every start time `ts` of the query range, the edges whose earliest
//! minimal core window starts at or after `ts` are bucketed by that window's
//! end time; scanning the buckets in increasing end time accumulates the
//! temporal k-core of `[ts, te]` (Lemma 3).  Duplicate results across
//! windows are filtered with a hash table of previously emitted edge sets,
//! which is exactly the memory-hungry behaviour the paper attributes to this
//! baseline (Figure 12).

use crate::ecs::EdgeCoreSkyline;
use crate::sink::ResultSink;
use std::collections::HashSet;
use temporal_graph::{EdgeId, TemporalGraph, TimeWindow, Timestamp};

/// Statistics of one `EnumBase` run.
#[derive(Debug, Clone, Copy, Default)]
pub struct EnumBaseStats {
    /// Number of distinct temporal k-cores emitted.
    pub num_cores: u64,
    /// Total number of edges over all emitted cores (`|R|`).
    pub total_edges: u64,
    /// Number of windows examined (start/end pairs actually scanned).
    pub windows_scanned: u64,
    /// Estimated peak heap footprint in bytes (dominated by the dedup table).
    pub peak_memory_bytes: usize,
}

/// Runs Algorithm 3 over a prebuilt edge core window skyline, streaming
/// distinct temporal k-cores into `sink`.
pub fn enumerate_base(
    graph: &TemporalGraph,
    ecs: &EdgeCoreSkyline,
    sink: &mut dyn ResultSink,
) -> EnumBaseStats {
    let range = ecs.range();
    let (ts_lo, ts_hi) = (range.start(), range.end());
    let mut stats = EnumBaseStats::default();

    // Previously produced cores, stored as sorted edge-id vectors.
    let mut seen: HashSet<Vec<EdgeId>> = HashSet::new();
    let mut dedup_bytes = 0usize;

    // Per-edge skylines with at least one window; reused across start times.
    let skylines: Vec<(EdgeId, &[TimeWindow])> = ecs.iter().collect();

    let width = (ts_hi - ts_lo + 1) as usize;
    let mut buckets: Vec<Vec<EdgeId>> = vec![Vec::new(); width];

    for ts in ts_lo..=ts_hi {
        for b in &mut buckets {
            b.clear();
        }
        // Lines 4-6: the first skyline window starting at or after ts decides
        // the bucket of each edge.
        for &(edge, windows) in &skylines {
            let idx = windows.partition_point(|w| w.start() < ts);
            if let Some(w) = windows.get(idx) {
                buckets[(w.end() - ts_lo) as usize].push(edge);
            }
        }

        // Lines 7-12: accumulate buckets in increasing end time.
        let mut current: Vec<EdgeId> = Vec::new();
        let mut min_t: Timestamp = Timestamp::MAX;
        let mut max_t: Timestamp = 0;
        for te in ts.max(ts_lo)..=ts_hi {
            let bucket = &buckets[(te - ts_lo) as usize];
            if bucket.is_empty() {
                continue;
            }
            stats.windows_scanned += 1;
            for &edge in bucket {
                let t = graph.edge(edge).t;
                min_t = min_t.min(t);
                max_t = max_t.max(t);
                current.push(edge);
            }
            let mut canonical = current.clone();
            canonical.sort_unstable();
            if seen.contains(&canonical) {
                continue;
            }
            sink.emit(TimeWindow::new(min_t, max_t), &canonical);
            stats.num_cores += 1;
            stats.total_edges += canonical.len() as u64;
            dedup_bytes += canonical.len() * std::mem::size_of::<EdgeId>()
                + std::mem::size_of::<Vec<EdgeId>>();
            seen.insert(canonical);
        }
    }

    stats.peak_memory_bytes =
        dedup_bytes + buckets.capacity() * std::mem::size_of::<Vec<EdgeId>>() + ecs.memory_bytes();
    stats
}

/// Convenience wrapper: builds the skyline and runs Algorithm 3.
pub fn enumerate_base_from_graph(
    graph: &TemporalGraph,
    k: usize,
    range: TimeWindow,
    sink: &mut dyn ResultSink,
) -> EnumBaseStats {
    let ecs = EdgeCoreSkyline::build(graph, k, range);
    enumerate_base(graph, &ecs, sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_results;
    use crate::sink::CollectingSink;
    use temporal_graph::TemporalGraphBuilder;

    fn graph() -> TemporalGraph {
        TemporalGraphBuilder::new()
            .with_edges([
                (0u64, 1u64, 1i64),
                (1, 2, 2),
                (0, 2, 3),
                (2, 3, 4),
                (3, 4, 5),
                (2, 4, 6),
                (0, 1, 6),
                (1, 2, 7),
                (0, 2, 7),
            ])
            .build()
            .unwrap()
    }

    #[test]
    fn matches_naive_enumeration() {
        let g = graph();
        for k in 1..=3 {
            for range in [g.span(), TimeWindow::new(2, 6)] {
                let mut sink = CollectingSink::default();
                enumerate_base_from_graph(&g, k, range, &mut sink);
                let got = sink.into_sorted();
                let expected = naive_results(&g, k, range);
                assert_eq!(got, expected, "k={k} range={range}");
            }
        }
    }

    #[test]
    fn stats_are_consistent_with_results() {
        let g = graph();
        let mut sink = CollectingSink::default();
        let stats = enumerate_base_from_graph(&g, 2, g.span(), &mut sink);
        let cores = sink.into_sorted();
        assert_eq!(stats.num_cores as usize, cores.len());
        assert_eq!(
            stats.total_edges as usize,
            cores.iter().map(|c| c.num_edges()).sum::<usize>()
        );
        assert!(stats.peak_memory_bytes > 0);
        assert!(stats.windows_scanned >= stats.num_cores);
    }

    #[test]
    fn empty_result_when_k_too_large() {
        let g = graph();
        let mut sink = CollectingSink::default();
        let stats = enumerate_base_from_graph(&g, 5, g.span(), &mut sink);
        assert_eq!(stats.num_cores, 0);
        assert!(sink.cores.is_empty());
    }
}
