//! The optimal-time enumerator (`Enum`, Algorithms 4 and 5 of the paper).
//!
//! Given the edge core window skylines, all distinct temporal k-cores are
//! enumerated in time proportional to the total result size `|R|`:
//!
//! * every minimal core window is given an *active time* (Definition 6): the
//!   earliest start time for which it is the relevant window of its edge;
//! * for each start time `ts`, a doubly linked list `L_ts` holds exactly the
//!   windows with `active <= ts <= start`, ordered by ascending end time;
//!   the list is maintained incrementally (windows are inserted when their
//!   active time is reached and removed once the start time passes their own
//!   start time), so at most one window per edge is ever present;
//! * `AS-Output` (Algorithm 4) scans `L_ts` once, accumulating edges and
//!   emitting a distinct temporal k-core — whose TTI is `[ts, end]` — at the
//!   boundary of every run of equal end times once a window starting exactly
//!   at `ts` has been seen (Theorem 2: those end times are exactly the valid
//!   TTI end times for start time `ts`).

use crate::ecs::EdgeCoreSkyline;
use crate::sink::ResultSink;
use temporal_graph::{EdgeId, TemporalGraph, TimeWindow, Timestamp};

/// Statistics of one `Enum` run.
#[derive(Debug, Clone, Copy, Default)]
pub struct EnumStats {
    /// Number of distinct temporal k-cores emitted.
    pub num_cores: u64,
    /// Total number of edges over all emitted cores (`|R|`).
    pub total_edges: u64,
    /// Number of minimal core windows processed (`|ECS|`).
    pub skyline_windows: u64,
    /// Estimated peak heap footprint in bytes (linked list + buckets).
    pub peak_memory_bytes: usize,
}

/// One minimal core window record used by the enumeration structure.
#[derive(Debug, Clone, Copy)]
struct WindowRecord {
    start: Timestamp,
    end: Timestamp,
    active: Timestamp,
    edge: EdgeId,
}

/// Doubly linked list over window records, ordered by ascending end time.
/// Node 0 is a dummy head; record `i` is node `i + 1`.
struct WindowList {
    next: Vec<u32>,
    prev: Vec<u32>,
}

const NIL: u32 = u32::MAX;

impl WindowList {
    fn new(num_records: usize) -> Self {
        let mut next = vec![NIL; num_records + 1];
        let prev = vec![NIL; num_records + 1];
        next[0] = NIL;
        Self { next, prev }
    }

    #[inline]
    fn head(&self) -> u32 {
        0
    }

    #[inline]
    fn first(&self) -> u32 {
        self.next[0]
    }

    /// Inserts node `node` after node `after`.
    fn insert_after(&mut self, node: u32, after: u32) {
        let b = self.next[after as usize];
        self.next[node as usize] = b;
        self.prev[node as usize] = after;
        self.next[after as usize] = node;
        if b != NIL {
            self.prev[b as usize] = node;
        }
    }

    /// Unlinks node `node` (which must currently be linked).
    fn delete(&mut self, node: u32) {
        let p = self.prev[node as usize];
        let n = self.next[node as usize];
        debug_assert_ne!(p, NIL, "deleting a node that is not linked");
        self.next[p as usize] = n;
        if n != NIL {
            self.prev[n as usize] = p;
        }
        self.prev[node as usize] = NIL;
        self.next[node as usize] = NIL;
    }
}

/// Runs the `Enum` algorithm over a prebuilt skyline, streaming every
/// distinct temporal k-core of the query range into `sink`.
pub fn enumerate(
    graph: &TemporalGraph,
    ecs: &EdgeCoreSkyline,
    sink: &mut dyn ResultSink,
) -> EnumStats {
    let _ = graph; // parameter kept for API symmetry with the other algorithms
    let range = ecs.range();
    let (ts_lo, ts_hi) = (range.start(), range.end());
    let width = (ts_hi - ts_lo + 1) as usize;
    let mut stats = EnumStats::default();

    // Collect window records and compute active times (Algorithm 5, lines 1-4):
    // the first window of an edge activates at the range start; every later
    // window activates right after the previous window's start time.
    let mut records: Vec<WindowRecord> = Vec::with_capacity(ecs.total_windows());
    for (edge, windows) in ecs.iter() {
        let mut prev_start: Option<Timestamp> = None;
        for w in windows {
            let active = match prev_start {
                None => ts_lo,
                Some(s) => s + 1,
            };
            records.push(WindowRecord {
                start: w.start(),
                end: w.end(),
                active,
                edge,
            });
            prev_start = Some(w.start());
        }
    }
    stats.skyline_windows = records.len() as u64;

    // Bucket records by active time (Ba) and by start time (Bs), each bucket
    // ordered by ascending end time (Algorithm 5, lines 5-11).  Bucketing by
    // end first gives the order without a comparison sort.
    let mut by_end: Vec<Vec<u32>> = vec![Vec::new(); width];
    for (i, r) in records.iter().enumerate() {
        by_end[(r.end - ts_lo) as usize].push(i as u32);
    }
    let mut ba: Vec<Vec<u32>> = vec![Vec::new(); width];
    let mut bs: Vec<Vec<u32>> = vec![Vec::new(); width];
    for bucket in &by_end {
        for &i in bucket {
            let r = &records[i as usize];
            ba[(r.active - ts_lo) as usize].push(i);
            bs[(r.start - ts_lo) as usize].push(i);
        }
    }

    let mut list = WindowList::new(records.len());
    let mut result_edges: Vec<EdgeId> = Vec::new();

    // Main loop over start times (Algorithm 5, lines 13-24).
    for ts in ts_lo..=ts_hi {
        let idx = (ts - ts_lo) as usize;
        // Remove windows whose own start time has passed.
        if ts > ts_lo {
            for &i in &bs[idx - 1] {
                list.delete(i + 1);
            }
        }
        // Insert windows that become active at ts, keeping end-time order.
        let mut h = list.head();
        for &i in &ba[idx] {
            let end = records[i as usize].end;
            loop {
                let nxt = list.next[h as usize];
                if nxt == NIL || records[(nxt - 1) as usize].end >= end {
                    break;
                }
                h = nxt;
            }
            list.insert_after(i + 1, h);
            h = i + 1;
        }
        // No minimal core window starts at ts => no temporal k-core has a
        // TTI starting at ts (Lemma 4).
        if bs[idx].is_empty() {
            continue;
        }

        // AS-Output (Algorithm 4): single scan of the list.
        result_edges.clear();
        let mut valid = false;
        let mut node = list.first();
        while node != NIL {
            let r = &records[(node - 1) as usize];
            result_edges.push(r.edge);
            if r.start == ts {
                valid = true;
            }
            let next = list.next[node as usize];
            let last_of_group = next == NIL || records[(next - 1) as usize].end != r.end;
            if valid && last_of_group {
                sink.emit(TimeWindow::new(ts, r.end), &result_edges);
                stats.num_cores += 1;
                stats.total_edges += result_edges.len() as u64;
            }
            node = next;
        }
    }

    stats.peak_memory_bytes = records.len()
        * (std::mem::size_of::<WindowRecord>() + 2 * std::mem::size_of::<u32>() * 3)
        + ecs.memory_bytes();
    stats
}

/// Convenience wrapper: builds the skyline (Algorithm 2) and enumerates
/// (Algorithm 5) in one call.
pub fn enumerate_from_graph(
    graph: &TemporalGraph,
    k: usize,
    range: TimeWindow,
    sink: &mut dyn ResultSink,
) -> EnumStats {
    let ecs = EdgeCoreSkyline::build(graph, k, range);
    enumerate(graph, &ecs, sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_results;
    use crate::sink::{CollectingSink, CountingSink};
    use temporal_graph::{generator, TemporalGraphBuilder};

    fn graph() -> TemporalGraph {
        TemporalGraphBuilder::new()
            .with_edges([
                (0u64, 1u64, 1i64),
                (1, 2, 2),
                (0, 2, 3),
                (2, 3, 4),
                (3, 4, 5),
                (2, 4, 6),
                (0, 1, 6),
                (1, 2, 7),
                (0, 2, 7),
            ])
            .build()
            .unwrap()
    }

    #[test]
    fn matches_naive_enumeration() {
        let g = graph();
        for k in 1..=3 {
            for range in [g.span(), TimeWindow::new(2, 6), TimeWindow::new(3, 5)] {
                let mut sink = CollectingSink::default();
                enumerate_from_graph(&g, k, range, &mut sink);
                let got = sink.into_sorted();
                let expected = naive_results(&g, k, range);
                assert_eq!(got, expected, "k={k} range={range}");
            }
        }
    }

    #[test]
    fn emitted_ttis_are_tight_and_cores_valid() {
        let g = graph();
        let mut sink = CollectingSink::default();
        enumerate_from_graph(&g, 2, g.span(), &mut sink);
        for core in &sink.cores {
            assert!(core.is_valid_k_core(&g, 2));
            assert!(core.tti_is_tight(&g), "TTI {:?} not tight", core.tti);
        }
    }

    #[test]
    fn no_duplicate_results() {
        let g = graph();
        let mut sink = CollectingSink::default();
        enumerate_from_graph(&g, 2, g.span(), &mut sink);
        let mut sets: Vec<Vec<EdgeId>> = sink.cores.iter().map(|c| c.edges.clone()).collect();
        let before = sets.len();
        sets.sort();
        sets.dedup();
        assert_eq!(before, sets.len());
    }

    #[test]
    fn randomized_graphs_match_naive() {
        for seed in 0..6 {
            let g = generator::uniform_random(14, 60, 12, seed);
            for k in 2..=3 {
                let mut sink = CollectingSink::default();
                enumerate_from_graph(&g, k, g.span(), &mut sink);
                let got = sink.into_sorted();
                let expected = naive_results(&g, k, g.span());
                assert_eq!(got, expected, "seed={seed} k={k}");
            }
        }
    }

    #[test]
    fn counting_matches_collecting() {
        let g = generator::uniform_random(20, 120, 15, 42);
        let mut counting = CountingSink::default();
        let stats = enumerate_from_graph(&g, 2, g.span(), &mut counting);
        let mut collecting = CollectingSink::default();
        enumerate_from_graph(&g, 2, g.span(), &mut collecting);
        assert_eq!(counting.num_cores as usize, collecting.cores.len());
        assert_eq!(stats.num_cores, counting.num_cores);
        assert_eq!(stats.total_edges, counting.total_edges);
        assert!(stats.peak_memory_bytes > 0);
    }

    #[test]
    fn empty_when_no_core_exists() {
        let g = TemporalGraphBuilder::new()
            .with_edges([(0u64, 1u64, 1i64), (1, 2, 2), (2, 3, 3)])
            .build()
            .unwrap();
        let mut sink = CollectingSink::default();
        let stats = enumerate_from_graph(&g, 2, g.span(), &mut sink);
        assert_eq!(stats.num_cores, 0);
        assert!(sink.cores.is_empty());
    }
}
