//! Poison-recovering lock helpers shared by every lock site in the crate.
//!
//! The serving stack isolates panics (a panicking sink or task never kills
//! its worker; see [`crate::exec`]), which means a thread *can* unwind while
//! holding one of the internal mutexes — the skyline caches, the scheduler
//! state, the service statistics.  A bare `.lock().unwrap()` at any of those
//! sites would convert that one contained panic into a permanently wedged
//! lock: every later caller — including innocent reads like
//! [`crate::QueryEngine::cache_stats`] — would panic on the
//! [`PoisonError`].
//!
//! All of the crate's guarded state is either (a) rebuilt-on-demand cache
//! data whose worst post-panic failure mode is a redundant rebuild, or (b)
//! monotonic counters whose worst failure mode is one lost increment.  Both
//! are strictly better outcomes than a poisoned-forever lock, so the policy
//! — machine-enforced by the `poison-safe-locks` rule of `tkc-lint` — is:
//! library code never unwraps a lock result; it recovers the guard with the
//! helpers below.
//!
//! ```
//! use std::sync::Mutex;
//!
//! let cache = Mutex::new(vec![1, 2, 3]);
//! let guard = tkcore::sync::lock(&cache);
//! assert_eq!(guard.len(), 3);
//! ```

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Locks `mutex`, recovering the guard if a previous holder panicked.
///
/// This is the crate-wide replacement for `.lock().unwrap()`: a panic that
/// unwound through a critical section must not wedge every later caller
/// (the data behind the crate's locks is cache/counter state that stays
/// usable after an unwind; see the [module docs](self)).
pub fn lock<'a, T>(mutex: &'a Mutex<T>) -> MutexGuard<'a, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Blocks on `condvar` until notified, recovering the reacquired guard if
/// another holder panicked while the caller slept.
///
/// Companion to [`lock`] for the crate's wait loops (pool scheduling,
/// service drain): condition re-checks live in the caller's loop, exactly
/// as with `Condvar::wait`.
pub fn wait<'a, T>(condvar: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    condvar.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;
    use std::time::Duration;

    /// Poisons `mutex` by panicking while its guard is held.
    fn poison<T>(mutex: &Mutex<T>) {
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _guard = mutex.lock().expect("not poisoned yet");
            panic!("poison the lock");
        }));
        assert!(result.is_err());
        assert!(mutex.is_poisoned());
    }

    #[test]
    fn lock_recovers_a_poisoned_mutex() {
        let mutex = Mutex::new(41);
        poison(&mutex);
        *lock(&mutex) += 1;
        assert_eq!(*lock(&mutex), 42, "guarded data stays usable");
    }

    #[test]
    fn wait_recovers_when_a_notifier_panicked_with_the_lock() {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let waiter = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                let (mutex, condvar) = &*shared;
                let mut ready = lock(mutex);
                while !*ready {
                    ready = wait(condvar, ready);
                }
            })
        };
        // The notifier panics while holding the lock *after* setting the
        // flag: the waiter must reacquire the poisoned guard and exit.
        let (mutex, condvar) = &*shared;
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut ready = mutex.lock().expect("not poisoned yet");
            *ready = true;
            condvar.notify_all();
            // Give the waiter a chance to block on the reacquisition.
            std::thread::sleep(Duration::from_millis(10));
            panic!("poison while the waiter sleeps");
        }));
        assert!(result.is_err());
        waiter.join().expect("waiter recovered the poisoned guard");
    }
}
