//! The running example of the paper (Figure 1, Tables I and II, Figure 2).
//!
//! This module builds the 9-vertex / 14-edge temporal graph `G` of Figure 1
//! and exposes the expected vertex core time index, edge core window
//! skylines and query results for `k = 2`, which the golden tests (and the
//! quickstart example) check against the actual implementations.
//!
//! Note: the paper's Table I lists the last entry of `v3` as `[4, ∞]`; the
//! graph of Figure 1 actually yields core time 7 for start times 4–6, which
//! is also what the paper's own Table II implies (edge `(v1, v3, 6)` has the
//! minimal core window `[6, 7]`).  The constants below encode the
//! self-consistent values.

use temporal_graph::{
    TemporalGraph, TemporalGraphBuilder, TimeWindow, Timestamp, VertexId, T_INFINITY,
};

/// The query parameter `k` used throughout the running example.
pub const K: usize = 2;

/// Builds the temporal graph `G` of Figure 1.  Vertex labels are `1..=9`
/// (matching `v1..v9`); timestamps are `1..=7`.
pub fn graph() -> TemporalGraph {
    TemporalGraphBuilder::new()
        .with_edges([
            (2u64, 9u64, 1i64),
            (1, 4, 2),
            (2, 3, 2),
            (1, 2, 3),
            (2, 4, 3),
            (3, 9, 4),
            (4, 8, 4),
            (1, 6, 5),
            (1, 7, 5),
            (2, 8, 5),
            (6, 7, 5),
            (1, 3, 6),
            (3, 5, 6),
            (1, 5, 7),
        ])
        .build()
        // tkc-lint: allow(no-panic-api) — the example graph is fixed, known-good data from the paper
        .expect("the paper example graph is valid")
}

/// The full time span `[1, 7]` of the example graph.
pub fn full_range() -> TimeWindow {
    TimeWindow::new(1, 7)
}

/// The query range `[1, 4]` used in Example 1 / Figure 2.
pub fn example_query_range() -> TimeWindow {
    TimeWindow::new(1, 4)
}

/// Dense vertex id of the vertex labelled `v<label>` in Figure 1.
pub fn vertex(graph: &TemporalGraph, label: u64) -> VertexId {
    graph
        .labels()
        .iter()
        .position(|&l| l == label)
        // tkc-lint: allow(no-panic-api) — callers pass labels present in the fixed example graph
        .expect("label exists in the example graph") as VertexId
}

/// Expected vertex core time index entries for `k = 2` over `[1, 7]`
/// (corrected Table I), keyed by vertex label.
pub fn expected_vct() -> Vec<(u64, Vec<(Timestamp, Timestamp)>)> {
    vec![
        (1, vec![(1, 3), (3, 5), (6, 7), (7, T_INFINITY)]),
        (2, vec![(1, 3), (3, 5), (4, T_INFINITY)]),
        (3, vec![(1, 4), (2, 6), (3, 7), (7, T_INFINITY)]),
        (4, vec![(1, 3), (3, 5), (4, T_INFINITY)]),
        (5, vec![(1, 7), (7, T_INFINITY)]),
        (6, vec![(1, 5), (6, T_INFINITY)]),
        (7, vec![(1, 5), (6, T_INFINITY)]),
        (8, vec![(1, 5), (4, T_INFINITY)]),
        (9, vec![(1, 4), (2, T_INFINITY)]),
    ]
}

/// Expected edge core window skylines for `k = 2` over `[1, 7]` (Table II),
/// keyed by the edge triple `(u, v, t)` in vertex labels.
pub fn expected_ecs() -> Vec<((u64, u64, Timestamp), Vec<TimeWindow>)> {
    vec![
        ((2, 9, 1), vec![TimeWindow::new(1, 4)]),
        ((1, 4, 2), vec![TimeWindow::new(2, 3)]),
        (
            (2, 3, 2),
            vec![TimeWindow::new(1, 4), TimeWindow::new(2, 6)],
        ),
        (
            (1, 2, 3),
            vec![TimeWindow::new(2, 3), TimeWindow::new(3, 5)],
        ),
        (
            (2, 4, 3),
            vec![TimeWindow::new(2, 3), TimeWindow::new(3, 5)],
        ),
        ((3, 9, 4), vec![TimeWindow::new(1, 4)]),
        ((4, 8, 4), vec![TimeWindow::new(3, 5)]),
        ((1, 6, 5), vec![TimeWindow::new(5, 5)]),
        ((1, 7, 5), vec![TimeWindow::new(5, 5)]),
        ((2, 8, 5), vec![TimeWindow::new(3, 5)]),
        ((6, 7, 5), vec![TimeWindow::new(5, 5)]),
        (
            (1, 3, 6),
            vec![TimeWindow::new(2, 6), TimeWindow::new(6, 7)],
        ),
        ((3, 5, 6), vec![TimeWindow::new(6, 7)]),
        ((1, 5, 7), vec![TimeWindow::new(6, 7)]),
    ]
}

/// A temporal k-core of the running example, given as its TTI plus the edge
/// triples `(u, v, t)` in vertex labels.
pub type LabeledCore = (TimeWindow, Vec<(u64, u64, Timestamp)>);

/// The two temporal 2-cores of the query range `[1, 4]` (Figure 2), given as
/// `(TTI, edge triples in vertex labels)`.
pub fn expected_results_for_example_query() -> Vec<LabeledCore> {
    vec![
        (
            TimeWindow::new(1, 4),
            vec![
                (2, 9, 1),
                (1, 4, 2),
                (2, 3, 2),
                (1, 2, 3),
                (2, 4, 3),
                (3, 9, 4),
            ],
        ),
        (TimeWindow::new(2, 3), vec![(1, 4, 2), (1, 2, 3), (2, 4, 3)]),
    ]
}

/// Finds the edge id of the temporal edge `(u, v, t)` given in vertex labels.
pub fn edge_id(graph: &TemporalGraph, u: u64, v: u64, t: Timestamp) -> temporal_graph::EdgeId {
    let (a, b) = (vertex(graph, u), vertex(graph, v));
    let (a, b) = if a < b { (a, b) } else { (b, a) };
    graph
        .edges()
        .iter()
        .position(|e| e.u == a && e.v == b && e.t == t)
        // tkc-lint: allow(no-panic-api) — callers pass edges present in the fixed example graph
        .expect("edge exists in the example graph") as temporal_graph::EdgeId
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecs::EdgeCoreSkyline;
    use crate::enum_base::enumerate_base_from_graph;
    use crate::enumerate::enumerate_from_graph;
    use crate::naive::naive_results;
    use crate::otcd::run_otcd;
    use crate::sink::CollectingSink;
    use crate::vct::VertexCoreTimeIndex;

    #[test]
    fn example_graph_matches_figure_1() {
        let g = graph();
        assert_eq!(g.num_vertices(), 9);
        assert_eq!(g.num_edges(), 14);
        assert_eq!(g.tmax(), 7);
    }

    #[test]
    fn vct_matches_corrected_table_1() {
        let g = graph();
        let vct = VertexCoreTimeIndex::build(&g, K, full_range());
        for (label, expected) in expected_vct() {
            let u = vertex(&g, label);
            assert_eq!(vct.entries(u), expected.as_slice(), "vertex v{label}");
        }
        assert_eq!(
            vct.size(),
            expected_vct().iter().map(|(_, e)| e.len()).sum::<usize>()
        );
    }

    #[test]
    fn example_2_core_times_of_v1() {
        // Example 2 of the paper: CT_1(v1) = 3 and CT_3(v1) = 5.
        let g = graph();
        let vct = VertexCoreTimeIndex::build(&g, K, full_range());
        let v1 = vertex(&g, 1);
        assert_eq!(vct.core_time(v1, 1), 3);
        assert_eq!(vct.core_time(v1, 3), 5);
    }

    #[test]
    fn ecs_matches_table_2() {
        let g = graph();
        let ecs = EdgeCoreSkyline::build(&g, K, full_range());
        for ((u, v, t), expected) in expected_ecs() {
            let id = edge_id(&g, u, v, t);
            assert_eq!(
                ecs.windows(id),
                expected.as_slice(),
                "edge (v{u}, v{v}, {t})"
            );
        }
        assert_eq!(
            ecs.total_windows(),
            expected_ecs().iter().map(|(_, w)| w.len()).sum::<usize>()
        );
    }

    #[test]
    fn figure_2_results_for_query_1_4() {
        let g = graph();
        let expected: Vec<crate::TemporalKCore> = expected_results_for_example_query()
            .into_iter()
            .map(|(tti, edges)| {
                crate::TemporalKCore::new(
                    tti,
                    edges
                        .into_iter()
                        .map(|(u, v, t)| edge_id(&g, u, v, t))
                        .collect(),
                )
            })
            .collect();
        let mut expected = expected;
        expected.sort_by(|a, b| a.tti.cmp(&b.tti).then_with(|| a.edges.cmp(&b.edges)));

        for name in ["enum", "enum_base", "otcd", "naive"] {
            let mut sink = CollectingSink::default();
            match name {
                "enum" => {
                    enumerate_from_graph(&g, K, example_query_range(), &mut sink);
                }
                "enum_base" => {
                    enumerate_base_from_graph(&g, K, example_query_range(), &mut sink);
                }
                "otcd" => {
                    run_otcd(&g, K, example_query_range(), &mut sink);
                }
                _ => {
                    sink.cores = naive_results(&g, K, example_query_range());
                }
            }
            let got = sink.into_sorted();
            assert_eq!(got, expected, "algorithm {name}");
        }
    }

    #[test]
    fn all_algorithms_agree_on_the_full_range() {
        let g = graph();
        let expected = naive_results(&g, K, full_range());
        assert!(!expected.is_empty());

        let mut a = CollectingSink::default();
        enumerate_from_graph(&g, K, full_range(), &mut a);
        assert_eq!(a.into_sorted(), expected);

        let mut b = CollectingSink::default();
        enumerate_base_from_graph(&g, K, full_range(), &mut b);
        assert_eq!(b.into_sorted(), expected);

        let mut c = CollectingSink::default();
        run_otcd(&g, K, full_range(), &mut c);
        assert_eq!(c.into_sorted(), expected);
    }
}
