//! A std-only TCP front end over [`CoreService`]: [`TkServer`].
//!
//! The server speaks the line-delimited JSON protocol of [`crate::wire`]
//! (one request per line, one reply line per request, in order) and adds
//! the network-side half of the serving contract:
//!
//! * **deadline-aware admission** — each query line may carry
//!   `"deadline_ms"` and a `"lane"`; both are handed to
//!   [`CoreService::submit_opts`], so expired requests are refused at
//!   admission, queued requests that outlive their deadline are shed with
//!   [`TkError::DeadlineExceeded`], and interactive traffic dequeues ahead
//!   of batch traffic.  A shed or refused request is an **error reply**,
//!   never a closed connection;
//! * **bounded concurrency** — connections are handled by a dedicated
//!   [`ExecPool`] of [`ServerConfig::connection_workers`] tasks, disjoint
//!   from the service's worker pool.  A connection task blocks on its
//!   ticket while the service pool computes, so at most
//!   `connection_workers` connections are served concurrently and the
//!   pending ones queue in the listener backlog;
//! * **graceful drain** — a `{"op": "shutdown"}` line (or
//!   [`TkServer::stop`]) makes the acceptor stop taking connections;
//!   [`TkServer::serve`] then waits for every in-flight connection task to
//!   finish before returning, and dropping the service afterwards drains
//!   the request queue.  Idle connections notice the drain within
//!   [`ServerConfig::poll_interval`] and close.
//!
//! The accept loop runs on the caller's thread (it is the only blocking
//! loop outside the pool), so `TkServer` spawns no raw threads.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::error::TkError;
use crate::exec::ExecPool;
use crate::service::{CoreService, SubmitOptions};
use crate::wire::{self, WireConfig, WireRequest};

/// Tuning knobs of a [`TkServer`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Connection-handler tasks (and therefore concurrently served
    /// connections); `0` is treated as `1`.
    pub connection_workers: usize,
    /// How often an idle connection wakes to check for a server drain.
    pub poll_interval: Duration,
    /// Wire-level options (reply truncation).
    pub wire: WireConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            connection_workers: 4,
            poll_interval: Duration::from_millis(200),
            wire: WireConfig::default(),
        }
    }
}

/// What a completed [`TkServer::serve`] call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Connections accepted and fully handled.
    pub connections: u64,
    /// Request lines handled across all connections (including malformed
    /// ones, which replied `BadRequest`).
    pub requests: u64,
}

/// Connection bookkeeping shared between the acceptor and the handlers.
struct ServerShared {
    service: Arc<CoreService>,
    config: ServerConfig,
    local_addr: SocketAddr,
    /// Set by a `shutdown` op or [`TkServer::stop`]; the acceptor checks it
    /// after every accept and handlers after every idle poll.
    draining: AtomicBool,
    /// In-flight connection tasks; `serve` waits for zero under `idle`.
    active: Mutex<usize>,
    idle: Condvar,
    requests: AtomicU64,
}

impl ServerShared {
    fn begin_connection(&self) {
        *crate::sync::lock(&self.active) += 1;
    }

    fn end_connection(&self) {
        let mut active = crate::sync::lock(&self.active);
        *active -= 1;
        if *active == 0 {
            self.idle.notify_all();
        }
    }
}

/// A TCP front end serving one [`CoreService`] on one listener.
///
/// Bind with [`TkServer::bind`], then block in [`TkServer::serve`]; see the
/// [module docs](self) for the protocol and the drain contract.
pub struct TkServer {
    listener: TcpListener,
    pool: Arc<ExecPool>,
    shared: Arc<ServerShared>,
}

impl TkServer {
    /// Binds a listener on `addr` (use port `0` for an ephemeral port, then
    /// read [`TkServer::local_addr`]) serving `service`.
    ///
    /// # Errors
    /// [`TkError::Io`] when the address cannot be bound.
    pub fn bind(
        service: Arc<CoreService>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> Result<Self, TkError> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            service,
            config,
            local_addr,
            draining: AtomicBool::new(false),
            active: Mutex::new(0),
            idle: Condvar::new(),
            requests: AtomicU64::new(0),
        });
        Ok(Self {
            listener,
            pool: ExecPool::new(config.connection_workers.max(1)),
            shared,
        })
    }

    /// The bound address (resolves port `0` to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Asks a server blocked in [`TkServer::serve`] — typically on another
    /// thread — to drain: stop accepting, finish in-flight connections,
    /// return.  Equivalent to a client sending `{"op": "shutdown"}`.
    pub fn stop(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        wake_acceptor(&self.shared);
    }

    /// Accepts and serves connections until a drain is requested, then
    /// waits for every in-flight connection to finish and returns.
    ///
    /// # Errors
    /// [`TkError::Io`] when the listener itself fails (individual
    /// connection errors only drop that connection).
    pub fn serve(&self) -> Result<ServeSummary, TkError> {
        let mut connections = 0u64;
        loop {
            if self.shared.draining.load(Ordering::SeqCst) {
                break;
            }
            let (stream, _peer) = match self.listener.accept() {
                Ok(accepted) => accepted,
                Err(_) if self.shared.draining.load(Ordering::SeqCst) => break,
                Err(e) => return Err(e.into()),
            };
            if self.shared.draining.load(Ordering::SeqCst) {
                // The drain wake-up connection (or a client racing it).
                break;
            }
            connections += 1;
            let shared = Arc::clone(&self.shared);
            shared.begin_connection();
            self.pool.spawn(move |_worker| {
                handle_connection(&shared, stream);
                shared.end_connection();
            });
        }
        let mut active = crate::sync::lock(&self.shared.active);
        while *active > 0 {
            active = crate::sync::wait(&self.shared.idle, active);
        }
        drop(active);
        Ok(ServeSummary {
            connections,
            requests: self.shared.requests.load(Ordering::Relaxed),
        })
    }
}

/// Unblocks an acceptor sitting in `accept()` by connecting to it; the
/// acceptor re-checks the drain flag on wake-up.
fn wake_acceptor(shared: &ServerShared) {
    let _ = TcpStream::connect(shared.local_addr);
}

/// Serves one connection: read a line, handle it, write one reply line,
/// repeat until EOF, a write failure, or a server drain.
fn handle_connection(shared: &ServerShared, stream: TcpStream) {
    // A finite read timeout turns an idle blocked read into a periodic
    // drain check, so lingering idle clients cannot stall a graceful drain
    // forever.
    let _ = stream.set_read_timeout(Some(shared.config.poll_interval));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = write_half;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        // Retry loop for idle-poll timeouts; `read_line` keeps partially
        // read bytes in `line`, so retrying never drops data.
        let eof = loop {
            match reader.read_line(&mut line) {
                Ok(0) => break true,
                // `read_line` returns bytes without a trailing newline only
                // at EOF — the stream was cut mid-line.
                Ok(_) if line.ends_with('\n') => break false,
                Ok(_) => break true,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if shared.draining.load(Ordering::SeqCst) {
                        return;
                    }
                }
                Err(_) => return,
            }
        };
        if eof {
            if !line.trim().is_empty() {
                // The stream was cut mid-line; tell the client rather than
                // silently dropping the fragment.
                let reply =
                    wire::render_error_code(None, "BadRequest", "truncated final request line");
                let _ = writeln!(writer, "{reply}");
            }
            return;
        }
        if line.trim().is_empty() {
            continue;
        }
        shared.requests.fetch_add(1, Ordering::Relaxed);
        let reply = handle_line(shared, line.trim());
        if writeln!(writer, "{reply}")
            .and_then(|()| writer.flush())
            .is_err()
        {
            return;
        }
        if shared.draining.load(Ordering::SeqCst) {
            // This connection asked for the shutdown (or raced one); close
            // so the drain can complete.
            return;
        }
    }
}

/// Handles one request line and renders its reply line.
fn handle_line(shared: &ServerShared, line: &str) -> String {
    match wire::parse_request(line) {
        Err(defect) => wire::render_error_code(None, "BadRequest", &defect),
        Ok(WireRequest::Ping) => wire::render_ack("ping"),
        Ok(WireRequest::Stats) => wire::render_stats(&shared.service.stats()),
        Ok(WireRequest::Shutdown) => {
            shared.draining.store(true, Ordering::SeqCst);
            wake_acceptor(shared);
            wire::render_ack("shutdown")
        }
        Ok(WireRequest::Query(query)) => {
            let opts = SubmitOptions {
                algorithm: query.algorithm,
                lane: query.lane,
                deadline: query.deadline,
            };
            match shared.service.submit_opts(query.request, opts) {
                Err(err) => wire::render_error(query.client_id, &err),
                // tkc-lint: allow(no-blocking-in-worker) — connection tasks run on the server's dedicated pool and wait on tickets executed by the service's disjoint worker pool; no service job ever runs on the connection pool, so this wait cannot starve the workers it waits on
                Ok(ticket) => match ticket.wait() {
                    Ok(reply) => wire::render_reply(query.client_id, &reply, &shared.config.wire),
                    Err(err) => wire::render_error(query.client_id, &err),
                },
            }
        }
    }
}
