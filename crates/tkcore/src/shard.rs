//! Time-interval sharding: [`ShardPlan`], [`ShardedEngine`] and
//! [`ShardedBackend`].
//!
//! The span-wide [`QueryEngine`](crate::QueryEngine) keeps **one skyline per
//! `k` covering the whole timeline** — the memory and cold-build bottleneck
//! on big graphs.  This module partitions the timeline into contiguous
//! time-interval shards and keeps **one skyline per `(shard, k)`** instead,
//! each covering only its shard's interval:
//!
//! * per-shard skylines are strictly smaller than the span-wide one (they
//!   drop every minimal core window crossing a shard cut), so the resident
//!   cache and the peak cold-build footprint are bounded by the largest
//!   shard, not the span;
//! * cold builds are per shard, so a query touching 2 of 40 shards builds
//!   2 small indexes, never the span-wide one;
//! * shard skylines build independently, so batch workers warm different
//!   shards in parallel.
//!
//! # Exactness at shard boundaries
//!
//! Every distinct temporal k-core `C` of a query window `W` equals the
//! k-core of its own TTI (`C = core(TTI(C))`, `TTI(C) ⊆ W`), so the cores of
//! `W` partition by where their TTI falls relative to the shard cuts:
//!
//! 1. **Intra-shard cores** (`TTI ⊆ I_s ∩ W` for some shard interval
//!    `I_s`): these are exactly the cores of the range `I_s ∩ W`, answered
//!    by restricting shard `s`'s cached skyline — the same
//!    restriction-is-exact argument as the span-wide engine
//!    ([`EdgeCoreSkyline::restrict`]).
//! 2. **Boundary-spanning cores** (TTI contains a cut, i.e. both `c` and
//!    `c + 1` for some shard boundary after timestamp `c`): these cannot be
//!    derived from per-shard skylines (their minimal windows were dropped at
//!    build time) and are enumerated from a skyline of `W` itself through a
//!    filter that forwards only cores whose TTI crosses a cut.
//!
//! The two sets are disjoint (a TTI either fits inside one shard or crosses
//! a cut) and jointly exhaustive, and within one graph a TTI identifies its
//! core uniquely — so the stitched answer equals the span-wide answer
//! exactly.  The `shard_equivalence` and `boundary_index` test harnesses
//! assert this for random graphs, random plans and all four algorithms.
//!
//! # The boundary-stitch index
//!
//! The skyline of `W` needed by step 2 used to be rebuilt transiently on
//! *every* boundary-spanning query — a full CoreTime sweep per query.  The
//! engine now assembles it from cached pieces instead:
//!
//! * minimality of a core window is a property of the graph alone, so the
//!   skyline of `W` splits into the **intra-shard windows** (`w ⊆ W ∩ I_s`
//!   for some shard `s` — exactly the restricted per-shard skylines already
//!   fetched for step 1) and the **cut-crossing windows**;
//! * the cut-crossing windows come from a small LRU-cached **stitch entry**
//!   per `(shard range, k)` — for the common case of a window spanning one
//!   cut, per adjacent shard pair `(i, i + 1, k)`.  An entry is built once,
//!   on the first spanning query of its shard range (one merged-window
//!   sweep, filtered down to the cut-crossing windows only), and reused by
//!   every later spanning query of that range;
//! * a per-edge merge of the two sorted classes reproduces the skyline of
//!   `W` in `O(|E_W| + |ECS_W|)` — restriction cost, not sweep cost.
//!
//! Warm boundary-spanning queries therefore stop paying the per-query
//! sweep.  The stitch cache is bounded by
//! [`EngineConfig::boundary_cache_entries`] (LRU; `0` restores the
//! transient rebuild) and its counters are reported in
//! [`CacheStats::boundary`].
//!
//! # Live ingestion
//!
//! The last shard of the plan doubles as the **live tail**:
//! [`ShardedEngine::absorb`] appends time-ordered events through an
//! [`AppendableGraph`] and publishes each batch as a fresh immutable
//! snapshot (an epoch-tagged [`Arc`]-swap, the only point where ingestion
//! and queries serialize).  Because appends only land past the seal
//! watermark, closed shards' edge slices — and every `EdgeId` inside
//! them — never change, so **closed-shard skylines and stitch entries stay
//! resident and valid across every append**; an absorb purges only the
//! tail-shard skylines and the tail-touching stitch entries (counted in
//! [`CacheStats::tail_invalidations`] / `boundary_invalidations`).  A
//! [`crate::SealPolicy`] (or [`ShardedEngine::seal_tail`]) rolls the tail
//! into a closed shard, making its indexes permanent; the next advancing
//! batch opens a fresh tail.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::time::{Duration, Instant};

use crate::backend::{validate_query, CoreBackend};
use crate::ecs::{EdgeCoreSkyline, SkylineScratch};
use crate::engine::{
    aggregate_batch, batch_executor, fan_out_batch, validate_batch, BatchStats, BoundaryCacheStats,
    CacheStats, EngineConfig, ShardCacheStats, WarmStats,
};
use crate::error::TkError;
use crate::exec::{run_batch_inner, ExecPool};
use crate::ingest::{AbsorbStats, IngestEvent};
use crate::query::{Algorithm, QueryStats, TimeRangeKCoreQuery};
use crate::request::QueryRequest;
use crate::sink::{CountingSink, ResultSink};
use crate::sync;
use temporal_graph::{AppendableGraph, EdgeId, TemporalGraph, TimeWindow, Timestamp};

/// How to cut the graph's timeline `[1, tmax]` into contiguous shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardPlan {
    /// One shard covering the whole span (the unsharded layout; useful as a
    /// degenerate baseline in equivalence tests).
    Span,
    /// A fixed number of shards of near-equal timeline length.  Counts
    /// exceeding `tmax` are clamped to one shard per timestamp.
    FixedCount(usize),
    /// Cut so every shard holds roughly this many edge occurrences (the last
    /// shard takes the remainder).  Adapts shard boundaries to bursty
    /// timelines where equal-length intervals would be wildly unbalanced.
    TargetEdgesPerShard(usize),
    /// Explicit cut points: a boundary is placed **after** each listed
    /// timestamp, which must be strictly increasing and inside `[1, tmax)`.
    ExplicitCuts(Vec<Timestamp>),
}

impl ShardPlan {
    /// Resolves the plan against a graph into contiguous shard intervals
    /// covering `[1, tmax]` exactly.
    ///
    /// # Errors
    /// [`TkError::InvalidShardPlan`] for a zero shard count, a zero edge
    /// target, or cut points that are out of range or not strictly
    /// increasing.
    pub fn resolve(&self, graph: &TemporalGraph) -> Result<Vec<TimeWindow>, TkError> {
        let tmax = graph.tmax().max(1);
        let shards = match self {
            ShardPlan::Span => vec![TimeWindow::new(1, tmax)],
            ShardPlan::FixedCount(n) => {
                if *n == 0 {
                    return Err(TkError::InvalidShardPlan {
                        detail: "shard count must be at least 1".into(),
                    });
                }
                let n = (*n as u64).min(u64::from(tmax));
                (0..n)
                    .map(|i| {
                        let start = 1 + (i * u64::from(tmax) / n) as Timestamp;
                        let end = ((i + 1) * u64::from(tmax) / n) as Timestamp;
                        TimeWindow::new(start, end)
                    })
                    .collect()
            }
            ShardPlan::TargetEdgesPerShard(target) => {
                if *target == 0 {
                    return Err(TkError::InvalidShardPlan {
                        detail: "edges-per-shard target must be at least 1".into(),
                    });
                }
                let mut shards = Vec::new();
                let mut start = 1;
                let mut accumulated = 0usize;
                for t in 1..=tmax {
                    accumulated += graph.edges_at(t).len();
                    if accumulated >= *target && t < tmax {
                        shards.push(TimeWindow::new(start, t));
                        start = t + 1;
                        accumulated = 0;
                    }
                }
                shards.push(TimeWindow::new(start, tmax));
                shards
            }
            ShardPlan::ExplicitCuts(cuts) => {
                let mut shards = Vec::new();
                let mut start = 1;
                for &cut in cuts {
                    if cut < start || cut >= tmax {
                        return Err(TkError::InvalidShardPlan {
                            detail: format!(
                                "cut after {cut} is outside [{start}, {}] or not increasing",
                                tmax - 1
                            ),
                        });
                    }
                    shards.push(TimeWindow::new(start, cut));
                    start = cut + 1;
                }
                shards.push(TimeWindow::new(start, tmax));
                shards
            }
        };
        debug_assert_eq!(shards.first().map(|s| s.start()), Some(1));
        debug_assert_eq!(shards.last().map(|s| s.end()), Some(tmax));
        debug_assert!(shards.windows(2).all(|p| p[1].start() == p[0].end() + 1));
        Ok(shards)
    }
}

/// How long a cached skyline or stitch entry stays correct under live
/// ingestion.
///
/// Entries built over **closed** shards are [`Validity::Permanent`]: appends
/// only land past the seal watermark, so a closed shard's edge slice (and
/// every `EdgeId` inside it) never changes again.  Entries touching the live
/// tail are tagged with the [`LiveState::epoch`] they were built at and die
/// on the next absorb, which bumps the epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Validity {
    /// Built over closed shards only; valid for the engine's lifetime.
    Permanent,
    /// Built against the live tail at this epoch; stale once the epoch
    /// moves on.
    Epoch(u64),
}

impl Validity {
    fn is_current(self, epoch: u64) -> bool {
        match self {
            Validity::Permanent => true,
            Validity::Epoch(e) => e == epoch,
        }
    }
}

struct ShardCacheEntry {
    skyline: Arc<EdgeCoreSkyline>,
    last_used: u64,
    validity: Validity,
}

/// LRU cache of per-`(shard, k)` skylines with per-shard counters.
struct ShardCache {
    entries: HashMap<(usize, usize), ShardCacheEntry>,
    clock: u64,
    resident_bytes: usize,
    budget: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    tail_invalidations: u64,
    seals: u64,
    warm: WarmStats,
    per_shard: Vec<ShardCacheStats>,
}

impl ShardCache {
    fn new(budget: usize, num_shards: usize) -> Self {
        Self {
            entries: HashMap::new(),
            clock: 0,
            resident_bytes: 0,
            budget,
            hits: 0,
            misses: 0,
            evictions: 0,
            tail_invalidations: 0,
            seals: 0,
            warm: WarmStats::default(),
            per_shard: (0..num_shards)
                .map(|shard| ShardCacheStats {
                    shard,
                    ..ShardCacheStats::default()
                })
                .collect(),
        }
    }

    /// Grows the per-shard counter table when an absorb opens a new tail
    /// shard (shards are only ever appended, never reordered).
    fn ensure_shards(&mut self, num_shards: usize) {
        while self.per_shard.len() < num_shards {
            self.per_shard.push(ShardCacheStats {
                shard: self.per_shard.len(),
                ..ShardCacheStats::default()
            });
        }
    }

    fn drop_entry(&mut self, key: (usize, usize)) -> bool {
        let Some(removed) = self.entries.remove(&key) else {
            return false;
        };
        let bytes = removed.skyline.memory_bytes();
        self.resident_bytes -= bytes;
        self.per_shard[key.0].resident_bytes -= bytes;
        self.per_shard[key.0].resident_indexes -= 1;
        true
    }

    /// A validity-aware hit requires the entry to be `Permanent` or built at
    /// the caller's `epoch`; a stale tail entry that escaped the absorb-time
    /// purge (an adopt racing the absorb) is dropped here and counted as
    /// both a miss and a tail invalidation.
    fn get(&mut self, shard: usize, k: usize, epoch: u64) -> Option<Arc<EdgeCoreSkyline>> {
        self.clock += 1;
        let clock = self.clock;
        match self.entries.get_mut(&(shard, k)) {
            Some(entry) if entry.validity.is_current(epoch) => {
                entry.last_used = clock;
                self.hits += 1;
                self.per_shard[shard].hits += 1;
                Some(Arc::clone(&entry.skyline))
            }
            Some(_) => {
                self.drop_entry((shard, k));
                self.tail_invalidations += 1;
                self.misses += 1;
                None
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Whether a currently valid entry is resident, without touching the
    /// hit/miss counters (the `warm` probe).
    fn is_resident(&self, shard: usize, k: usize, epoch: u64) -> bool {
        self.entries
            .get(&(shard, k))
            .is_some_and(|e| e.validity.is_current(epoch))
    }

    /// Inserts a freshly built shard skyline unless another thread won the
    /// race, then evicts LRU entries (never the key itself) down to the
    /// budget.  Counts a build only when the insert actually happened.
    fn adopt(
        &mut self,
        shard: usize,
        k: usize,
        built: Arc<EdgeCoreSkyline>,
        validity: Validity,
    ) -> Arc<EdgeCoreSkyline> {
        self.clock += 1;
        let clock = self.clock;
        let key = (shard, k);
        let skyline = match self.entries.get_mut(&key) {
            Some(existing) => {
                existing.last_used = clock;
                Arc::clone(&existing.skyline)
            }
            None => {
                let bytes = built.memory_bytes();
                self.resident_bytes += bytes;
                self.per_shard[shard].builds += 1;
                self.per_shard[shard].resident_bytes += bytes;
                self.per_shard[shard].resident_indexes += 1;
                self.entries.insert(
                    key,
                    ShardCacheEntry {
                        skyline: Arc::clone(&built),
                        last_used: clock,
                        validity,
                    },
                );
                built
            }
        };
        while self.resident_bytes > self.budget && self.entries.len() > 1 {
            let Some((&victim, _)) = self
                .entries
                .iter()
                .filter(|(&other, _)| other != key)
                .min_by_key(|(_, e)| e.last_used)
            else {
                break;
            };
            // tkc-lint: allow(no-panic-api) — the victim key was just yielded by iterating `entries`
            let removed = self.entries.remove(&victim).expect("victim present");
            let bytes = removed.skyline.memory_bytes();
            self.resident_bytes -= bytes;
            self.per_shard[victim.0].resident_bytes -= bytes;
            self.per_shard[victim.0].resident_indexes -= 1;
            self.evictions += 1;
        }
        skyline
    }

    /// Drops every non-permanent entry (the live tail's skylines) after an
    /// absorb changed the tail, counting them into
    /// [`CacheStats::tail_invalidations`].  Closed-shard skylines are
    /// untouched — they stay resident and valid across every append.
    // tkc-lint: hot
    fn invalidate_tail(&mut self) -> u64 {
        let mut dropped = 0u64;
        let mut freed_total = 0usize;
        let per_shard = &mut self.per_shard;
        self.entries.retain(|key, entry| {
            if entry.validity == Validity::Permanent {
                return true;
            }
            let bytes = entry.skyline.memory_bytes();
            freed_total += bytes;
            per_shard[key.0].resident_bytes -= bytes;
            per_shard[key.0].resident_indexes -= 1;
            dropped += 1;
            false
        });
        self.resident_bytes -= freed_total;
        self.tail_invalidations += dropped;
        dropped
    }

    /// Seals shard `tail` without a timeline change: entries built for it at
    /// `epoch` cover exactly the sealed window and are upgraded to
    /// [`Validity::Permanent`]; stale-epoch leftovers are dropped.
    fn seal_shard(&mut self, tail: usize, epoch: u64) {
        let mut freed_total = 0usize;
        let per_shard = &mut self.per_shard;
        self.entries.retain(|key, entry| {
            if entry.validity.is_current(epoch) {
                if entry.validity != Validity::Permanent {
                    debug_assert_eq!(key.0, tail, "only the tail carries epoch validity");
                    entry.validity = Validity::Permanent;
                }
                return true;
            }
            let bytes = entry.skyline.memory_bytes();
            freed_total += bytes;
            per_shard[key.0].resident_bytes -= bytes;
            per_shard[key.0].resident_indexes -= 1;
            false
        });
        self.resident_bytes -= freed_total;
        self.seals += 1;
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            resident_bytes: self.resident_bytes,
            resident_indexes: self.entries.len(),
            tail_invalidations: self.tail_invalidations,
            boundary_invalidations: 0,
            seals: self.seals,
            warm: self.warm,
            per_shard: self.per_shard.clone(),
            boundary: BoundaryCacheStats::default(),
        }
    }
}

struct BoundaryEntry {
    /// Cut-crossing minimal core windows of the merged window of the
    /// entry's shard range (a filtered, **incomplete** skyline — only
    /// usable through [`compose_boundary_skyline`]).
    crossing: Arc<EdgeCoreSkyline>,
    last_used: u64,
    validity: Validity,
}

/// LRU cache of boundary-stitch entries, keyed by `(lo shard, hi shard, k)`.
struct BoundaryCache {
    entries: HashMap<(usize, usize, usize), BoundaryEntry>,
    /// Maximum resident entries; `0` disables the cache entirely.
    capacity: usize,
    clock: u64,
    builds: u64,
    hits: u64,
    evictions: u64,
    invalidations: u64,
    resident_bytes: usize,
}

impl BoundaryCache {
    fn new(capacity: usize) -> Self {
        Self {
            entries: HashMap::new(),
            capacity,
            clock: 0,
            builds: 0,
            hits: 0,
            evictions: 0,
            invalidations: 0,
            resident_bytes: 0,
        }
    }

    fn get(&mut self, lo: usize, hi: usize, k: usize, epoch: u64) -> Option<Arc<EdgeCoreSkyline>> {
        self.clock += 1;
        let clock = self.clock;
        let entry = self.entries.get_mut(&(lo, hi, k))?;
        if !entry.validity.is_current(epoch) {
            // A stale tail-touching entry that escaped the absorb purge.
            let removed = self.entries.remove(&(lo, hi, k))?;
            self.resident_bytes -= removed.crossing.memory_bytes();
            self.invalidations += 1;
            return None;
        }
        entry.last_used = clock;
        self.hits += 1;
        Some(Arc::clone(&entry.crossing))
    }

    /// Inserts a freshly built stitch entry unless another thread won the
    /// race, then evicts LRU entries (never the key itself) down to the
    /// entry budget.
    fn adopt(
        &mut self,
        lo: usize,
        hi: usize,
        k: usize,
        built: Arc<EdgeCoreSkyline>,
        validity: Validity,
    ) -> Arc<EdgeCoreSkyline> {
        self.clock += 1;
        let clock = self.clock;
        let key = (lo, hi, k);
        let crossing = match self.entries.get_mut(&key) {
            Some(existing) => {
                existing.last_used = clock;
                Arc::clone(&existing.crossing)
            }
            None => {
                self.builds += 1;
                self.resident_bytes += built.memory_bytes();
                self.entries.insert(
                    key,
                    BoundaryEntry {
                        crossing: Arc::clone(&built),
                        last_used: clock,
                        validity,
                    },
                );
                built
            }
        };
        while self.entries.len() > self.capacity.max(1) {
            let Some((&victim, _)) = self
                .entries
                .iter()
                .filter(|(&other, _)| other != key)
                .min_by_key(|(_, e)| e.last_used)
            else {
                break;
            };
            // tkc-lint: allow(no-panic-api) — the victim key was just yielded by iterating `entries`
            let removed = self.entries.remove(&victim).expect("victim present");
            self.resident_bytes -= removed.crossing.memory_bytes();
            self.evictions += 1;
        }
        crossing
    }

    /// Drops every non-permanent entry (stitch entries whose shard range
    /// touches the live tail) after an absorb changed the tail, counting
    /// them into [`CacheStats::boundary_invalidations`].
    // tkc-lint: hot
    fn invalidate_tail(&mut self) -> u64 {
        let mut dropped = 0u64;
        let mut freed_total = 0usize;
        self.entries.retain(|_, entry| {
            if entry.validity == Validity::Permanent {
                return true;
            }
            freed_total += entry.crossing.memory_bytes();
            dropped += 1;
            false
        });
        self.resident_bytes -= freed_total;
        self.invalidations += dropped;
        dropped
    }

    /// Seals the tail without a timeline change: current-epoch entries are
    /// upgraded to [`Validity::Permanent`], stale-epoch leftovers dropped.
    fn seal_range(&mut self, epoch: u64) {
        let mut freed_total = 0usize;
        self.entries.retain(|_, entry| {
            if entry.validity.is_current(epoch) {
                entry.validity = Validity::Permanent;
                return true;
            }
            freed_total += entry.crossing.memory_bytes();
            false
        });
        self.resident_bytes -= freed_total;
    }

    fn stats(&self) -> BoundaryCacheStats {
        BoundaryCacheStats {
            builds: self.builds,
            hits: self.hits,
            evictions: self.evictions,
            resident_bytes: self.resident_bytes,
            resident_entries: self.entries.len(),
        }
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.resident_bytes = 0;
    }
}

/// Forwards only cores whose TTI crosses at least one shard cut, counting
/// what it lets through (the stitching filter of the boundary pass).
struct BoundarySink<'a> {
    inner: &'a mut dyn ResultSink,
    /// Shard boundaries inside the query window: a cut after timestamp `c`
    /// is crossed by a TTI `[a, b]` iff `a <= c < b`.
    cuts: &'a [Timestamp],
    cores: u64,
    edges: u64,
}

impl ResultSink for BoundarySink<'_> {
    fn emit(&mut self, tti: TimeWindow, edges: &[EdgeId]) {
        if self.cuts.iter().any(|&c| tti.start() <= c && c < tti.end()) {
            self.cores += 1;
            self.edges += edges.len() as u64;
            self.inner.emit(tti, edges);
        }
    }
}

/// Reassembles the exact skyline of `window` from the restricted per-shard
/// skylines (`parts`, in timeline order, jointly covering `window`) and the
/// cached cut-crossing windows (`crossing`, built over a superset range).
///
/// Minimality of a core window is a property of the graph alone, so the
/// skyline of `window` is the disjoint union of the windows fitting inside
/// one shard's slice (found in `parts`) and the cut-crossing ones (a
/// contiguous containment slice of `crossing`, whose per-edge windows keep
/// both endpoints strictly increasing).  A per-edge two-way merge by start
/// time reproduces skyline order.  Cost: `O(|E_W| + |ECS_W|)` — the same as
/// [`EdgeCoreSkyline::restrict`], with no CoreTime sweep.  The merge is
/// emitted straight into CSR buffers taken from `scratch` (edges are walked
/// in increasing id order, so each edge's run lands contiguously at the
/// tail of the flat array), so a warm pool makes composition
/// allocation-free per query.
// tkc-lint: hot
fn compose_boundary_skyline(
    graph: &TemporalGraph,
    k: usize,
    window: TimeWindow,
    parts: &[EdgeCoreSkyline],
    crossing: &EdgeCoreSkyline,
    scratch: &mut SkylineScratch,
) -> EdgeCoreSkyline {
    let edge_range = graph.edge_ids_in(window);
    let first_edge = edge_range.start;
    let num_edges = (edge_range.end - edge_range.start) as usize;
    let (mut offsets, mut flat) = scratch.take();
    offsets.reserve(num_edges + 1);
    offsets.push(0);
    for id in edge_range {
        let cw = crossing.windows(id);
        let lo = cw.partition_point(|w| w.start() < window.start());
        let hi = cw.partition_point(|w| w.end() <= window.end());
        let cross = if lo < hi { &cw[lo..hi] } else { &[] };
        let mut cross_iter = cross.iter().copied().peekable();
        for part in parts {
            for &w in part.windows(id) {
                while let Some(&c) = cross_iter.peek() {
                    if c.start() < w.start() {
                        flat.push(c);
                        cross_iter.next();
                    } else {
                        break;
                    }
                }
                flat.push(w);
            }
        }
        flat.extend(cross_iter);
        offsets.push(flat.len() as u32);
    }
    EdgeCoreSkyline::from_parts(k, window, first_edge, offsets, flat)
}

/// A query engine over time-interval shards: per-`(shard, k)` skyline cache,
/// exact boundary stitching through a cached [`CacheStats::boundary`] index,
/// and the same batch surface as [`QueryEngine`](crate::QueryEngine).
///
/// See the [module documentation](self) for the sharding layout and the
/// exactness argument.
///
/// # Example
///
/// ```
/// use tkcore::{paper_example, ShardPlan, ShardedEngine, TimeRangeKCoreQuery, CountingSink};
/// use temporal_graph::TimeWindow;
///
/// let engine = ShardedEngine::new(paper_example::graph(), ShardPlan::FixedCount(4)).unwrap();
/// assert_eq!(engine.num_shards(), 4);
/// let mut sink = CountingSink::default();
/// let query = TimeRangeKCoreQuery::new(2, TimeWindow::new(1, 4)).unwrap();
/// let stats = engine.run(&query, &mut sink).unwrap();
/// assert_eq!(stats.num_cores, 2); // Figure 2 of the paper, stitched across shards
/// ```
pub struct ShardedEngine {
    inner: Arc<ShardInner>,
}

/// One published, immutable view of the live engine: a graph snapshot plus
/// the shard layout over it.  Queries clone the `Arc` once at entry and run
/// entirely against that view, so an [`ShardedEngine::absorb`] racing them
/// swaps in a new state without ever exposing a partial batch.
struct LiveState {
    /// Bumped by every absorb and seal; tags tail-touching cache entries.
    epoch: u64,
    graph: Arc<TemporalGraph>,
    /// Contiguous shard intervals covering `[1, graph.tmax()]`.
    shards: Vec<TimeWindow>,
    /// `shards[..sealed]` are closed (immutable forever); the rest — at most
    /// one shard — is the live tail that appends land in.
    sealed: usize,
}

impl LiveState {
    /// Indexes of the shards overlapping `window` (always non-empty for a
    /// validated, span-clamped window).
    fn overlapping(&self, window: TimeWindow) -> std::ops::Range<usize> {
        let lo = self.shards.partition_point(|s| s.end() < window.start());
        let hi = self.shards.partition_point(|s| s.start() <= window.end());
        lo..hi
    }

    /// Validity of a skyline covering exactly shard `shard` of this state.
    fn shard_validity(&self, shard: usize) -> Validity {
        if shard < self.sealed {
            Validity::Permanent
        } else {
            Validity::Epoch(self.epoch)
        }
    }

    /// Validity of a stitch entry over shard range `lo..=hi` of this state.
    fn range_validity(&self, hi: usize) -> Validity {
        if hi < self.sealed {
            Validity::Permanent
        } else {
            Validity::Epoch(self.epoch)
        }
    }
}

/// The write side of live ingestion: the appendable event buffer plus the
/// running size of the tail shard, guarded by one mutex so absorbs are
/// serialized with each other (queries never take this lock).
struct IngestState {
    appendable: AppendableGraph,
    /// Edge occurrences currently in the tail shard (seeds from the base
    /// graph's tail slice; reset on seal).
    tail_edges: usize,
}

/// The shared core of a [`ShardedEngine`], behind one `Arc` so batch tasks
/// handed to the persistent pool are `'static`.
///
/// Lock order (enforced by tkc-lint's global lock-order rule): `ingest` →
/// `live` → `cache` → `boundary`.  Queries take `live` alone (one `Arc`
/// clone) and then `cache`/`boundary`/`scratch` one at a time; only the
/// ingest path nests.
struct ShardInner {
    config: EngineConfig,
    live: Mutex<Arc<LiveState>>,
    ingest: Mutex<IngestState>,
    /// Every graph snapshot this engine has published, weakly.  Lets
    /// [`ShardedBackend::serves`] keep accepting a snapshot captured just
    /// before a racing absorb swapped in a newer one (pruned as readers
    /// drop their `Arc`s).
    lineage: Mutex<Vec<Weak<TemporalGraph>>>,
    cache: Mutex<ShardCache>,
    boundary: Mutex<BoundaryCache>,
    /// Recycled per-edge window tables for restriction / stitch composition
    /// (taken whole per query, handed back via `absorb`; never held across
    /// another lock).
    scratch: Mutex<SkylineScratch>,
    pool: OnceLock<Arc<ExecPool>>,
    /// Test-only fail point: while non-zero, each absorb decrements it and
    /// panics before touching any state (see
    /// [`ShardedEngine::fail_next_absorbs`]).
    absorb_failpoints: AtomicU64,
}

impl ShardedEngine {
    /// Creates a sharded engine with the default [`EngineConfig`].
    ///
    /// # Errors
    /// [`TkError::InvalidShardPlan`] when `plan` does not resolve against
    /// the graph (see [`ShardPlan::resolve`]).
    pub fn new(graph: TemporalGraph, plan: ShardPlan) -> Result<Self, TkError> {
        Self::with_config(graph, plan, EngineConfig::default())
    }

    /// Creates a sharded engine with an explicit configuration.  The memory
    /// budget bounds the summed resident bytes of **all** shard skylines.
    ///
    /// The last shard of the resolved plan becomes the **live tail**:
    /// [`ShardedEngine::absorb`] appends into it, and every earlier shard
    /// is closed from the start (its skylines are permanently valid).
    ///
    /// # Errors
    /// [`TkError::InvalidShardPlan`] when `plan` does not resolve.
    pub fn with_config(
        graph: TemporalGraph,
        plan: ShardPlan,
        config: EngineConfig,
    ) -> Result<Self, TkError> {
        let shards = plan.resolve(&graph)?;
        let cache = Mutex::new(ShardCache::new(config.memory_budget_bytes, shards.len()));
        let boundary = Mutex::new(BoundaryCache::new(config.boundary_cache_entries));
        let sealed = shards.len() - 1;
        let mut appendable = AppendableGraph::from_graph(graph);
        if sealed > 0 {
            appendable.raise_floor(shards[sealed - 1].end());
        }
        let snapshot = appendable.snapshot();
        let tail_edges = snapshot.num_edges_in(shards[sealed]);
        let live = Arc::new(LiveState {
            epoch: 0,
            graph: Arc::clone(&snapshot),
            shards,
            sealed,
        });
        Ok(Self {
            inner: Arc::new(ShardInner {
                config,
                live: Mutex::new(live),
                ingest: Mutex::new(IngestState {
                    appendable,
                    tail_edges,
                }),
                lineage: Mutex::new(vec![Arc::downgrade(&snapshot)]),
                cache,
                boundary,
                scratch: Mutex::new(SkylineScratch::default()),
                pool: OnceLock::new(),
                absorb_failpoints: AtomicU64::new(0),
            }),
        })
    }

    /// Creates a sharded engine whose batches execute on an existing
    /// persistent `pool` (typically shared with the [`crate::CoreService`]
    /// that owns the engine) instead of a lazily created private one.
    ///
    /// # Errors
    /// [`TkError::InvalidShardPlan`] when `plan` does not resolve.
    pub fn with_pool(
        graph: TemporalGraph,
        plan: ShardPlan,
        config: EngineConfig,
        pool: Arc<ExecPool>,
    ) -> Result<Self, TkError> {
        let engine = Self::with_config(graph, plan, config)?;
        engine
            .inner
            .pool
            .set(pool)
            .ok()
            // tkc-lint: allow(no-panic-api) — the OnceLock is set exactly once, on a freshly constructed engine
            .expect("fresh engine has no pool yet");
        Ok(engine)
    }

    /// Adopts `pool` for this engine's batches if it has not already
    /// created or been given one; returns whether the pool was installed
    /// (see [`QueryEngine::adopt_pool`](crate::QueryEngine::adopt_pool)).
    pub fn adopt_pool(&self, pool: Arc<ExecPool>) -> bool {
        self.inner.pool.set(pool).is_ok()
    }

    /// The graph snapshot this engine currently serves queries against.
    ///
    /// Under live ingestion this is a point-in-time view: a later
    /// [`ShardedEngine::absorb`] publishes a new snapshot without mutating
    /// the returned one, so callers can keep using it (its `EdgeId`s for
    /// sealed timestamps stay valid) while new queries see fresher data.
    pub fn graph(&self) -> Arc<TemporalGraph> {
        Arc::clone(&self.inner.live_now().graph)
    }

    /// The resolved shard intervals, contiguous and covering `[1, tmax]`.
    /// The last one is the live tail while ingestion is open.
    pub fn shards(&self) -> Vec<TimeWindow> {
        self.inner.live_now().shards.clone()
    }

    /// Number of time-interval shards (closed shards plus the live tail).
    pub fn num_shards(&self) -> usize {
        self.inner.live_now().shards.len()
    }

    /// Number of closed (sealed, immutable) shards; the remaining shards —
    /// at most one — form the live tail.
    pub fn sealed_shards(&self) -> usize {
        self.inner.live_now().sealed
    }

    /// The smallest timestamp the ingest lane currently accepts: appends
    /// must carry `t >= watermark()`.
    pub fn watermark(&self) -> Timestamp {
        sync::lock(&self.inner.ingest).appendable.watermark()
    }

    /// Appends a batch of time-ordered events and publishes them as a new
    /// immutable snapshot, atomically: concurrent queries observe either
    /// none of the batch or all of it, never a prefix.
    ///
    /// Only tail-shard skylines and tail-touching boundary-stitch entries
    /// are invalidated (counted in the returned [`AbsorbStats`] and in
    /// [`CacheStats`]); closed-shard skylines stay resident and valid.
    /// After the batch, the configured [`crate::SealPolicy`] may roll the
    /// tail into a closed shard; the next advancing batch then opens a
    /// fresh tail shard.
    ///
    /// # Errors
    /// [`TkError::AppendOutOfOrder`], [`TkError::AppendDuplicate`] or
    /// [`TkError::AppendRejected`] when any event is refused — the whole
    /// batch is then rejected and no state changes.
    pub fn absorb(&self, batch: &[IngestEvent]) -> Result<AbsorbStats, TkError> {
        if self
            .inner
            .absorb_failpoints
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
            .is_ok()
        {
            // tkc-lint: allow(no-panic-api) — test-only fail point armed by fail_next_absorbs; simulates a worker dying on the absorb path before any state changes
            panic!("injected absorb fail point");
        }
        self.inner.absorb(batch)
    }

    /// Arms a test-only fail point: the next `n` calls to
    /// [`ShardedEngine::absorb`] panic before touching any state, as if the
    /// absorbing worker died mid-batch.  Lets tests prove the service's
    /// ingest lane converts worker death into
    /// [`TkError::WorkerPanicked`] instead of hanging the ticket.  No state
    /// is mutated by the injected panic, so the engine remains fully usable.
    #[doc(hidden)]
    pub fn fail_next_absorbs(&self, n: u64) {
        self.inner.absorb_failpoints.store(n, Ordering::Relaxed);
    }

    /// Seals the live tail shard manually (independent of the configured
    /// [`crate::SealPolicy`]): its skylines become permanently valid, the
    /// append watermark rises past its end, and the next advancing batch
    /// opens a fresh tail.  A no-op returning `sealed: false` when there is
    /// no open tail.
    pub fn seal_tail(&self) -> AbsorbStats {
        self.inner.seal_tail()
    }

    /// Whether `graph` is a snapshot this engine published (the current one
    /// or an earlier one still held alive by a reader).
    pub(crate) fn is_snapshot(&self, graph: &TemporalGraph) -> bool {
        sync::lock(&self.inner.lineage)
            .iter()
            .any(|w| w.upgrade().is_some_and(|g| std::ptr::eq(&*g, graph)))
    }

    /// Current cache counters; [`CacheStats::per_shard`] holds one entry per
    /// shard with its build/hit/residency counters and
    /// [`CacheStats::boundary`] the stitch-index counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.cache_stats()
    }

    /// Indexes of the shards overlapping `window`, in timeline order
    /// (always non-empty for a validated, span-clamped window).  This is
    /// the routing key of [`crate::CoreService`]'s shard-affine scheduling.
    pub fn overlapping_shards(&self, window: TimeWindow) -> std::ops::Range<usize> {
        self.inner.live_now().overlapping(window)
    }

    /// Warms every shard skyline for `k`, fanning the missing builds
    /// across the engine's [`ExecPool`] (shard skylines build
    /// independently, so a cold warm finishes in roughly the time of the
    /// largest shard instead of the sum); returns whether all of them were
    /// already resident.
    ///
    /// Cache accounting matches the serial warm exactly — one hit or miss
    /// per shard, single-flight adoption, live-tail epoch tagging — and the
    /// warm's wall-clock vs summed per-entry build times land in
    /// [`CacheStats::warm`].
    pub fn warm(&self, k: usize) -> bool {
        let t0 = Instant::now();
        let live = self.inner.live_now();
        let num_shards = live.shards.len();
        let all_resident = {
            let cache = sync::lock(&self.inner.cache);
            (0..num_shards).all(|shard| cache.is_resident(shard, k, live.epoch))
        };
        let (_, entries_built, build_time) = self.inner.shard_skylines(&live, 0..num_shards, k);
        let mut cache = sync::lock(&self.inner.cache);
        cache.warm.warms += 1;
        cache.warm.entries_built += entries_built;
        cache.warm.build_time += build_time;
        cache.warm.wall_time += t0.elapsed();
        all_resident
    }

    /// Drops every cached shard skyline and stitch entry, keeping the
    /// counters.
    pub fn clear_cache(&self) {
        let mut cache = sync::lock(&self.inner.cache);
        cache.entries.clear();
        cache.resident_bytes = 0;
        for shard in cache.per_shard.iter_mut() {
            shard.resident_bytes = 0;
            shard.resident_indexes = 0;
        }
        drop(cache);
        sync::lock(&self.inner.boundary).clear();
    }

    /// Runs one query with the paper's final algorithm, streaming results
    /// into `sink`.
    ///
    /// # Errors
    /// See [`ShardedEngine::run_with`].
    pub fn run(
        &self,
        query: &TimeRangeKCoreQuery,
        sink: &mut dyn ResultSink,
    ) -> Result<QueryStats, TkError> {
        self.run_with(query, Algorithm::Enum, sink)
    }

    /// Runs one query with the chosen algorithm.
    ///
    /// `Enum` and `EnumBase` answer from restricted shard skylines plus the
    /// boundary-stitching pass; `Otcd` and `Naive` have no reusable index
    /// and run exactly as [`TimeRangeKCoreQuery::run_with`] does.
    ///
    /// Cores are streamed in per-shard order (intra-shard cores first, then
    /// boundary-spanning ones), which differs from the span-wide engine's
    /// order; the *set* of `(TTI, edges)` pairs is identical.
    ///
    /// # Errors
    /// The validation errors of [`QueryRequest::validate`].
    pub fn run_with(
        &self,
        query: &TimeRangeKCoreQuery,
        algorithm: Algorithm,
        sink: &mut dyn ResultSink,
    ) -> Result<QueryStats, TkError> {
        // One consistent live view for validation and execution: a racing
        // absorb cannot swap the graph between the two.
        let live = self.inner.live_now();
        let range = query.range();
        let validated =
            QueryRequest::single(query.k(), range.start(), range.end()).validate(&live.graph)?;
        Ok(self
            .inner
            .run_validated(&live, query.k(), validated.window(), algorithm, sink))
    }

    /// Runs a batch of queries with `Enum`, counting results per query
    /// (the sharded counterpart of
    /// [`QueryEngine::run_batch`](crate::QueryEngine::run_batch)).
    ///
    /// # Errors
    /// See [`ShardedEngine::run_batch_with`].
    pub fn run_batch(
        &self,
        queries: &[TimeRangeKCoreQuery],
    ) -> Result<(Vec<(CountingSink, QueryStats)>, BatchStats), TkError> {
        self.run_batch_with(queries, Algorithm::Enum, |_| CountingSink::default())
    }

    /// Fans `queries` across the persistent pool, one fresh sink per query —
    /// same contract as
    /// [`QueryEngine::run_batch_with`](crate::QueryEngine::run_batch_with),
    /// with workers warming different shards in parallel.
    ///
    /// # Errors
    /// Every query is validated up front; the first invalid query fails the
    /// whole batch before any work starts.
    pub fn run_batch_with<S, F>(
        &self,
        queries: &[TimeRangeKCoreQuery],
        algorithm: Algorithm,
        make_sink: F,
    ) -> Result<(Vec<(S, QueryStats)>, BatchStats), TkError>
    where
        S: ResultSink + Send + 'static,
        F: Fn(usize) -> S + Send + Sync + 'static,
    {
        let t0 = Instant::now();
        // The whole batch runs against one live view, so its queries are
        // mutually consistent even while absorbs land concurrently.
        let live = self.inner.live_now();
        let validated = Arc::new(validate_batch(&live.graph, queries)?);
        let (threads, pool) = batch_executor(
            &self.inner.pool,
            self.inner.config.num_threads,
            validated.len(),
        );
        let inner = Arc::clone(&self.inner);
        let per_query = fan_out_batch(pool, validated, make_sink, move |k, window, sink| {
            inner.run_validated(&live, k, window, algorithm, sink)
        });
        let batch = aggregate_batch(&per_query, t0.elapsed(), threads, self.cache_stats());
        Ok((per_query, batch))
    }
}

impl ShardInner {
    /// The current live view, cloned out from under a short lock.  Callers
    /// hold the returned `Arc` for the whole query, never the lock.
    fn live_now(&self) -> Arc<LiveState> {
        Arc::clone(&sync::lock(&self.live))
    }

    fn cache_stats(&self) -> CacheStats {
        let mut stats = sync::lock(&self.cache).stats();
        let boundary = sync::lock(&self.boundary);
        stats.boundary_invalidations = boundary.invalidations;
        stats.boundary = boundary.stats();
        stats
    }

    /// Absorbs one ingest batch: append + publish, recompute the tail
    /// window, apply the seal policy, swap the live state and purge exactly
    /// the tail-dependent cache entries.  See [`ShardedEngine::absorb`].
    fn absorb(&self, batch: &[IngestEvent]) -> Result<AbsorbStats, TkError> {
        let mut ingest = sync::lock(&self.ingest);
        if batch.is_empty() {
            let live = self.live_now();
            return Ok(AbsorbStats {
                tmax: live.graph.tmax(),
                num_shards: live.shards.len(),
                sealed_shards: live.sealed,
                ..AbsorbStats::default()
            });
        }
        let appended = ingest.appendable.append_batch(batch)?;
        let snapshot = ingest.appendable.publish();
        let old = self.live_now();
        let new_tmax = snapshot.tmax();
        let mut shards = old.shards.clone();
        let mut sealed = old.sealed;
        if sealed == shards.len() {
            // The previous absorb (or a manual seal) closed the tail: this
            // batch opens a fresh one right after it.
            let start = shards.last().map_or(1, |s| s.end() + 1);
            shards.push(TimeWindow::new(start, new_tmax));
            ingest.tail_edges = 0;
        } else {
            let tail = shards.len() - 1;
            shards[tail] = TimeWindow::new(shards[tail].start(), new_tmax);
        }
        ingest.tail_edges += appended;
        let tail_idx = shards.len() - 1;
        let mut did_seal = false;
        if self
            .config
            .seal_policy
            .should_seal(ingest.tail_edges, shards[tail_idx])
        {
            sealed = shards.len();
            ingest.appendable.raise_floor(new_tmax);
            ingest.tail_edges = 0;
            did_seal = true;
        }
        let state = Arc::new(LiveState {
            epoch: old.epoch + 1,
            graph: Arc::clone(&snapshot),
            shards,
            sealed,
        });
        {
            let mut lineage = sync::lock(&self.lineage);
            lineage.retain(|w| w.strong_count() > 0);
            lineage.push(Arc::downgrade(&snapshot));
        }
        let num_shards = state.shards.len();
        *sync::lock(&self.live) = Arc::clone(&state);
        // The batch extended the tail window, so even on a sealing absorb
        // the pre-batch tail entries describe a narrower window: purge every
        // non-permanent entry.  Closed-shard skylines are untouched.
        let mut cache = sync::lock(&self.cache);
        cache.ensure_shards(num_shards);
        let tail_invalidations = cache.invalidate_tail();
        if did_seal {
            cache.seals += 1;
        }
        drop(cache);
        let boundary_invalidations = sync::lock(&self.boundary).invalidate_tail();
        Ok(AbsorbStats {
            appended,
            tail_invalidations,
            boundary_invalidations,
            sealed: did_seal,
            tmax: new_tmax,
            num_shards,
            sealed_shards: sealed,
        })
    }

    /// Manual tail seal with no timeline change: current tail entries cover
    /// exactly the sealed window, so they are upgraded to permanent rather
    /// than purged.  See [`ShardedEngine::seal_tail`].
    fn seal_tail(&self) -> AbsorbStats {
        let mut ingest = sync::lock(&self.ingest);
        let old = self.live_now();
        let num_shards = old.shards.len();
        if old.sealed == num_shards {
            return AbsorbStats {
                tmax: old.graph.tmax(),
                num_shards,
                sealed_shards: old.sealed,
                ..AbsorbStats::default()
            };
        }
        ingest.appendable.raise_floor(old.graph.tmax());
        ingest.tail_edges = 0;
        let state = Arc::new(LiveState {
            epoch: old.epoch + 1,
            graph: Arc::clone(&old.graph),
            shards: old.shards.clone(),
            sealed: num_shards,
        });
        *sync::lock(&self.live) = state;
        let mut cache = sync::lock(&self.cache);
        cache.seal_shard(num_shards - 1, old.epoch);
        drop(cache);
        sync::lock(&self.boundary).seal_range(old.epoch);
        AbsorbStats {
            sealed: true,
            tmax: old.graph.tmax(),
            num_shards,
            sealed_shards: num_shards,
            ..AbsorbStats::default()
        }
    }

    /// Returns the skylines of every shard in `shards` for `k` (in shard
    /// order), fanning the builds of the cold ones across the engine's
    /// [`ExecPool`] via `run_batch` — shard skylines build independently, so
    /// a cold spanning query pays roughly the largest overlapped shard's
    /// build instead of the sum (the serial per-shard loop this replaces was
    /// the dominant cold-query latency term).
    ///
    /// Cache semantics are identical to building serially: one `get` per
    /// shard (hit/miss accounting), builds outside the cache lock with
    /// single-flight adoption — two threads racing on the same cold
    /// `(shard, k)` may both build, the loser's copy is dropped — and
    /// live-tail entries tagged with [`LiveState::shard_validity`]'s epoch.
    /// Nested fan-out is deadlock-free because `run_batch`'s calling thread
    /// claims indexes itself.
    ///
    /// Also returns the number of skylines built here and their summed
    /// per-entry build time (wall time is shorter when builds overlap; see
    /// [`WarmStats`]).
    fn shard_skylines(
        &self,
        live: &Arc<LiveState>,
        shards: std::ops::Range<usize>,
        k: usize,
    ) -> (Vec<Arc<EdgeCoreSkyline>>, u64, Duration) {
        let first = shards.start;
        let mut skylines: Vec<Option<Arc<EdgeCoreSkyline>>> = Vec::with_capacity(shards.len());
        let mut missing: Vec<usize> = Vec::new();
        {
            let mut cache = sync::lock(&self.cache);
            for shard in shards {
                let hit = cache.get(shard, k, live.epoch);
                if hit.is_none() {
                    missing.push(shard);
                }
                skylines.push(hit);
            }
        }
        let mut entries_built = 0u64;
        let mut build_time = Duration::ZERO;
        if !missing.is_empty() {
            let (_, pool) = batch_executor(&self.pool, self.config.num_threads, missing.len());
            let task_live = Arc::clone(live);
            let task_shards: Arc<[usize]> = missing.as_slice().into();
            let built = run_batch_inner(pool.as_deref(), missing.len(), move |i| {
                let t = Instant::now();
                let shard = task_shards[i];
                let skyline = Arc::new(EdgeCoreSkyline::build(
                    &task_live.graph,
                    k,
                    task_live.shards[shard],
                ));
                (skyline, t.elapsed())
            });
            let mut cache = sync::lock(&self.cache);
            for (&shard, (skyline, took)) in missing.iter().zip(built) {
                entries_built += 1;
                build_time += took;
                skylines[shard - first] =
                    Some(cache.adopt(shard, k, skyline, live.shard_validity(shard)));
            }
        }
        let skylines = skylines
            .into_iter()
            // tkc-lint: allow(no-panic-api) — every slot is either a cache hit or was adopted just above
            .map(|skyline| skyline.expect("every requested shard skyline resolved"))
            .collect();
        (skylines, entries_built, build_time)
    }

    /// Returns the stitch entry for shard range `lo..=hi` and parameter
    /// `k` — the cut-crossing minimal core windows of the merged window —
    /// building and caching it on a miss (one merged-window sweep, like the
    /// shard skylines built outside the cache lock).  The second component
    /// is the transient peak of that build (the full merged skyline held
    /// while filtering), `0` on a cache hit.
    ///
    /// The build covers the shard range's whole merged window, not just the
    /// triggering query's window, so the entry serves *every* later
    /// spanning window of the range; a one-off spanning query thus pays a
    /// wider sweep than the transient path would — the trade
    /// [`EngineConfig::boundary_cache_entries`]` = 0` opts out of.
    fn stitch_entry(
        &self,
        live: &LiveState,
        lo: usize,
        hi: usize,
        k: usize,
    ) -> (Arc<EdgeCoreSkyline>, usize) {
        if let Some(hit) = sync::lock(&self.boundary).get(lo, hi, k, live.epoch) {
            return (hit, 0);
        }
        let merged_window = TimeWindow::new(live.shards[lo].start(), live.shards[hi].end());
        let cuts: Vec<Timestamp> = (lo..hi).map(|s| live.shards[s].end()).collect();
        let merged = EdgeCoreSkyline::build(&live.graph, k, merged_window);
        let build_peak = merged.memory_bytes();
        let crossing =
            Arc::new(merged.filtered(|w| cuts.iter().any(|&c| w.start() <= c && c < w.end())));
        let adopted =
            sync::lock(&self.boundary).adopt(lo, hi, k, crossing, live.range_validity(hi));
        (adopted, build_peak)
    }

    /// Executes a query whose parameters already passed validation (`k >= 1`,
    /// window inside `live`'s graph span) against one consistent live view.
    fn run_validated(
        &self,
        live: &Arc<LiveState>,
        k: usize,
        window: TimeWindow,
        algorithm: Algorithm,
        sink: &mut dyn ResultSink,
    ) -> QueryStats {
        match algorithm {
            Algorithm::Otcd | Algorithm::Naive => {
                TimeRangeKCoreQuery::validated(k, window).run_with(&live.graph, algorithm, sink)
            }
            Algorithm::Enum | Algorithm::EnumBase => {
                let shards = live.overlapping(window);
                debug_assert!(!shards.is_empty(), "validated window overlaps a shard");
                let spanning = shards.len() > 1;
                let stitch_cached = self.config.boundary_cache_entries > 0;
                let mut total = QueryStats::zeroed(algorithm);
                let mut parts: Vec<EdgeCoreSkyline> = Vec::new();
                // Take the whole scratch pool for this query (short lock,
                // guard dropped immediately); retired skylines are recycled
                // into it and the pool is merged back at the end.
                let mut scratch = std::mem::take(&mut *sync::lock(&self.scratch));

                // Prefetch every overlapping shard's skyline, building the
                // cold ones in parallel on the pool (see `shard_skylines`).
                let t_prefetch = Instant::now();
                let (skylines, _, _) = self.shard_skylines(live, shards.clone(), k);
                total.precompute_time += t_prefetch.elapsed();

                // Intra-shard cores: restrict each overlapping shard's
                // cached skyline to its part of the window.  The restricted
                // skylines double as the intra-shard half of the boundary
                // stitch, so they are kept when a spanning pass follows.
                for (shard, skyline) in shards.clone().zip(&skylines) {
                    let part = live.shards[shard]
                        .intersect(&window)
                        // tkc-lint: allow(no-panic-api) — `shards` only lists shards overlapping `window`, so the intersection is non-empty
                        .expect("overlapping shard intersects the window");
                    let t0 = Instant::now();
                    let restricted = skyline.restrict_with(&live.graph, part, &mut scratch);
                    let precompute = t0.elapsed();
                    let stats = TimeRangeKCoreQuery::validated(k, part)
                        .run_with_skyline(&live.graph, &restricted, algorithm, sink)
                        // tkc-lint: allow(no-panic-api) — restrict() targets exactly the shard part, so validation cannot reject it
                        .expect("restricted shard skyline matches the part by construction");
                    total.num_cores += stats.num_cores;
                    total.total_result_edges += stats.total_result_edges;
                    total.precompute_time += precompute;
                    total.enumerate_time += stats.enumerate_time;
                    total.peak_memory_bytes = total.peak_memory_bytes.max(stats.peak_memory_bytes);
                    if spanning && stitch_cached {
                        parts.push(restricted);
                    } else {
                        scratch.recycle(restricted);
                    }
                }

                // Boundary-spanning cores: enumerate the skyline of the
                // window itself through the cut-crossing filter.  With the
                // stitch cache on, that skyline is assembled from the
                // restricted shard skylines plus the cached cut-crossing
                // windows; with the cache off it is rebuilt transiently
                // (one CoreTime sweep per spanning query).
                if spanning {
                    let (lo, hi) = (shards.start, shards.end - 1);
                    let cuts: Vec<Timestamp> = (lo..hi).map(|s| live.shards[s].end()).collect();
                    let t0 = Instant::now();
                    let stitched = if stitch_cached {
                        let (crossing, build_peak) = self.stitch_entry(live, lo, hi, k);
                        total.peak_memory_bytes = total.peak_memory_bytes.max(build_peak);
                        compose_boundary_skyline(
                            &live.graph,
                            k,
                            window,
                            &parts,
                            &crossing,
                            &mut scratch,
                        )
                    } else {
                        EdgeCoreSkyline::build(&live.graph, k, window)
                    };
                    total.precompute_time += t0.elapsed();
                    let mut boundary = BoundarySink {
                        inner: sink,
                        cuts: &cuts,
                        cores: 0,
                        edges: 0,
                    };
                    let t1 = Instant::now();
                    let peak = match algorithm {
                        Algorithm::Enum => {
                            crate::enumerate(&live.graph, &stitched, &mut boundary)
                                .peak_memory_bytes
                        }
                        Algorithm::EnumBase => {
                            crate::enumerate_base(&live.graph, &stitched, &mut boundary)
                                .peak_memory_bytes
                        }
                        // tkc-lint: allow(no-panic-api) — the outer match already handled Otcd and Naive
                        _ => unreachable!("outer match covers Otcd and Naive"),
                    };
                    total.enumerate_time += t1.elapsed();
                    total.num_cores += boundary.cores;
                    total.total_result_edges += boundary.edges;
                    total.peak_memory_bytes = total
                        .peak_memory_bytes
                        .max(peak)
                        .max(stitched.memory_bytes());
                    scratch.recycle(stitched);
                }
                for part in parts {
                    scratch.recycle(part);
                }
                sync::lock(&self.scratch).absorb(scratch);
                total
            }
        }
    }
}

/// A [`CoreBackend`] answering from a shared [`ShardedEngine`], so sharded
/// execution composes with [`QueryRequest`] multi-`k` sets and sweeps and
/// with [`crate::CoreService`] exactly like [`crate::CachedBackend`] does.
///
/// Because shard skylines are graph-specific, `execute` refuses a graph
/// other than [`ShardedEngine::graph`] with [`TkError::GraphMismatch`].
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use tkcore::{paper_example, QueryRequest, ShardPlan, ShardedBackend, ShardedEngine};
///
/// let engine = Arc::new(
///     ShardedEngine::new(paper_example::graph(), ShardPlan::FixedCount(3)).unwrap(),
/// );
/// let backend = ShardedBackend::new(Arc::clone(&engine));
/// let response = QueryRequest::sweep(1..=2, 1, 7)
///     .run(&engine.graph(), &backend)
///     .unwrap();
/// assert_eq!(response.outcomes.len(), 2); // one outcome per k
/// ```
#[derive(Clone)]
pub struct ShardedBackend {
    engine: Arc<ShardedEngine>,
    algorithm: Algorithm,
}

impl ShardedBackend {
    /// A sharded backend running the paper's final algorithm (`Enum`).
    pub fn new(engine: Arc<ShardedEngine>) -> Self {
        Self::with_algorithm(engine, Algorithm::Enum)
    }

    /// A sharded backend running the chosen algorithm.
    pub fn with_algorithm(engine: Arc<ShardedEngine>, algorithm: Algorithm) -> Self {
        Self { engine, algorithm }
    }

    /// The engine this backend answers from.
    pub fn engine(&self) -> &ShardedEngine {
        &self.engine
    }

    /// The algorithm this backend runs.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// Same identity rule as [`crate::CachedBackend`] — pointer equality is
    /// the O(1) fast path, an equal clone is accepted at O(|E|) cost —
    /// extended for live ingestion: any snapshot this engine published is
    /// served, so a query that captured [`ShardedEngine::graph`] just
    /// before a racing [`ShardedEngine::absorb`] still executes (against
    /// the current state) instead of failing with a spurious mismatch.
    fn serves(&self, graph: &TemporalGraph) -> bool {
        self.engine.is_snapshot(graph) || crate::backend::graph_matches(&self.engine.graph(), graph)
    }
}

impl CoreBackend for ShardedBackend {
    fn name(&self) -> &str {
        match self.algorithm {
            Algorithm::Enum => "Sharded(Enum)",
            Algorithm::EnumBase => "Sharded(EnumBase)",
            Algorithm::Otcd => "Sharded(OTCD)",
            Algorithm::Naive => "Sharded(Naive)",
        }
    }

    fn execute(
        &self,
        graph: &TemporalGraph,
        k: usize,
        window: TimeWindow,
        sink: &mut dyn ResultSink,
    ) -> Result<QueryStats, TkError> {
        if !self.serves(graph) {
            return Err(TkError::GraphMismatch);
        }
        let clamped = validate_query(graph, k, window)?;
        self.engine.run_with(
            &TimeRangeKCoreQuery::validated(k, clamped),
            self.algorithm,
            sink,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example;
    use crate::sink::CollectingSink;
    use crate::TemporalKCore;

    fn canonical(mut cores: Vec<TemporalKCore>) -> Vec<TemporalKCore> {
        cores.sort_by(|a, b| a.tti.cmp(&b.tti).then_with(|| a.edges.cmp(&b.edges)));
        cores
    }

    #[test]
    fn plans_resolve_to_contiguous_covers() {
        let g = paper_example::graph(); // tmax = 7
        for plan in [
            ShardPlan::Span,
            ShardPlan::FixedCount(1),
            ShardPlan::FixedCount(3),
            ShardPlan::FixedCount(7),
            ShardPlan::FixedCount(50), // clamped to one shard per timestamp
            ShardPlan::TargetEdgesPerShard(1),
            ShardPlan::TargetEdgesPerShard(4),
            ShardPlan::TargetEdgesPerShard(10_000),
            ShardPlan::ExplicitCuts(vec![]),
            ShardPlan::ExplicitCuts(vec![3]),
            ShardPlan::ExplicitCuts(vec![1, 2, 3, 4, 5, 6]),
        ] {
            let shards = plan.resolve(&g).unwrap_or_else(|e| panic!("{plan:?}: {e}"));
            assert_eq!(shards.first().unwrap().start(), 1, "{plan:?}");
            assert_eq!(shards.last().unwrap().end(), g.tmax(), "{plan:?}");
            for pair in shards.windows(2) {
                assert_eq!(pair[1].start(), pair[0].end() + 1, "{plan:?}");
            }
        }
        assert_eq!(ShardPlan::FixedCount(50).resolve(&g).unwrap().len(), 7);
        assert_eq!(
            ShardPlan::TargetEdgesPerShard(10_000)
                .resolve(&g)
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn malformed_plans_are_typed_errors() {
        let g = paper_example::graph();
        for plan in [
            ShardPlan::FixedCount(0),
            ShardPlan::TargetEdgesPerShard(0),
            ShardPlan::ExplicitCuts(vec![0]),
            ShardPlan::ExplicitCuts(vec![7]), // == tmax: last shard would be empty
            ShardPlan::ExplicitCuts(vec![3, 3]),
            ShardPlan::ExplicitCuts(vec![4, 2]),
        ] {
            assert!(
                matches!(plan.resolve(&g), Err(TkError::InvalidShardPlan { .. })),
                "{plan:?}"
            );
        }
    }

    #[test]
    fn sharded_answers_match_span_wide_on_the_paper_example() {
        let g = paper_example::graph();
        let span_engine = crate::QueryEngine::new(g.clone());
        for plan in [
            ShardPlan::FixedCount(1),
            ShardPlan::FixedCount(2),
            ShardPlan::FixedCount(4),
            ShardPlan::FixedCount(7),
            ShardPlan::ExplicitCuts(vec![4]),
        ] {
            let sharded = ShardedEngine::new(g.clone(), plan.clone()).unwrap();
            for k in 1..=3 {
                for window in [
                    g.span(),
                    TimeWindow::new(1, 4),
                    TimeWindow::new(2, 6),
                    TimeWindow::new(4, 4),
                ] {
                    let query = TimeRangeKCoreQuery::new(k, window).unwrap();
                    for algo in Algorithm::ALL {
                        let mut expected = CollectingSink::default();
                        span_engine.run_with(&query, algo, &mut expected).unwrap();
                        let mut got = CollectingSink::default();
                        sharded.run_with(&query, algo, &mut got).unwrap();
                        assert_eq!(
                            canonical(got.cores),
                            canonical(expected.cores),
                            "{plan:?} k={k} window={window} algo={algo}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn single_shard_queries_build_only_their_shard() {
        let g = paper_example::graph();
        let engine = ShardedEngine::new(g.clone(), ShardPlan::ExplicitCuts(vec![4])).unwrap();
        let mut sink = CountingSink::default();
        engine
            .run(
                &TimeRangeKCoreQuery::new(2, TimeWindow::new(1, 3)).unwrap(),
                &mut sink,
            )
            .unwrap();
        let stats = engine.cache_stats();
        assert_eq!(stats.per_shard.len(), 2);
        assert_eq!(stats.per_shard[0].builds, 1);
        assert_eq!(stats.per_shard[1].builds, 0);
        assert_eq!(stats.misses, 1);
        assert!(stats.per_shard[0].resident_bytes <= stats.resident_bytes);
        // No boundary was crossed, so no stitch entry was built.
        assert_eq!(stats.boundary.builds, 0);
        assert_eq!(stats.boundary.resident_entries, 0);
    }

    #[test]
    fn spanning_queries_build_one_stitch_entry_and_reuse_it() {
        let g = paper_example::graph();
        let engine = ShardedEngine::new(g.clone(), ShardPlan::ExplicitCuts(vec![4])).unwrap();
        let query = TimeRangeKCoreQuery::new(2, TimeWindow::new(2, 6)).unwrap();
        let mut first = CollectingSink::default();
        engine.run(&query, &mut first).unwrap();
        let stats = engine.cache_stats();
        assert_eq!(stats.boundary.builds, 1, "{stats:?}");
        assert_eq!(stats.boundary.hits, 0, "{stats:?}");
        assert_eq!(stats.boundary.resident_entries, 1);
        // The second spanning query over the same shard pair hits the entry.
        let mut second = CollectingSink::default();
        engine.run(&query, &mut second).unwrap();
        let stats = engine.cache_stats();
        assert_eq!(stats.boundary.builds, 1, "{stats:?}");
        assert_eq!(stats.boundary.hits, 1, "{stats:?}");
        assert_eq!(canonical(first.cores), canonical(second.cores));
        // A different window over the same shard pair reuses the entry too.
        let other = TimeRangeKCoreQuery::new(2, TimeWindow::new(4, 5)).unwrap();
        let mut third = CollectingSink::default();
        engine.run(&other, &mut third).unwrap();
        let stats = engine.cache_stats();
        assert_eq!(stats.boundary.builds, 1, "{stats:?}");
        assert_eq!(stats.boundary.hits, 2, "{stats:?}");
    }

    #[test]
    fn stitch_cache_lru_respects_the_entry_budget() {
        let g = paper_example::graph();
        let engine = ShardedEngine::with_config(
            g.clone(),
            ShardPlan::FixedCount(7),
            EngineConfig {
                boundary_cache_entries: 1,
                num_threads: 1,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        // Two spanning queries over different shard ranges: the second entry
        // evicts the first.
        let mut sink = CountingSink::default();
        engine
            .run(
                &TimeRangeKCoreQuery::new(2, TimeWindow::new(1, 2)).unwrap(),
                &mut sink,
            )
            .unwrap();
        engine
            .run(
                &TimeRangeKCoreQuery::new(2, TimeWindow::new(5, 7)).unwrap(),
                &mut sink,
            )
            .unwrap();
        let stats = engine.cache_stats();
        assert_eq!(stats.boundary.builds, 2, "{stats:?}");
        assert_eq!(stats.boundary.resident_entries, 1, "{stats:?}");
        assert!(stats.boundary.evictions >= 1, "{stats:?}");
    }

    #[test]
    fn disabled_stitch_cache_matches_the_cached_path() {
        let g = paper_example::graph();
        let cached = ShardedEngine::new(g.clone(), ShardPlan::FixedCount(4)).unwrap();
        let transient = ShardedEngine::with_config(
            g.clone(),
            ShardPlan::FixedCount(4),
            EngineConfig {
                boundary_cache_entries: 0,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        for k in 1..=3 {
            for window in [g.span(), TimeWindow::new(2, 6), TimeWindow::new(3, 5)] {
                let query = TimeRangeKCoreQuery::new(k, window).unwrap();
                let mut a = CollectingSink::default();
                cached.run(&query, &mut a).unwrap();
                let mut b = CollectingSink::default();
                transient.run(&query, &mut b).unwrap();
                assert_eq!(canonical(a.cores), canonical(b.cores), "k={k} {window}");
            }
        }
        let stats = transient.cache_stats();
        assert_eq!(stats.boundary.builds, 0, "disabled cache never builds");
        assert_eq!(stats.boundary.resident_entries, 0);
        assert!(cached.cache_stats().boundary.builds >= 1);
    }

    #[test]
    fn eviction_respects_the_budget_across_shards() {
        let g = paper_example::graph();
        let shard_bytes = EdgeCoreSkyline::build(&g, 1, TimeWindow::new(1, 4)).memory_bytes();
        let engine = ShardedEngine::with_config(
            g.clone(),
            ShardPlan::ExplicitCuts(vec![4]),
            EngineConfig {
                memory_budget_bytes: shard_bytes, // room for ~one shard index
                num_threads: 1,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        for k in 1..=3 {
            let mut sink = CountingSink::default();
            engine
                .run(&TimeRangeKCoreQuery::new(k, g.span()).unwrap(), &mut sink)
                .unwrap();
        }
        let stats = engine.cache_stats();
        assert!(stats.evictions >= 1, "{stats:?}");
        assert!(stats.resident_indexes >= 1);
        let shard_sum: usize = stats.per_shard.iter().map(|s| s.resident_indexes).sum();
        assert_eq!(shard_sum, stats.resident_indexes, "{stats:?}");
        let byte_sum: usize = stats.per_shard.iter().map(|s| s.resident_bytes).sum();
        assert_eq!(byte_sum, stats.resident_bytes, "{stats:?}");
    }

    #[test]
    fn sharded_backend_composes_with_requests_and_refuses_foreign_graphs() {
        let g = paper_example::graph();
        let engine = Arc::new(ShardedEngine::new(g.clone(), ShardPlan::FixedCount(4)).unwrap());
        let backend = ShardedBackend::new(Arc::clone(&engine));
        assert_eq!(backend.algorithm(), Algorithm::Enum);
        assert_eq!(backend.name(), "Sharded(Enum)");
        let response = QueryRequest::single(2, 1, 4)
            .materialize()
            .run(&engine.graph(), &backend)
            .unwrap();
        let crate::KOutput::Cores(cores) = &response.outcomes[0].output else {
            panic!("materialized request");
        };
        assert_eq!(
            canonical(cores.clone()),
            crate::naive::naive_results(&g, 2, TimeWindow::new(1, 4))
        );

        let other = temporal_graph::TemporalGraphBuilder::new()
            .with_edges([(0u64, 1u64, 1i64), (1, 2, 2), (0, 2, 2)])
            .build()
            .unwrap();
        let mut sink = CountingSink::default();
        assert!(matches!(
            backend.execute(&other, 2, TimeWindow::new(1, 2), &mut sink),
            Err(TkError::GraphMismatch)
        ));
    }

    #[test]
    fn sharded_batch_matches_sequential_and_reports_shard_cache() {
        let g = paper_example::graph();
        let engine = ShardedEngine::new(g.clone(), ShardPlan::FixedCount(3)).unwrap();
        let queries: Vec<TimeRangeKCoreQuery> = (1..=g.tmax())
            .flat_map(|s| {
                (s..=g.tmax())
                    .map(move |e| TimeRangeKCoreQuery::new(2, TimeWindow::new(s, e)).unwrap())
            })
            .collect();
        let (results, batch) = engine.run_batch(&queries).unwrap();
        assert_eq!(batch.num_queries, queries.len());
        assert_eq!(batch.cache.per_shard.len(), 3);
        for (query, (sink, _)) in queries.iter().zip(&results) {
            let mut fresh = CountingSink::default();
            query.run_with(&g, Algorithm::Enum, &mut fresh);
            assert_eq!(sink, &fresh, "{}", query.range());
        }
        // Every shard was eventually warmed for k = 2; the sum of per-shard
        // hits and builds accounts for every cache access.
        let stats = engine.cache_stats();
        let builds: u64 = stats.per_shard.iter().map(|s| s.builds).sum();
        let hits: u64 = stats.per_shard.iter().map(|s| s.hits).sum();
        assert!(builds >= 3, "{stats:?}");
        assert_eq!(hits, stats.hits, "{stats:?}");
        // Spanning queries in the batch exercised the stitch cache.
        assert!(stats.boundary.builds >= 1, "{stats:?}");
    }

    #[test]
    fn out_of_span_queries_are_refused_before_touching_shards() {
        let g = paper_example::graph();
        let engine = ShardedEngine::new(g.clone(), ShardPlan::FixedCount(4)).unwrap();
        let past =
            TimeRangeKCoreQuery::new(2, TimeWindow::new(g.tmax() + 1, g.tmax() + 9)).unwrap();
        for algo in Algorithm::ALL {
            let mut sink = CountingSink::default();
            let err = engine.run_with(&past, algo, &mut sink).unwrap_err();
            assert!(
                matches!(err, TkError::WindowPastTmax { start, tmax }
                    if start == g.tmax() + 1 && tmax == g.tmax()),
                "{algo}: {err}"
            );
        }
        assert_eq!(engine.cache_stats().misses, 0);
    }

    #[test]
    fn warm_builds_every_shard_once() {
        let g = paper_example::graph();
        let engine = ShardedEngine::new(g, ShardPlan::FixedCount(4)).unwrap();
        assert!(!engine.warm(2), "cold cache");
        assert!(engine.warm(2), "all shards resident after warming");
        let stats = engine.cache_stats();
        assert_eq!(stats.resident_indexes, 4);
        assert!(stats.per_shard.iter().all(|s| s.builds == 1), "{stats:?}");
        engine.clear_cache();
        let stats = engine.cache_stats();
        assert_eq!(stats.resident_indexes, 0);
        assert_eq!(stats.resident_bytes, 0);
        assert!(stats.per_shard.iter().all(|s| s.resident_indexes == 0));
        assert_eq!(stats.boundary.resident_entries, 0);
    }

    #[test]
    fn overlapping_shards_reports_the_routing_range() {
        let g = paper_example::graph();
        let engine = ShardedEngine::new(g, ShardPlan::ExplicitCuts(vec![2, 4])).unwrap();
        assert_eq!(engine.overlapping_shards(TimeWindow::new(1, 2)), 0..1);
        assert_eq!(engine.overlapping_shards(TimeWindow::new(3, 4)), 1..2);
        assert_eq!(engine.overlapping_shards(TimeWindow::new(2, 5)), 0..3);
        assert_eq!(engine.overlapping_shards(TimeWindow::new(5, 7)), 2..3);
    }

    #[test]
    fn absorb_invalidates_only_tail_entries_and_keeps_closed_shards_warm() {
        let g = paper_example::graph(); // tmax = 7
        let engine = ShardedEngine::new(g, ShardPlan::ExplicitCuts(vec![4])).unwrap();
        assert_eq!(engine.sealed_shards(), 1, "last shard is the live tail");
        assert_eq!(engine.watermark(), 7, "appends continue from tmax");
        engine.warm(2); // both shard skylines resident
                        // A spanning query also plants a tail-touching stitch entry.
        let mut sink = CountingSink::default();
        engine
            .run(
                &TimeRangeKCoreQuery::new(2, TimeWindow::new(2, 6)).unwrap(),
                &mut sink,
            )
            .unwrap();
        let before = engine.cache_stats();
        assert_eq!(before.resident_indexes, 2);
        assert_eq!(before.boundary.resident_entries, 1);

        let absorbed = engine.absorb(&[(1, 5, 8), (2, 5, 8)]).unwrap();
        assert_eq!(absorbed.appended, 2);
        assert_eq!(absorbed.tmax, 8);
        assert!(!absorbed.sealed, "Manual policy never seals");
        assert_eq!(absorbed.tail_invalidations, 1, "only the tail skyline");
        assert_eq!(
            absorbed.boundary_invalidations, 1,
            "the tail-touching stitch entry"
        );
        assert_eq!(
            engine.shards(),
            vec![TimeWindow::new(1, 4), TimeWindow::new(5, 8)]
        );

        let after = engine.cache_stats();
        assert_eq!(after.resident_indexes, 1, "closed shard stays resident");
        assert_eq!(after.tail_invalidations, 1);
        assert_eq!(after.boundary_invalidations, 1);
        assert_eq!(after.seals, 0);

        // Re-querying the closed shard is a pure hit: zero new builds.
        let builds_before: u64 = after.per_shard.iter().map(|s| s.builds).sum();
        let mut sink = CountingSink::default();
        engine
            .run(
                &TimeRangeKCoreQuery::new(2, TimeWindow::new(1, 3)).unwrap(),
                &mut sink,
            )
            .unwrap();
        let stats = engine.cache_stats();
        let builds_after: u64 = stats.per_shard.iter().map(|s| s.builds).sum();
        assert_eq!(builds_after, builds_before, "closed shard not rebuilt");

        // The new tail contents are queryable and duplicates are refused.
        assert!(matches!(
            engine.absorb(&[(1, 5, 8)]),
            Err(TkError::AppendDuplicate { u: 1, v: 5, t: 8 })
        ));
        assert!(matches!(
            engine.absorb(&[(3, 6, 2)]),
            Err(TkError::AppendOutOfOrder { t: 2, watermark: 8 })
        ));
    }

    #[test]
    fn seal_policy_rolls_the_tail_and_the_next_batch_opens_a_fresh_one() {
        let g = paper_example::graph();
        let engine = ShardedEngine::with_config(
            g,
            ShardPlan::ExplicitCuts(vec![4]),
            EngineConfig {
                seal_policy: crate::SealPolicy::SpanWidth(5),
                num_threads: 1,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        // Tail [5, 7] spans 3 timestamps; extending it to t = 9 spans 5 and
        // trips the SpanWidth(5) policy.
        let absorbed = engine.absorb(&[(1, 2, 9)]).unwrap();
        assert!(absorbed.sealed);
        assert_eq!(absorbed.sealed_shards, 2);
        assert_eq!(absorbed.num_shards, 2);
        assert_eq!(engine.cache_stats().seals, 1);
        assert_eq!(engine.watermark(), 10, "floor rose past the sealed tail");

        // The next advancing batch opens a new tail [10, 11].
        let absorbed = engine.absorb(&[(1, 3, 11), (2, 3, 11)]).unwrap();
        assert_eq!(absorbed.num_shards, 3);
        assert_eq!(absorbed.sealed_shards, 2);
        assert_eq!(engine.shards()[2], TimeWindow::new(10, 11));
        let stats = engine.cache_stats();
        assert_eq!(stats.per_shard.len(), 3, "counter table grew with the tail");
        // Queries spanning the whole grown timeline still validate & run.
        let mut sink = CountingSink::default();
        engine
            .run(
                &TimeRangeKCoreQuery::new(1, TimeWindow::new(1, 11)).unwrap(),
                &mut sink,
            )
            .unwrap();
        assert!(sink.num_cores > 0);
    }

    #[test]
    fn manual_seal_upgrades_resident_tail_entries_instead_of_dropping_them() {
        let g = paper_example::graph();
        let engine = ShardedEngine::new(g, ShardPlan::ExplicitCuts(vec![4])).unwrap();
        engine.warm(2);
        let sealed = engine.seal_tail();
        assert!(sealed.sealed);
        assert_eq!(sealed.sealed_shards, 2);
        assert_eq!(engine.sealed_shards(), 2);
        let stats = engine.cache_stats();
        assert_eq!(stats.seals, 1);
        assert_eq!(
            stats.resident_indexes, 2,
            "tail entry upgraded, not dropped"
        );
        // Sealing again is a no-op.
        assert!(!engine.seal_tail().sealed);

        // A later absorb opens a fresh tail and leaves the upgraded entries
        // alone: zero tail invalidations.
        let absorbed = engine.absorb(&[(4, 6, 9)]).unwrap();
        assert_eq!(absorbed.num_shards, 3);
        assert_eq!(absorbed.tail_invalidations, 0, "old tail is permanent now");
        let builds_before: u64 = engine
            .cache_stats()
            .per_shard
            .iter()
            .map(|s| s.builds)
            .sum();
        let mut sink = CountingSink::default();
        engine
            .run(
                &TimeRangeKCoreQuery::new(2, TimeWindow::new(5, 7)).unwrap(),
                &mut sink,
            )
            .unwrap();
        let builds_after: u64 = engine
            .cache_stats()
            .per_shard
            .iter()
            .map(|s| s.builds)
            .sum();
        assert_eq!(
            builds_after, builds_before,
            "sealed ex-tail served from cache"
        );
    }

    #[test]
    fn empty_batches_change_nothing() {
        let g = paper_example::graph();
        let engine = ShardedEngine::new(g, ShardPlan::FixedCount(3)).unwrap();
        let absorbed = engine.absorb(&[]).unwrap();
        assert_eq!(absorbed.appended, 0);
        assert_eq!(absorbed.tmax, 7);
        assert_eq!(absorbed.num_shards, 3);
        assert_eq!(engine.cache_stats().tail_invalidations, 0);
    }

    #[test]
    fn stale_snapshots_are_still_served_by_the_backend() {
        let g = paper_example::graph();
        let engine = Arc::new(ShardedEngine::new(g, ShardPlan::FixedCount(2)).unwrap());
        let backend = ShardedBackend::new(Arc::clone(&engine));
        let old_snapshot = engine.graph();
        engine.absorb(&[(1, 2, 8)]).unwrap();
        assert!(!std::ptr::eq(&*old_snapshot, &*engine.graph()));
        // A request that captured the pre-absorb snapshot executes instead
        // of failing with GraphMismatch (it runs on the current state).
        let mut sink = CountingSink::default();
        backend
            .execute(&old_snapshot, 2, TimeWindow::new(1, 4), &mut sink)
            .unwrap();
        assert!(sink.num_cores > 0);
    }

    #[test]
    fn poisoned_shard_and_boundary_locks_recover_instead_of_wedging() {
        let g = paper_example::graph();
        let engine = ShardedEngine::new(g.clone(), ShardPlan::FixedCount(3)).unwrap();
        engine.warm(2);
        // Poison both cache mutexes: panic while holding each guard.  The
        // old `.lock().expect("shard cache lock")` sites turned this into a
        // panic on every later cache_stats()/query; the shared sync helper
        // recovers the guards instead.
        let inner = Arc::clone(&engine.inner);
        for poisoner in [
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _guard = inner.cache.lock().expect("not poisoned yet");
                panic!("poison the shard cache lock");
            })),
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _guard = inner.boundary.lock().expect("not poisoned yet");
                panic!("poison the boundary cache lock");
            })),
        ] {
            assert!(poisoner.is_err());
        }
        assert!(inner.cache.is_poisoned() && inner.boundary.is_poisoned());
        let stats = engine.cache_stats();
        assert_eq!(stats.resident_indexes, 3, "shard skylines still resident");
        let mut sink = CountingSink::default();
        engine
            .run(&TimeRangeKCoreQuery::new(2, g.span()).unwrap(), &mut sink)
            .unwrap();
        assert!(sink.num_cores > 0, "spanning query runs after poisoning");
    }
}
