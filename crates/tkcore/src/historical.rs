//! Historical k-core queries (the single-window special case).
//!
//! The time-range k-core query of the paper generalises the *historical
//! k-core query* of Yu et al. (VLDB 2021): report the k-core of the snapshot
//! over one given window `[ts, te]`.  Once the vertex core time index (or
//! the edge core window skyline) has been built for a query range, any
//! historical query inside that range can be answered without touching the
//! graph again:
//!
//! * a vertex `u` is in the k-core of `[ts, te]` iff `CT_ts(u) <= te`;
//! * a temporal edge `(u, v, t)` is in the k-core of `[ts, te]` iff
//!   `ts <= t` and `max(CT_ts(u), CT_ts(v), t) <= te` (Lemma 1), or
//!   equivalently iff one of its minimal core windows is contained in
//!   `[ts, te]` (Lemma 3).

use crate::ecs::EdgeCoreSkyline;
use crate::result::TemporalKCore;
use crate::vct::VertexCoreTimeIndex;
use temporal_graph::{EdgeId, TemporalGraph, TimeWindow, VertexId, T_INFINITY};

/// Answers historical (single-window) k-core queries from a prebuilt
/// [`VertexCoreTimeIndex`].
#[derive(Debug, Clone)]
pub struct HistoricalKCoreIndex<'g> {
    graph: &'g TemporalGraph,
    vct: VertexCoreTimeIndex,
}

impl<'g> HistoricalKCoreIndex<'g> {
    /// Builds the index for parameter `k` over the query range `range`.
    pub fn build(graph: &'g TemporalGraph, k: usize, range: TimeWindow) -> Self {
        Self {
            graph,
            vct: VertexCoreTimeIndex::build(graph, k, range),
        }
    }

    /// Wraps an existing vertex core time index.
    pub fn from_vct(graph: &'g TemporalGraph, vct: VertexCoreTimeIndex) -> Self {
        Self { graph, vct }
    }

    /// The underlying vertex core time index.
    pub fn vct(&self) -> &VertexCoreTimeIndex {
        &self.vct
    }

    /// Is vertex `u` in the k-core of the snapshot over `window`?
    ///
    /// `window` must be contained in the range the index was built for;
    /// windows outside it conservatively answer `false`.
    pub fn vertex_in_core(&self, u: VertexId, window: TimeWindow) -> bool {
        self.vct.core_time(u, window.start()) <= window.end()
    }

    /// Is the temporal edge with id `e` in the k-core of the snapshot over
    /// `window`?
    pub fn edge_in_core(&self, e: EdgeId, window: TimeWindow) -> bool {
        let edge = self.graph.edge(e);
        if !window.contains(edge.t) {
            return false;
        }
        let ct_u = self.vct.core_time(edge.u, window.start());
        let ct_v = self.vct.core_time(edge.v, window.start());
        ct_u != T_INFINITY && ct_v != T_INFINITY && ct_u.max(ct_v) <= window.end()
    }

    /// All vertices of the k-core of the snapshot over `window`, sorted.
    pub fn core_vertices(&self, window: TimeWindow) -> Vec<VertexId> {
        (0..self.graph.num_vertices() as VertexId)
            .filter(|&u| self.vertex_in_core(u, window))
            .collect()
    }

    /// The temporal k-core of the snapshot over `window` as a result object
    /// (empty edge set ⇒ `None`).
    pub fn core_of(&self, window: TimeWindow) -> Option<TemporalKCore> {
        let edges: Vec<EdgeId> = self
            .graph
            .edge_ids_in(window)
            .filter(|&e| self.edge_in_core(e, window))
            .collect();
        if edges.is_empty() {
            return None;
        }
        // tkc-lint: allow(no-panic-api) — `edges` was verified non-empty just above
        let min_t = edges.iter().map(|&e| self.graph.edge(e).t).min().unwrap();
        // tkc-lint: allow(no-panic-api) — `edges` was verified non-empty just above
        let max_t = edges.iter().map(|&e| self.graph.edge(e).t).max().unwrap();
        Some(TemporalKCore::new(TimeWindow::new(min_t, max_t), edges))
    }
}

/// Answers the same historical query directly from an edge core window
/// skyline (Lemma 3): the k-core of `[ts, te]` is the union of all edges
/// with a minimal core window contained in `[ts, te]`.
pub fn historical_core_from_skyline(
    graph: &TemporalGraph,
    ecs: &EdgeCoreSkyline,
    window: TimeWindow,
) -> Option<TemporalKCore> {
    let edges: Vec<EdgeId> = ecs
        .iter()
        .filter(|(_, windows)| windows.iter().any(|w| window.contains_window(w)))
        .map(|(e, _)| e)
        .collect();
    if edges.is_empty() {
        return None;
    }
    // tkc-lint: allow(no-panic-api) — `edges` was verified non-empty just above
    let min_t = edges.iter().map(|&e| graph.edge(e).t).min().unwrap();
    // tkc-lint: allow(no-panic-api) — `edges` was verified non-empty just above
    let max_t = edges.iter().map(|&e| graph.edge(e).t).max().unwrap();
    Some(TemporalKCore::new(TimeWindow::new(min_t, max_t), edges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::core_edges_of_window;
    use crate::paper_example;
    use temporal_graph::generator;

    #[test]
    fn matches_per_window_peeling_on_the_paper_example() {
        let g = paper_example::graph();
        let range = paper_example::full_range();
        let index = HistoricalKCoreIndex::build(&g, 2, range);
        let ecs = EdgeCoreSkyline::build(&g, 2, range);
        for window in range.sub_windows() {
            let expected = core_edges_of_window(&g, 2, window);
            let via_vct = index.core_of(window).map(|c| c.edges).unwrap_or_default();
            assert_eq!(via_vct, expected, "VCT window {window}");
            let via_ecs = historical_core_from_skyline(&g, &ecs, window)
                .map(|c| c.edges)
                .unwrap_or_default();
            assert_eq!(via_ecs, expected, "ECS window {window}");
        }
    }

    #[test]
    fn vertex_membership_matches_figure_1() {
        let g = paper_example::graph();
        let index = HistoricalKCoreIndex::build(&g, 2, paper_example::full_range());
        let v1 = paper_example::vertex(&g, 1);
        // CT_1(v1) = 3: v1 joins the 2-core of [1, te] exactly at te = 3.
        assert!(!index.vertex_in_core(v1, TimeWindow::new(1, 2)));
        assert!(index.vertex_in_core(v1, TimeWindow::new(1, 3)));
        assert!(index.vertex_in_core(v1, TimeWindow::new(1, 7)));
        let core = index.core_vertices(TimeWindow::new(1, 4));
        let labels: Vec<u64> = core.into_iter().map(|v| g.label(v)).collect();
        assert_eq!(labels, vec![1, 2, 3, 4, 9]);
        assert!(index.vct().size() > 0);
    }

    #[test]
    fn matches_peeling_on_random_graphs() {
        for seed in 0..4 {
            let g = generator::uniform_random(16, 70, 10, 1000 + seed);
            let index = HistoricalKCoreIndex::build(&g, 2, g.span());
            for window in g.span().sub_windows() {
                let expected = core_edges_of_window(&g, 2, window);
                let got = index.core_of(window).map(|c| c.edges).unwrap_or_default();
                assert_eq!(got, expected, "seed {seed} window {window}");
            }
        }
    }

    #[test]
    fn windows_outside_the_built_range_are_empty() {
        let g = paper_example::graph();
        let index = HistoricalKCoreIndex::build(&g, 2, TimeWindow::new(2, 5));
        assert!(index.core_of(TimeWindow::new(6, 7)).is_none());
        assert!(!index.vertex_in_core(0, TimeWindow::new(6, 7)));
    }
}
