//! Edge core window skylines (Definition 5, Algorithm 2).
//!
//! The *minimal core windows* of a temporal edge `e` are the windows
//! `[ts, te]` such that `e` belongs to the temporal k-core of `[ts, te]` but
//! of no proper sub-window.  The set of minimal core windows of an edge is
//! its *edge core window skyline* (ECS): both start and end times strictly
//! increase along the skyline, and the skyline compresses the relationship
//! between the edge and the k-cores of *all* windows (Lemma 3: `e` is in the
//! core of `[ts, te]` iff some skyline window is contained in `[ts, te]`).
//!
//! The skyline of every edge is derived as a byproduct of the vertex core
//! time sweep ([`crate::CoreTimeSweep`]), exactly as in Algorithm 2 of the
//! paper: the core time of an edge `(u, v, t)` for start time `ts` is
//! `max(CT_ts(u), CT_ts(v), t)` (Lemma 1), and whenever it changes between
//! consecutive start times a minimal core window is emitted (Lemma 2); a
//! final window is emitted when the edge leaves the shrinking query window.
//!
//! # Data layout
//!
//! A skyline is stored CSR-style: one flat, contiguous `Vec<TimeWindow>`
//! holding every edge's windows back to back (per-edge runs in skyline
//! order), plus a `Vec<u32>` offset array with `num_edges + 1` entries —
//! edge `first_edge + i` owns `flat[offsets[i]..offsets[i + 1]]`.  The hot
//! paths ([`EdgeCoreSkyline::restrict_with`] and the boundary-stitch
//! composition in [`crate::shard`]) walk edges in increasing id order and
//! append to the tail of `flat`, so they touch two contiguous arrays and
//! never allocate per edge.  Offsets are `u32` rather than `usize` because
//! edge ids are `u32` and every window emission is tied to a distinct
//! `(edge, start time)` pair with `u32` start times, so per-range window
//! totals fit comfortably (asserted at build time); halving the offset
//! width keeps the array inside fewer cache lines.

use crate::vct::CoreTimeSweep;
use temporal_graph::{EdgeId, TemporalGraph, TimeWindow, Timestamp, T_INFINITY};

/// Recycled CSR buffers for the query hot path.
///
/// [`EdgeCoreSkyline::restrict_with`] and the boundary-stitch composition
/// (see [`crate::shard`]) run once per query; allocating a fresh flat window
/// vector and offset array there dominated their cost on cache hits.  A
/// scratch pool keeps the `(offsets, flat)` buffer pairs of retired skylines
/// and hands them back with their capacity intact, so steady-state queries
/// allocate nothing (machine-checked by `tkc-lint`'s `hot-path-alloc` rule).
///
/// The recycling contract: take a pair with [`SkylineScratch::take`], hand a
/// retired skyline's storage back with [`SkylineScratch::recycle`], and merge
/// a thread-local pool into a shared one with [`SkylineScratch::absorb`].
/// Buffers come back cleared but with capacity preserved.
#[derive(Debug, Default)]
pub struct SkylineScratch {
    buffers: Vec<(Vec<u32>, Vec<TimeWindow>)>,
}

impl SkylineScratch {
    /// Takes a cleared `(offsets, flat)` buffer pair, reusing the capacity
    /// of recycled skylines when one is pooled.
    pub(crate) fn take(&mut self) -> (Vec<u32>, Vec<TimeWindow>) {
        let (mut offsets, mut flat) = self.buffers.pop().unwrap_or_default();
        offsets.clear();
        flat.clear();
        (offsets, flat)
    }

    /// Returns a retired skyline's storage to the pool so later queries can
    /// reuse its capacity.
    pub fn recycle(&mut self, skyline: EdgeCoreSkyline) {
        self.buffers.push((skyline.offsets, skyline.flat));
    }

    /// Moves every pooled buffer pair of `other` into `self` (used to hand a
    /// thread-local scratch back to a shared pool).
    pub fn absorb(&mut self, mut other: SkylineScratch) {
        self.buffers.append(&mut other.buffers);
    }
}

/// The edge core window skylines of every temporal edge in the query range,
/// stored CSR-style (see the [module docs](self) for the layout).
#[derive(Debug, Clone)]
pub struct EdgeCoreSkyline {
    k: usize,
    range: TimeWindow,
    /// CSR offsets: `num_edges + 1` entries (empty for an edge-less
    /// skyline); edge `first_edge + i` owns `flat[offsets[i]..offsets[i+1]]`.
    offsets: Vec<u32>,
    /// Every edge's skyline windows back to back, per-edge runs in skyline
    /// order (both endpoints strictly increasing).
    flat: Vec<TimeWindow>,
    /// First edge id of the query range (edge ids in a range are contiguous).
    first_edge: EdgeId,
}

impl EdgeCoreSkyline {
    /// Builds the skylines of all edges in `range` for parameter `k`
    /// (Algorithm 2: vertex core time sweep with edge core times maintained
    /// as a byproduct).
    ///
    /// A `range` starting past the graph's last timestamp projects to an
    /// empty graph and yields an **empty skyline reporting the requested
    /// range back** — the same contract [`CoreTimeSweep::new`] documents for
    /// its degenerate-range clamp, unified so both layers agree on what
    /// "past `tmax`" means.
    pub fn build(graph: &TemporalGraph, k: usize, range: TimeWindow) -> Self {
        // A range lying entirely past the graph's last timestamp projects to
        // an empty graph: no edges, no minimal core windows.  Return an
        // empty skyline instead of running a degenerate sweep (which used to
        // clamp the range to `[start, start]` and walk per-vertex state for
        // nothing).
        if range.start() > graph.tmax() || graph.num_edges() == 0 {
            return Self {
                k,
                range,
                offsets: Vec::new(),
                flat: Vec::new(),
                first_edge: 0,
            };
        }
        let mut sweep = CoreTimeSweep::new(graph, k, range);
        Self::build_from_sweep(graph, &mut sweep)
    }

    /// Restricts the skylines to a sub-range of the range they were built
    /// for, producing exactly the skyline that [`EdgeCoreSkyline::build`]
    /// would compute for `range` — without re-running the CoreTime sweep.
    ///
    /// Minimality of a core window is a property of the graph alone
    /// (Definition 5), so the skyline for a sub-range is the containment
    /// filter `{ w ∈ skyline : w ⊆ range }`; and because both endpoints
    /// strictly increase along an edge's skyline (Lemma 2), that filter is a
    /// contiguous slice found by two binary searches per edge.  Cost:
    /// `O(|E_range| + |ECS_range|)`.
    ///
    /// This is the primitive behind the query engine's index reuse (see
    /// [`crate::QueryEngine`]).
    ///
    /// # Panics
    /// Panics if `range` is not contained in [`EdgeCoreSkyline::range`].
    // tkc-lint: hot
    pub fn restrict(&self, graph: &TemporalGraph, range: TimeWindow) -> Self {
        self.restrict_with(graph, range, &mut SkylineScratch::default())
    }

    /// [`EdgeCoreSkyline::restrict`] writing into a caller-provided scratch
    /// pool: the CSR buffers are taken from (and their storage later
    /// returned to, via [`SkylineScratch::recycle`]) `scratch`, so a warm
    /// pool makes restriction allocation-free per query — the result is
    /// emitted straight into one flat window vector and one offset array,
    /// with no per-edge tables at all.
    ///
    /// # Panics
    /// Panics if `range` is not contained in [`EdgeCoreSkyline::range`].
    // tkc-lint: hot
    pub fn restrict_with(
        &self,
        graph: &TemporalGraph,
        range: TimeWindow,
        scratch: &mut SkylineScratch,
    ) -> Self {
        assert!(
            self.range.contains_window(&range),
            "cannot restrict a skyline built for {} to the non-sub-range {}",
            self.range,
            range
        );
        let edge_range = graph.edge_ids_in(range);
        let first_edge = edge_range.start;
        let num_edges = (edge_range.end - edge_range.start) as usize;
        let (mut offsets, mut flat) = scratch.take();
        offsets.reserve(num_edges + 1);
        offsets.push(0);
        for id in edge_range {
            let full = self.windows(id);
            // Windows with start >= range.start() form a suffix, windows
            // with end <= range.end() a prefix; their overlap is the slice
            // of windows contained in `range`.
            let lo = full.partition_point(|w| w.start() < range.start());
            let hi = full.partition_point(|w| w.end() <= range.end());
            if lo < hi {
                flat.extend_from_slice(&full[lo..hi]);
            }
            offsets.push(flat.len() as u32);
        }
        Self {
            k: self.k,
            range,
            offsets,
            flat,
            first_edge,
        }
    }

    /// Builds the skylines by driving an already-constructed sweep (useful
    /// when the caller also wants the VCT index or phase timings).
    pub fn build_from_sweep(graph: &TemporalGraph, sweep: &mut CoreTimeSweep<'_>) -> Self {
        let k = sweep.k();
        let range = sweep.range();
        let edge_range = graph.edge_ids_in(range);
        let first_edge = edge_range.start;
        let num_edges = (edge_range.end - edge_range.start) as usize;

        // Windows are emitted interleaved across edges but in skyline order
        // *per edge*, so they are collected as `(local edge, window)` pairs
        // and scattered into the CSR arrays by a stable counting sort below —
        // a constant number of allocations, never one per edge.
        let mut emitted: Vec<(u32, TimeWindow)> = Vec::new();
        // Current core time of every in-range edge for the sweep's start time.
        let mut edge_ct: Vec<Timestamp> = vec![T_INFINITY; num_edges];

        // Incident in-range edges per vertex, sorted by timestamp, with a
        // pointer to the first edge whose timestamp is >= the current start
        // time (edges below it have left the window).
        let n = graph.num_vertices();
        let mut inc_offsets = vec![0u32; n + 1];
        for id in edge_range.clone() {
            let e = graph.edge(id);
            inc_offsets[e.u as usize + 1] += 1;
            inc_offsets[e.v as usize + 1] += 1;
        }
        for i in 1..inc_offsets.len() {
            inc_offsets[i] += inc_offsets[i - 1];
        }
        let mut incident: Vec<EdgeId> = vec![0; inc_offsets[n] as usize];
        let mut cursor = inc_offsets.clone();
        // Edge ids are sorted by timestamp, so pushing in id order keeps each
        // vertex's incident list sorted by timestamp.
        for id in edge_range.clone() {
            let e = graph.edge(id);
            for v in [e.u, e.v] {
                incident[cursor[v as usize] as usize] = id;
                cursor[v as usize] += 1;
            }
        }
        let mut inc_ptr: Vec<u32> = inc_offsets[..n].to_vec();

        // Initial edge core times for ts = range.start() (Algorithm 2, line 3).
        let ct = sweep.core_times();
        for id in edge_range.clone() {
            let e = graph.edge(id);
            let local = (id - first_edge) as usize;
            edge_ct[local] = edge_core_time(ct[e.u as usize], ct[e.v as usize], e.t);
        }

        // Sweep start times (Algorithm 2, lines 5-11).
        loop {
            let prev_ts = sweep.current_start_time();
            if sweep.advance().is_none() {
                // Flush edges that never leave before the range ends
                // (timestamp == range end).
                for id in graph.edge_ids_at(prev_ts) {
                    if id < edge_range.start || id >= edge_range.end {
                        continue;
                    }
                    let local = (id - first_edge) as usize;
                    if edge_ct[local] != T_INFINITY {
                        emitted.push((local as u32, TimeWindow::new(prev_ts, edge_ct[local])));
                    }
                }
                break;
            }
            let ts = sweep.current_start_time();

            // Edges with timestamp `prev_ts` leave the window: their last
            // minimal core window (if any) starts at `prev_ts`.
            for id in graph.edge_ids_at(prev_ts) {
                if id < edge_range.start || id >= edge_range.end {
                    continue;
                }
                let local = (id - first_edge) as usize;
                if edge_ct[local] != T_INFINITY {
                    emitted.push((local as u32, TimeWindow::new(prev_ts, edge_ct[local])));
                }
            }

            // Update the core times of edges incident to changed vertices
            // (Algorithm 2, lines 6-11).
            let ct = sweep.core_times();
            for &u in sweep.changed_vertices() {
                let mut ptr = inc_ptr[u as usize] as usize;
                let end = inc_offsets[u as usize + 1] as usize;
                while ptr < end && graph.edge(incident[ptr]).t < ts {
                    ptr += 1;
                }
                inc_ptr[u as usize] = ptr as u32;
                for &id in &incident[ptr..end] {
                    let e = graph.edge(id);
                    let local = (id - first_edge) as usize;
                    let new_ct = edge_core_time(ct[e.u as usize], ct[e.v as usize], e.t);
                    if new_ct > edge_ct[local] {
                        if edge_ct[local] != T_INFINITY {
                            // The previous value was the edge's core time for
                            // start times up to ts - 1, so [ts - 1, old] is a
                            // minimal core window (Lemma 2).
                            emitted.push((local as u32, TimeWindow::new(ts - 1, edge_ct[local])));
                        }
                        edge_ct[local] = new_ct;
                    }
                }
            }
        }

        // Stable counting-sort scatter into the CSR layout: per-edge counts,
        // prefix sums into offsets, then one pass placing each window at its
        // edge's cursor.  Emission order per edge equals skyline order, and
        // the scatter preserves it.
        assert!(
            emitted.len() < u32::MAX as usize,
            "skyline window count exceeds u32 offset space"
        );
        let mut offsets = vec![0u32; num_edges + 1];
        for &(local, _) in &emitted {
            offsets[local as usize + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut write_cursor: Vec<u32> = offsets[..num_edges].to_vec();
        let mut flat: Vec<TimeWindow> = vec![TimeWindow::new(1, 1); emitted.len()];
        for &(local, w) in &emitted {
            flat[write_cursor[local as usize] as usize] = w;
            write_cursor[local as usize] += 1;
        }

        Self {
            k,
            range,
            offsets,
            flat,
            first_edge,
        }
    }

    /// Crate-internal constructor assembling a skyline from CSR buffers the
    /// caller guarantees to be consistent (`offsets` non-decreasing with
    /// `num_edges + 1` entries ending at `flat.len()`), with per-edge runs
    /// in skyline order (both endpoints strictly increasing) and contained
    /// in `range`.  Used by the boundary stitch composition (see
    /// [`crate::shard`]), which merges cached per-shard slices with
    /// cut-crossing windows instead of re-sweeping.
    pub(crate) fn from_parts(
        k: usize,
        range: TimeWindow,
        first_edge: EdgeId,
        offsets: Vec<u32>,
        flat: Vec<TimeWindow>,
    ) -> Self {
        debug_assert!(offsets.first() == Some(&0));
        debug_assert!(offsets.last().copied().unwrap_or(0) as usize == flat.len());
        debug_assert!(offsets.windows(2).all(|p| p[0] <= p[1]));
        debug_assert!((0..offsets.len().saturating_sub(1)).all(|local| {
            let per_edge = &flat[offsets[local] as usize..offsets[local + 1] as usize];
            per_edge
                .windows(2)
                .all(|p| p[0].start() < p[1].start() && p[0].end() < p[1].end())
                && per_edge.iter().all(|w| range.contains_window(w))
        }));
        Self {
            k,
            range,
            offsets,
            flat,
            first_edge,
        }
    }

    /// Returns a copy keeping only the windows satisfying `keep`, preserving
    /// per-edge order.  A filtered subsequence keeps both endpoints strictly
    /// increasing, so binary-search containment slicing stays valid on the
    /// result (it is **not** a complete skyline: feeding it to an enumerator
    /// yields cores with incomplete edge sets — the boundary index only uses
    /// it as a store of cut-crossing windows to merge back later).
    pub(crate) fn filtered(&self, keep: impl Fn(&TimeWindow) -> bool) -> Self {
        let mut offsets = Vec::with_capacity(self.offsets.len().max(1));
        let mut flat = Vec::new();
        offsets.push(0);
        for local in 0..self.num_local_edges() {
            let (lo, hi) = (
                self.offsets[local] as usize,
                self.offsets[local + 1] as usize,
            );
            for w in &self.flat[lo..hi] {
                if keep(w) {
                    flat.push(*w);
                }
            }
            offsets.push(flat.len() as u32);
        }
        Self {
            k: self.k,
            range: self.range,
            offsets,
            flat,
            first_edge: self.first_edge,
        }
    }

    /// Number of local (in-range) edge slots in the CSR arrays.
    #[inline]
    fn num_local_edges(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// The query parameter `k` the skylines were built for.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The query range the skylines were built for.
    #[inline]
    pub fn range(&self) -> TimeWindow {
        self.range
    }

    /// The minimal core windows of a temporal edge, ordered by increasing
    /// start (and end) time.  Empty when the edge is outside the query range
    /// or never belongs to a temporal k-core.
    // tkc-lint: hot
    pub fn windows(&self, edge: EdgeId) -> &[TimeWindow] {
        let Some(local) = edge.checked_sub(self.first_edge) else {
            return &[];
        };
        let local = local as usize;
        if local + 1 >= self.offsets.len() {
            return &[];
        }
        &self.flat[self.offsets[local] as usize..self.offsets[local + 1] as usize]
    }

    /// Iterates `(edge id, skyline)` for every edge with a non-empty skyline.
    pub fn iter(&self) -> impl Iterator<Item = (EdgeId, &[TimeWindow])> + '_ {
        (0..self.num_local_edges()).filter_map(move |local| {
            let lo = self.offsets[local] as usize;
            let hi = self.offsets[local + 1] as usize;
            (lo < hi).then(|| (self.first_edge + local as EdgeId, &self.flat[lo..hi]))
        })
    }

    /// Total number of minimal core windows over all edges — the paper's `|ECS|`.
    #[inline]
    pub fn total_windows(&self) -> usize {
        self.flat.len()
    }

    /// Number of edges with at least one minimal core window.
    pub fn num_edges_with_windows(&self) -> usize {
        self.offsets.windows(2).filter(|p| p[0] < p[1]).count()
    }

    /// Approximate heap footprint in bytes (the flat window array plus the
    /// `u32` offset array).
    pub fn memory_bytes(&self) -> usize {
        self.flat.len() * std::mem::size_of::<TimeWindow>()
            + self.offsets.len() * std::mem::size_of::<u32>()
    }
}

#[inline]
fn edge_core_time(ct_u: Timestamp, ct_v: Timestamp, t: Timestamp) -> Timestamp {
    if ct_u == T_INFINITY || ct_v == T_INFINITY {
        T_INFINITY
    } else {
        ct_u.max(ct_v).max(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::edge_in_core_of_window;
    use temporal_graph::TemporalGraphBuilder;

    fn graph() -> TemporalGraph {
        TemporalGraphBuilder::new()
            .with_edges([
                (0u64, 1u64, 1i64),
                (1, 2, 2),
                (0, 2, 3),
                (2, 3, 4),
                (3, 4, 5),
                (2, 4, 6),
                (0, 1, 6),
                (1, 2, 7),
                (0, 2, 7),
            ])
            .build()
            .unwrap()
    }

    /// Brute-force skyline: all windows in which the edge is in the core and
    /// no proper sub-window has that property.
    fn naive_skyline(
        g: &TemporalGraph,
        k: usize,
        range: TimeWindow,
        edge: EdgeId,
    ) -> Vec<TimeWindow> {
        let core_windows: Vec<TimeWindow> = range
            .sub_windows()
            .filter(|&w| edge_in_core_of_window(g, k, w, edge))
            .collect();
        let mut minimal: Vec<TimeWindow> = core_windows
            .iter()
            .copied()
            .filter(|w| !core_windows.iter().any(|other| w.properly_contains(other)))
            .collect();
        minimal.sort();
        minimal
    }

    #[test]
    fn skylines_match_naive_definition() {
        let g = graph();
        for k in 1..=3 {
            for range in [g.span(), TimeWindow::new(2, 6), TimeWindow::new(3, 7)] {
                let ecs = EdgeCoreSkyline::build(&g, k, range);
                for id in 0..g.num_edges() as EdgeId {
                    let mut got = ecs.windows(id).to_vec();
                    got.sort();
                    assert_eq!(
                        got,
                        naive_skyline(&g, k, range, id),
                        "k={k} range={range} edge={id}"
                    );
                }
            }
        }
    }

    #[test]
    fn skyline_windows_strictly_increase() {
        let g = graph();
        let ecs = EdgeCoreSkyline::build(&g, 2, g.span());
        for (_, windows) in ecs.iter() {
            for pair in windows.windows(2) {
                assert!(pair[0].start() < pair[1].start());
                assert!(pair[0].end() < pair[1].end());
            }
        }
        assert_eq!(
            ecs.total_windows(),
            ecs.iter().map(|(_, w)| w.len()).sum::<usize>()
        );
        assert!(ecs.num_edges_with_windows() <= g.num_edges());
        assert!(ecs.memory_bytes() > 0);
    }

    #[test]
    fn csr_offsets_are_consistent() {
        let g = graph();
        for k in 1..=3 {
            let ecs = EdgeCoreSkyline::build(&g, k, g.span());
            assert_eq!(ecs.offsets.len(), g.num_edges() + 1);
            assert_eq!(ecs.offsets.first(), Some(&0));
            assert_eq!(
                ecs.offsets.last().copied().unwrap_or(0) as usize,
                ecs.flat.len()
            );
            assert!(ecs.offsets.windows(2).all(|p| p[0] <= p[1]));
            // windows() and the raw CSR slices agree.
            for id in 0..g.num_edges() as EdgeId {
                let local = id as usize;
                let lo = ecs.offsets[local] as usize;
                let hi = ecs.offsets[local + 1] as usize;
                assert_eq!(ecs.windows(id), &ecs.flat[lo..hi]);
            }
        }
    }

    #[test]
    fn edges_outside_range_have_no_windows() {
        let g = graph();
        let range = TimeWindow::new(3, 6);
        let ecs = EdgeCoreSkyline::build(&g, 2, range);
        for id in 0..g.num_edges() as EdgeId {
            let t = g.edge(id).t;
            if !range.contains(t) {
                assert!(ecs.windows(id).is_empty(), "edge {id} at t={t}");
            }
            for w in ecs.windows(id) {
                assert!(range.contains_window(w));
                assert!(w.contains(t));
            }
        }
    }

    #[test]
    fn out_of_span_range_yields_an_empty_skyline() {
        // Regression test: a query range lying entirely past tmax used to be
        // clamped to the degenerate window [start, start] and swept anyway.
        let g = graph(); // tmax = 7
        let empty_tail = TimeWindow::new(8, 42);
        let ecs = EdgeCoreSkyline::build(&g, 2, empty_tail);
        assert_eq!(ecs.total_windows(), 0);
        assert_eq!(ecs.num_edges_with_windows(), 0);
        assert_eq!(ecs.range(), empty_tail, "requested range is reported back");
        for id in 0..g.num_edges() as EdgeId {
            assert!(ecs.windows(id).is_empty());
        }
        assert_eq!(ecs.iter().count(), 0);
        // The enumerators agree: no cores in an empty tail.
        let mut sink = crate::sink::CountingSink::default();
        let stats = crate::enumerate(&g, &ecs, &mut sink);
        assert_eq!(stats.num_cores, 0);
    }

    #[test]
    fn restrict_matches_fresh_build_on_every_sub_range() {
        let g = graph();
        for k in 1..=3 {
            let span = EdgeCoreSkyline::build(&g, k, g.span());
            for sub in g.span().sub_windows() {
                let restricted = span.restrict(&g, sub);
                let fresh = EdgeCoreSkyline::build(&g, k, sub);
                assert_eq!(restricted.k(), fresh.k());
                assert_eq!(restricted.range(), sub);
                assert_eq!(
                    restricted.total_windows(),
                    fresh.total_windows(),
                    "k={k} sub={sub}"
                );
                for id in 0..g.num_edges() as EdgeId {
                    assert_eq!(
                        restricted.windows(id),
                        fresh.windows(id),
                        "k={k} sub={sub} edge={id}"
                    );
                }
            }
        }
    }

    #[test]
    fn scratch_recycling_preserves_results_and_reuses_capacity() {
        let g = graph();
        let span = EdgeCoreSkyline::build(&g, 2, g.span());
        let mut scratch = SkylineScratch::default();
        let first = span.restrict_with(&g, TimeWindow::new(2, 6), &mut scratch);
        let flat_ptr = first.flat.as_ptr();
        let expected = first.total_windows();
        scratch.recycle(first);
        // The second restriction reuses the recycled buffers (same backing
        // allocation) and produces identical results.
        let second = span.restrict_with(&g, TimeWindow::new(2, 6), &mut scratch);
        assert_eq!(second.total_windows(), expected);
        assert_eq!(second.flat.as_ptr(), flat_ptr, "capacity was recycled");
        let fresh = EdgeCoreSkyline::build(&g, 2, TimeWindow::new(2, 6));
        for id in 0..g.num_edges() as EdgeId {
            assert_eq!(second.windows(id), fresh.windows(id));
        }
    }

    #[test]
    #[should_panic(expected = "non-sub-range")]
    fn restrict_rejects_non_sub_ranges() {
        let g = graph();
        let ecs = EdgeCoreSkyline::build(&g, 2, TimeWindow::new(2, 5));
        let _ = ecs.restrict(&g, TimeWindow::new(1, 5));
    }

    #[test]
    fn accessors_report_parameters() {
        let g = graph();
        let range = TimeWindow::new(2, 7);
        let ecs = EdgeCoreSkyline::build(&g, 2, range);
        assert_eq!(ecs.k(), 2);
        assert_eq!(ecs.range(), range);
    }
}
