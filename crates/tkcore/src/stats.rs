//! Measurement helpers for the paper's size/complexity figures.
//!
//! Figure 4 compares `|VCT|`, `|VCT| · deg_avg` and the result size `|R|`;
//! Figures 9–11 report the number of temporal k-cores under varying
//! parameters.  [`FrameworkStats::measure`] computes all of these for one
//! `(graph, k, range)` configuration using the index structures and the
//! result-size-optimal enumerator.
//!
//! [`ShardProfile::measure`] adds the sharding dimension: per-shard skyline
//! sizes under a [`crate::ShardPlan`], used by the `experiments -- engine`
//! harness to show that the peak per-shard index footprint stays strictly
//! below the span-wide one.

use crate::ecs::EdgeCoreSkyline;
use crate::enumerate::enumerate;
use crate::error::TkError;
use crate::shard::ShardPlan;
use crate::sink::CountingSink;
use crate::vct::{CoreTimeSweep, VertexCoreTimeIndex};
use temporal_graph::{TemporalGraph, TimeWindow};

/// Sizes of the framework's intermediate structures and of the result set
/// for one query configuration.
#[derive(Debug, Clone, Copy)]
pub struct FrameworkStats {
    /// Number of entries in the vertex core time index (`|VCT|`).
    pub vct_entries: usize,
    /// Average distinct degree of the projected query-range graph (`deg_avg`).
    pub avg_degree: f64,
    /// `|VCT| * deg_avg`, the precomputation cost term of the paper.
    pub vct_times_avg_degree: f64,
    /// Total number of minimal core windows (`|ECS|`).
    pub ecs_windows: usize,
    /// Number of distinct temporal k-cores.
    pub num_cores: u64,
    /// Total number of edges over all cores (`|R|`).
    pub result_size: u64,
    /// Estimated bytes of the VCT index.
    pub vct_bytes: usize,
    /// Estimated bytes of the ECS structure.
    pub ecs_bytes: usize,
    /// Estimated bytes of the result set (edge ids over all cores).
    pub result_bytes: u64,
}

impl FrameworkStats {
    /// Measures every quantity for the given configuration.
    pub fn measure(graph: &TemporalGraph, k: usize, range: TimeWindow) -> Self {
        let vct = VertexCoreTimeIndex::build(graph, k, range);
        let mut sweep = CoreTimeSweep::new(graph, k, range);
        let ecs = EdgeCoreSkyline::build_from_sweep(graph, &mut sweep);
        let mut counter = CountingSink::default();
        enumerate(graph, &ecs, &mut counter);
        let avg_degree = graph.average_distinct_degree_in(range);
        Self {
            vct_entries: vct.size(),
            avg_degree,
            vct_times_avg_degree: vct.size() as f64 * avg_degree,
            ecs_windows: ecs.total_windows(),
            num_cores: counter.num_cores,
            result_size: counter.total_edges,
            vct_bytes: vct.memory_bytes(),
            ecs_bytes: ecs.memory_bytes(),
            result_bytes: counter.total_edges
                * std::mem::size_of::<temporal_graph::EdgeId>() as u64,
        }
    }
}

/// Size profile of one time-interval shard's skyline for a fixed `k`.
#[derive(Debug, Clone, Copy)]
pub struct ShardProfile {
    /// The shard's timeline interval.
    pub shard: TimeWindow,
    /// Edge occurrences falling inside the shard.
    pub num_edges: usize,
    /// Minimal core windows of the shard's skyline (`|ECS|` restricted to
    /// intra-shard windows).
    pub ecs_windows: usize,
    /// Estimated bytes of the shard's skyline.
    pub ecs_bytes: usize,
}

impl ShardProfile {
    /// Builds the skyline of every shard of `plan` for parameter `k` and
    /// reports their sizes, in timeline order.
    ///
    /// # Errors
    /// [`TkError::InvalidShardPlan`] when `plan` does not resolve against
    /// the graph.
    pub fn measure(
        graph: &TemporalGraph,
        k: usize,
        plan: &ShardPlan,
    ) -> Result<Vec<ShardProfile>, TkError> {
        Ok(plan
            .resolve(graph)?
            .into_iter()
            .map(|shard| {
                let ecs = EdgeCoreSkyline::build(graph, k, shard);
                ShardProfile {
                    shard,
                    num_edges: graph.num_edges_in(shard),
                    ecs_windows: ecs.total_windows(),
                    ecs_bytes: ecs.memory_bytes(),
                }
            })
            .collect())
    }
}

/// Ingest-side movement of the cache counters between two
/// [`crate::CacheStats`] readings — the delta the `tkc ingest --stats`
/// report and the ingest bench print per absorb burst.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestDelta {
    /// Tail-shard skylines dropped by absorbs in the interval.
    pub tail_invalidations: u64,
    /// Tail-touching boundary-stitch entries dropped in the interval.
    pub boundary_invalidations: u64,
    /// Tail seals in the interval.
    pub seals: u64,
    /// Shard skyline builds in the interval (rebuild work the
    /// invalidations induced, plus any cold warming).
    pub builds: u64,
    /// Net change of resident skyline bytes over the interval (negative
    /// when invalidation freed more than rebuilding re-added).
    pub resident_bytes_delta: i64,
}

impl IngestDelta {
    /// The counter movement from `before` to `after`.  Cumulative counters
    /// only grow, so the subtractions saturate rather than wrap if the
    /// readings are accidentally swapped.
    pub fn between(before: &crate::CacheStats, after: &crate::CacheStats) -> Self {
        let builds =
            |stats: &crate::CacheStats| -> u64 { stats.per_shard.iter().map(|s| s.builds).sum() };
        Self {
            tail_invalidations: after
                .tail_invalidations
                .saturating_sub(before.tail_invalidations),
            boundary_invalidations: after
                .boundary_invalidations
                .saturating_sub(before.boundary_invalidations),
            seals: after.seals.saturating_sub(before.seals),
            builds: builds(after).saturating_sub(builds(before)),
            resident_bytes_delta: after.resident_bytes as i64 - before.resident_bytes as i64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example;

    #[test]
    fn ingest_delta_reports_counter_movement() {
        let g = paper_example::graph();
        let engine = crate::ShardedEngine::new(g, crate::ShardPlan::ExplicitCuts(vec![4])).unwrap();
        engine.warm(2);
        let before = engine.cache_stats();
        engine.absorb(&[(1, 5, 8)]).unwrap();
        let after = engine.cache_stats();
        let delta = IngestDelta::between(&before, &after);
        assert_eq!(delta.tail_invalidations, 1);
        assert_eq!(delta.seals, 0);
        assert!(delta.resident_bytes_delta < 0, "tail skyline was freed");
        // Swapped readings saturate to zero instead of wrapping.
        let swapped = IngestDelta::between(&after, &before);
        assert_eq!(swapped.tail_invalidations, 0);
    }

    #[test]
    fn shard_profiles_cover_the_timeline_and_shrink_the_skyline() {
        let g = paper_example::graph();
        let span = EdgeCoreSkyline::build(&g, 2, g.span());
        let profiles = ShardProfile::measure(&g, 2, &ShardPlan::FixedCount(3)).unwrap();
        assert_eq!(profiles.len(), 3);
        assert_eq!(profiles.first().unwrap().shard.start(), 1);
        assert_eq!(profiles.last().unwrap().shard.end(), g.tmax());
        let total_edges: usize = profiles.iter().map(|p| p.num_edges).sum();
        assert_eq!(total_edges, g.num_edges());
        // Per-shard skylines drop every cut-crossing window, so each shard
        // is strictly smaller than the span-wide index, and so is their sum.
        let total_windows: usize = profiles.iter().map(|p| p.ecs_windows).sum();
        assert!(total_windows <= span.total_windows());
        for profile in &profiles {
            assert!(profile.ecs_bytes < span.memory_bytes(), "{profile:?}");
        }
        assert!(matches!(
            ShardProfile::measure(&g, 2, &ShardPlan::FixedCount(0)),
            Err(TkError::InvalidShardPlan { .. })
        ));
    }

    #[test]
    fn measures_the_running_example() {
        let g = paper_example::graph();
        let stats = FrameworkStats::measure(&g, 2, paper_example::full_range());
        // Corrected Table I has 24 entries; Table II has 18 windows.
        assert_eq!(stats.vct_entries, 24);
        assert_eq!(stats.ecs_windows, 18);
        assert!(stats.num_cores >= 2);
        assert!(stats.result_size >= stats.num_cores);
        assert!(stats.avg_degree > 0.0);
        assert!(stats.vct_times_avg_degree > 0.0);
        assert!(stats.vct_bytes > 0 && stats.ecs_bytes > 0 && stats.result_bytes > 0);
    }

    #[test]
    fn larger_k_shrinks_everything() {
        let g = paper_example::graph();
        let s2 = FrameworkStats::measure(&g, 2, paper_example::full_range());
        let s3 = FrameworkStats::measure(&g, 3, paper_example::full_range());
        assert!(s3.vct_entries <= s2.vct_entries);
        assert!(s3.ecs_windows <= s2.ecs_windows);
        assert!(s3.result_size <= s2.result_size);
    }
}
