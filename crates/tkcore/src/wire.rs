//! The line-delimited JSON wire protocol of `tkc serve`.
//!
//! The offline build environment has no serde, so this module hand-rolls
//! the small JSON subset the protocol needs: a recursive-descent parser
//! into [`JsonValue`] for inbound request lines, and direct string
//! rendering for outbound reply lines (replies are built with integer
//! formatting, never through `f64`, so counters round-trip exactly).
//!
//! # Protocol
//!
//! One request per line, one reply line per request, in order.  A request
//! is a JSON object with an `"op"` field (default `"query"`):
//!
//! | op           | fields                                                    |
//! |--------------|-----------------------------------------------------------|
//! | `"query"`    | `"k"` *or* `"k_min"`/`"k_max"`, `"start"`, `"end"`, and optionally `"id"`, `"lane"` (`"interactive"` \| `"batch"`), `"deadline_ms"`, `"algo"`, `"output"` (`"count"` \| `"cores"`) |
//! | `"ping"`     | none                                                      |
//! | `"stats"`    | none                                                      |
//! | `"shutdown"` | none                                                      |
//!
//! A query reply carries `"status": "ok"`, the echoed client `"id"` (when
//! one was sent), the service-assigned `"request"` id, the executed
//! `"window"`, per-`k` `"outcomes"` (`k`, `cores`, `result_edges`, plus up
//! to [`WireConfig::max_cores_per_reply`] materialized `{"tti", "edges"}`
//! entries for `"output": "cores"`), and the `"queue_wait_us"` /
//! `"execute_us"` / `"worker"` accounting of the [`ServiceReply`].
//!
//! A refused or failed request replies `"status": "error"` with the stable
//! [`TkError::code`] in `"error"` and the human rendering in `"detail"` —
//! shedding is data, not a connection failure, so the connection stays
//! open.  Malformed lines reply with `"error": "BadRequest"`.

use std::time::Duration;

use crate::error::TkError;
use crate::query::Algorithm;
use crate::request::{KOutput, QueryRequest};
use crate::service::{Lane, ServiceReply, ServiceStats};
use temporal_graph::Timestamp;

/// Per-connection wire options of the server.
#[derive(Debug, Clone, Copy)]
pub struct WireConfig {
    /// Materialized (`"output": "cores"`) replies embed at most this many
    /// cores per `k`; the `cores` count still reports all of them.
    pub max_cores_per_reply: usize,
}

impl Default for WireConfig {
    fn default() -> Self {
        Self {
            max_cores_per_reply: 64,
        }
    }
}

/// A parsed JSON value (the subset the protocol needs; numbers are `f64`).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member `key` of an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find_map(|(k, v)| (k == key).then_some(v)),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number as a `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9e15 => Some(*n as u64),
            _ => None,
        }
    }
}

/// Parses one JSON document, requiring it to span the whole input.
///
/// # Errors
/// A human-readable description of the first syntax error.
pub fn parse_json(input: &str) -> Result<JsonValue, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing input at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(JsonValue::String),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("expected `{literal}` at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(JsonValue::Number)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape")?;
                        // Surrogate pairs are not needed by the protocol;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err("invalid escape".into()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8 sequences pass through unchanged.
                let text = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let ch = text.chars().next().ok_or("unterminated string")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // '{'
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(members));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        members.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(members));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

/// Escapes `text` as the body of a JSON string literal.
pub fn escape_json(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// One decoded request line.
#[derive(Debug)]
pub enum WireRequest {
    /// Liveness probe; replies immediately without touching the service.
    Ping,
    /// Snapshot of the service's [`ServiceStats`].
    Stats,
    /// Ask the server to drain and stop accepting connections.
    Shutdown,
    /// A query to submit to the service.
    Query(WireQuery),
}

/// The payload of a `"query"` request line.
#[derive(Debug)]
pub struct WireQuery {
    /// Client-chosen correlation id, echoed in the reply.
    pub client_id: Option<u64>,
    /// The decoded request (window, `k` selection, output mode).
    pub request: QueryRequest,
    /// The algorithm to execute with.
    pub algorithm: Algorithm,
    /// The priority lane the request queues in.
    pub lane: Lane,
    /// Relative deadline decoded from `"deadline_ms"`.
    pub deadline: Option<Duration>,
}

/// Decodes one request line.
///
/// # Errors
/// A human-readable description of why the line is malformed; the server
/// renders it as a `"BadRequest"` error reply.
pub fn parse_request(line: &str) -> Result<WireRequest, String> {
    let value = parse_json(line)?;
    if !matches!(value, JsonValue::Object(_)) {
        return Err("a request must be a JSON object".into());
    }
    match value.get("op").and_then(JsonValue::as_str) {
        Some("ping") => return Ok(WireRequest::Ping),
        Some("stats") => return Ok(WireRequest::Stats),
        Some("shutdown") => return Ok(WireRequest::Shutdown),
        Some("query") | None => {}
        Some(other) => return Err(format!("unknown op `{other}`")),
    }
    let client_id = value.get("id").and_then(JsonValue::as_u64);
    let timestamp = |key: &str| -> Result<Timestamp, String> {
        value
            .get(key)
            .and_then(JsonValue::as_u64)
            .and_then(|t| Timestamp::try_from(t).ok())
            .ok_or_else(|| format!("query needs an integer `{key}` timestamp"))
    };
    let start = timestamp("start")?;
    let end = timestamp("end")?;
    let mut request = match (
        value.get("k").and_then(JsonValue::as_u64),
        value.get("k_min").and_then(JsonValue::as_u64),
        value.get("k_max").and_then(JsonValue::as_u64),
    ) {
        (Some(k), None, None) => QueryRequest::single(k as usize, start, end),
        (None, Some(lo), Some(hi)) => QueryRequest::sweep(lo as usize..=hi as usize, start, end),
        (None, None, None) => return Err("query needs `k` or `k_min`/`k_max`".into()),
        _ => return Err("give either `k` or both `k_min` and `k_max`".into()),
    };
    request = match value.get("output").and_then(JsonValue::as_str) {
        None | Some("count") => request.count(),
        Some("cores") | Some("full") => request.materialize(),
        Some(other) => return Err(format!("unknown output `{other}` (count or cores)")),
    };
    let algorithm = match value.get("algo").and_then(JsonValue::as_str) {
        None => Algorithm::Enum,
        Some(name) => name
            .parse::<Algorithm>()
            .map_err(|_| format!("unknown algorithm `{name}`"))?,
    };
    let lane = match value.get("lane").and_then(JsonValue::as_str) {
        None => Lane::Interactive,
        Some(name) => name.parse::<Lane>()?,
    };
    let deadline = match value.get("deadline_ms") {
        None | Some(JsonValue::Null) => None,
        Some(v) => Some(Duration::from_millis(v.as_u64().ok_or(
            "`deadline_ms` must be a non-negative integer of milliseconds",
        )?)),
    };
    Ok(WireRequest::Query(WireQuery {
        client_id,
        request,
        algorithm,
        lane,
        deadline,
    }))
}

/// Renders the leading `"status": "ok"` + optional client id of a reply.
fn reply_head(client_id: Option<u64>) -> String {
    match client_id {
        Some(id) => format!("{{\"status\":\"ok\",\"id\":{id}"),
        None => "{\"status\":\"ok\"".to_string(),
    }
}

/// Renders one completed [`ServiceReply`] as a reply line (no trailing
/// newline).
pub fn render_reply(client_id: Option<u64>, reply: &ServiceReply, config: &WireConfig) -> String {
    let mut out = reply_head(client_id);
    out.push_str(&format!(
        ",\"request\":\"{}\",\"window\":[{},{}],\"outcomes\":[",
        reply.id,
        reply.response.window.start(),
        reply.response.window.end()
    ));
    for (i, outcome) in reply.response.outcomes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let (cores, result_edges) = match &outcome.output {
            KOutput::Cores(cores) => (
                cores.len() as u64,
                cores.iter().map(|c| c.num_edges() as u64).sum(),
            ),
            KOutput::Counts(counts) => (counts.num_cores, counts.total_edges),
            KOutput::Streamed => (outcome.stats.num_cores, outcome.stats.total_result_edges),
        };
        out.push_str(&format!(
            "{{\"k\":{},\"cores\":{cores},\"result_edges\":{result_edges}",
            outcome.k
        ));
        if let KOutput::Cores(cores) = &outcome.output {
            out.push_str(",\"sample\":[");
            for (j, core) in cores.iter().take(config.max_cores_per_reply).enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"tti\":[{},{}],\"edges\":{}}}",
                    core.tti.start(),
                    core.tti.end(),
                    core.num_edges()
                ));
            }
            out.push(']');
        }
        out.push('}');
    }
    out.push_str(&format!(
        "],\"queue_wait_us\":{},\"execute_us\":{},\"worker\":{}}}",
        reply.queue_wait.as_micros(),
        reply.execute_time.as_micros(),
        reply.worker
    ));
    out
}

/// Renders a typed error as a reply line (no trailing newline).
pub fn render_error(client_id: Option<u64>, error: &TkError) -> String {
    render_error_code(client_id, error.code(), &error.to_string())
}

/// Renders an error reply from a raw code + detail (used for `BadRequest`,
/// which has no [`TkError`] variant — it never reached the service).
pub fn render_error_code(client_id: Option<u64>, code: &str, detail: &str) -> String {
    let head = match client_id {
        Some(id) => format!("{{\"status\":\"error\",\"id\":{id}"),
        None => "{\"status\":\"error\"".to_string(),
    };
    format!(
        "{head},\"error\":\"{}\",\"detail\":\"{}\"}}",
        escape_json(code),
        escape_json(detail)
    )
}

/// Renders the reply to a `"ping"` or `"shutdown"` op.
pub fn render_ack(op: &str) -> String {
    format!("{{\"status\":\"ok\",\"op\":\"{}\"}}", escape_json(op))
}

/// Renders a [`ServiceStats`] snapshot as the reply to a `"stats"` op.
pub fn render_stats(stats: &ServiceStats) -> String {
    let lane = |lane: Lane| {
        let l = stats.lane(lane);
        format!(
            "{{\"admitted\":{},\"completed\":{},\"shed\":{},\"rejected\":{}}}",
            l.admitted, l.completed, l.shed, l.rejected
        )
    };
    format!(
        "{{\"status\":\"ok\",\"op\":\"stats\",\"admitted\":{},\"completed\":{},\"shed\":{},\
         \"rejected\":{},\"panicked\":{},\"max_queue_depth\":{},\
         \"lanes\":{{\"interactive\":{},\"batch\":{}}},\
         \"ingest\":{{\"submitted\":{},\"completed\":{},\"failed\":{},\"events_appended\":{},\
         \"seals\":{}}}}}",
        stats.admitted,
        stats.completed,
        stats.shed,
        stats.rejected,
        stats.panicked,
        stats.max_queue_depth,
        lane(Lane::Interactive),
        lane(Lane::Batch),
        stats.ingest.submitted,
        stats.ingest.completed,
        stats.ingest.failed,
        stats.ingest.events_appended,
        stats.ingest.seals,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_and_nested_objects() {
        let value =
            parse_json(r#"{"k": 2, "ok": true, "name": "a\"b\nA", "xs": [1, 2.5, null], "o": {}}"#)
                .unwrap();
        assert_eq!(value.get("k").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(value.get("ok"), Some(&JsonValue::Bool(true)));
        assert_eq!(
            value.get("name").and_then(JsonValue::as_str),
            Some("a\"b\nA")
        );
        let JsonValue::Array(xs) = value.get("xs").unwrap() else {
            panic!("array");
        };
        assert_eq!(xs.len(), 3);
        assert_eq!(xs[2], JsonValue::Null);
    }

    #[test]
    fn rejects_malformed_documents() {
        for line in [
            "",
            "{",
            "{\"a\": }",
            "{\"a\": 1,}",
            "[1, 2",
            "\"unterminated",
            "{\"a\": 1} trailing",
            "nope",
        ] {
            assert!(parse_json(line).is_err(), "{line:?} should not parse");
        }
    }

    #[test]
    fn escape_round_trips_through_the_parser() {
        let nasty = "quote \" backslash \\ newline \n tab \t control \u{1}";
        let doc = format!("{{\"s\":\"{}\"}}", escape_json(nasty));
        let value = parse_json(&doc).unwrap();
        assert_eq!(value.get("s").and_then(JsonValue::as_str), Some(nasty));
    }

    #[test]
    fn parses_a_full_query_line() {
        let line = r#"{"id": 7, "k": 2, "start": 1, "end": 4, "lane": "batch",
                       "deadline_ms": 250, "algo": "enum", "output": "cores"}"#;
        let WireRequest::Query(query) = parse_request(line).unwrap() else {
            panic!("query");
        };
        assert_eq!(query.client_id, Some(7));
        assert_eq!(query.lane, Lane::Batch);
        assert_eq!(query.deadline, Some(Duration::from_millis(250)));
        assert_eq!(query.algorithm, Algorithm::Enum);
    }

    #[test]
    fn parses_ops_and_defaults() {
        assert!(matches!(
            parse_request(r#"{"op": "ping"}"#).unwrap(),
            WireRequest::Ping
        ));
        assert!(matches!(
            parse_request(r#"{"op": "stats"}"#).unwrap(),
            WireRequest::Stats
        ));
        assert!(matches!(
            parse_request(r#"{"op": "shutdown"}"#).unwrap(),
            WireRequest::Shutdown
        ));
        let WireRequest::Query(query) = parse_request(r#"{"k": 1, "start": 1, "end": 3}"#).unwrap()
        else {
            panic!("query");
        };
        assert_eq!(query.lane, Lane::Interactive);
        assert_eq!(query.deadline, None);
        assert_eq!(query.client_id, None);
    }

    #[test]
    fn malformed_requests_name_the_defect() {
        for (line, needle) in [
            ("{}", "start"),
            (r#"{"start": 1, "end": 4}"#, "k"),
            (
                r#"{"k": 1, "k_min": 1, "k_max": 2, "start": 1, "end": 4}"#,
                "either",
            ),
            (
                r#"{"k": 1, "start": 1, "end": 4, "lane": "express"}"#,
                "express",
            ),
            (r#"{"k": 1, "start": 1, "end": 4, "output": "xml"}"#, "xml"),
            (r#"{"op": "teleport"}"#, "teleport"),
            (
                r#"{"k": 1, "start": 1, "end": 4, "deadline_ms": -5}"#,
                "deadline_ms",
            ),
            ("[1]", "object"),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn error_replies_carry_the_stable_code() {
        let line = render_error(
            Some(3),
            &TkError::DeadlineExceeded {
                deadline: Duration::from_millis(5),
                waited: Duration::from_millis(8),
            },
        );
        let value = parse_json(&line).unwrap();
        assert_eq!(
            value.get("status").and_then(JsonValue::as_str),
            Some("error")
        );
        assert_eq!(value.get("id").and_then(JsonValue::as_u64), Some(3));
        assert_eq!(
            value.get("error").and_then(JsonValue::as_str),
            Some("DeadlineExceeded")
        );
        let bad = render_error_code(None, "BadRequest", "no \"op\"");
        assert!(parse_json(&bad).is_ok(), "{bad}");
    }

    #[test]
    fn stats_replies_parse_and_sum() {
        let mut stats = ServiceStats {
            admitted: 5,
            ..ServiceStats::default()
        };
        stats.per_lane[Lane::Interactive.index()].admitted = 3;
        stats.per_lane[Lane::Batch.index()].admitted = 2;
        let value = parse_json(&render_stats(&stats)).unwrap();
        assert_eq!(value.get("admitted").and_then(JsonValue::as_u64), Some(5));
        let lanes = value.get("lanes").unwrap();
        assert_eq!(
            lanes
                .get("interactive")
                .and_then(|l| l.get("admitted"))
                .and_then(JsonValue::as_u64),
            Some(3)
        );
    }
}
