//! Query parameters and per-execution statistics.
//!
//! [`TimeRangeKCoreQuery`] bundles the two query parameters of the paper's
//! problem statement — the integer `k` and the time range `[Ts, Te]` — and
//! runs any of the implemented algorithms against a [`TemporalGraph`],
//! reporting per-phase timings and memory estimates.  It is the low-level
//! carrier used by [`crate::QueryEngine`]; application code should prefer the
//! richer, fallible [`crate::QueryRequest`] front end.

use crate::ecs::EdgeCoreSkyline;
use crate::enum_base::enumerate_base;
use crate::enumerate::enumerate;
use crate::error::TkError;
use crate::naive::enumerate_naive;
use crate::otcd::run_otcd;
use crate::sink::ResultSink;
use std::fmt;
use std::str::FromStr;
use std::time::{Duration, Instant};
use temporal_graph::{TemporalGraph, TimeWindow};

/// The algorithms available for time-range temporal k-core enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// The paper's final algorithm: core-time precomputation (Algorithm 2)
    /// followed by result-size-optimal enumeration (Algorithms 4–5).
    Enum,
    /// The paper's baseline on the same framework: skyline precomputation
    /// followed by the window-scanning enumeration of Algorithm 3.
    EnumBase,
    /// The state-of-the-art competitor OTCD (Algorithm 1).
    Otcd,
    /// Brute-force reference (per-window peeling); only for small inputs.
    Naive,
}

impl Algorithm {
    /// All algorithms, in the order the paper's figures report them.
    pub const ALL: [Algorithm; 4] = [
        Algorithm::Otcd,
        Algorithm::EnumBase,
        Algorithm::Enum,
        Algorithm::Naive,
    ];

    /// Short display name used by the benchmark harness.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Enum => "Enum",
            Algorithm::EnumBase => "EnumBase",
            Algorithm::Otcd => "OTCD",
            Algorithm::Naive => "Naive",
        }
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Algorithm {
    type Err = TkError;

    /// Parses an algorithm name case-insensitively, ignoring `-` and `_`
    /// separators: `enum`, `Enum-Base`, `enumbase`, `OTCD`, `naive` all work,
    /// so every [`Algorithm::name`] round-trips.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let folded: String = s
            .chars()
            .filter(|c| *c != '-' && *c != '_')
            .map(|c| c.to_ascii_lowercase())
            .collect();
        match folded.as_str() {
            "enum" => Ok(Algorithm::Enum),
            "enumbase" => Ok(Algorithm::EnumBase),
            "otcd" => Ok(Algorithm::Otcd),
            "naive" => Ok(Algorithm::Naive),
            _ => Err(TkError::UnknownAlgorithm { name: s.into() }),
        }
    }
}

/// Timings, counts and memory estimates of one query execution.
#[derive(Debug, Clone, Copy)]
pub struct QueryStats {
    /// The algorithm that produced these statistics.
    pub algorithm: Algorithm,
    /// Number of distinct temporal k-cores.
    pub num_cores: u64,
    /// Total number of edges over all cores (the paper's `|R|`).
    pub total_result_edges: u64,
    /// Time spent in precomputation (the CoreTime phase building the edge
    /// core window skyline); zero for OTCD and the naive reference.
    pub precompute_time: Duration,
    /// Time spent enumerating results.
    pub enumerate_time: Duration,
    /// Estimated peak heap footprint of the algorithm's working structures.
    pub peak_memory_bytes: usize,
}

impl QueryStats {
    /// Total wall-clock time (precomputation plus enumeration).
    pub fn total_time(&self) -> Duration {
        self.precompute_time + self.enumerate_time
    }

    pub(crate) fn zeroed(algorithm: Algorithm) -> Self {
        QueryStats {
            algorithm,
            num_cores: 0,
            total_result_edges: 0,
            precompute_time: Duration::ZERO,
            enumerate_time: Duration::ZERO,
            peak_memory_bytes: 0,
        }
    }
}

/// A time-range temporal k-core query: all distinct temporal k-cores of any
/// sub-window of `range`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeRangeKCoreQuery {
    k: usize,
    range: TimeWindow,
}

impl TimeRangeKCoreQuery {
    /// Creates a query for parameter `k` over the given time range.
    ///
    /// # Errors
    /// Returns [`TkError::KOutOfRange`] if `k == 0` (a 0-core is the whole
    /// projected graph and is not a meaningful cohesive-subgraph query).
    pub fn new(k: usize, range: TimeWindow) -> Result<Self, TkError> {
        if k == 0 {
            return Err(TkError::KOutOfRange { k });
        }
        Ok(Self { k, range })
    }

    /// Internal constructor for parameters already validated elsewhere
    /// (`k >= 1` guaranteed by the caller).
    pub(crate) fn validated(k: usize, range: TimeWindow) -> Self {
        debug_assert!(k >= 1);
        Self { k, range }
    }

    /// The query parameter `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The query time range.
    pub fn range(&self) -> TimeWindow {
        self.range
    }

    /// Runs a skyline-based algorithm (`Enum` or `EnumBase`) over an
    /// already-built [`EdgeCoreSkyline`] for this query's `(k, range)`,
    /// streaming results into `sink`.
    ///
    /// The reported `precompute_time` is zero — the index was paid for
    /// elsewhere (built directly, or restricted from a cached superset-range
    /// index by [`crate::QueryEngine`]).
    ///
    /// # Errors
    /// Returns [`TkError::SkylineMismatch`] if the skyline's parameters do
    /// not match the query, and [`TkError::UnsupportedAlgorithm`] if
    /// `algorithm` is not skyline-based (`Otcd` and `Naive` have no
    /// precomputed index to run from).
    pub fn run_with_skyline(
        &self,
        graph: &TemporalGraph,
        skyline: &EdgeCoreSkyline,
        algorithm: Algorithm,
        sink: &mut dyn ResultSink,
    ) -> Result<QueryStats, TkError> {
        if skyline.k() != self.k {
            return Err(TkError::SkylineMismatch {
                detail: format!(
                    "skyline built for k = {}, query has k = {}",
                    skyline.k(),
                    self.k
                ),
            });
        }
        if skyline.range() != self.range {
            return Err(TkError::SkylineMismatch {
                detail: format!(
                    "skyline built for range {}, query has range {}",
                    skyline.range(),
                    self.range
                ),
            });
        }
        let mut stats = QueryStats::zeroed(algorithm);
        let t0 = Instant::now();
        let run = match algorithm {
            Algorithm::Enum => enumerate(graph, skyline, sink),
            Algorithm::EnumBase => {
                let base = enumerate_base(graph, skyline, sink);
                crate::enumerate::EnumStats {
                    num_cores: base.num_cores,
                    total_edges: base.total_edges,
                    skyline_windows: skyline.total_windows() as u64,
                    peak_memory_bytes: base.peak_memory_bytes,
                }
            }
            other => {
                return Err(TkError::UnsupportedAlgorithm {
                    algorithm: other,
                    operation: "execution from a precomputed skyline",
                })
            }
        };
        stats.enumerate_time = t0.elapsed();
        stats.num_cores = run.num_cores;
        stats.total_result_edges = run.total_edges;
        stats.peak_memory_bytes = run.peak_memory_bytes;
        Ok(stats)
    }

    /// Runs the chosen algorithm, streaming results into `sink`.
    ///
    /// This never panics: the constructor guarantees `k >= 1`, and ranges
    /// reaching past the graph's last timestamp simply yield no results (the
    /// skyline build returns an empty index for them).  For typed rejection
    /// of degenerate windows, go through [`crate::QueryRequest`] instead.
    pub fn run_with(
        &self,
        graph: &TemporalGraph,
        algorithm: Algorithm,
        sink: &mut dyn ResultSink,
    ) -> QueryStats {
        let mut stats = QueryStats::zeroed(algorithm);
        match algorithm {
            Algorithm::Enum => {
                let t0 = Instant::now();
                let ecs = EdgeCoreSkyline::build(graph, self.k, self.range);
                stats.precompute_time = t0.elapsed();
                let t1 = Instant::now();
                let run = enumerate(graph, &ecs, sink);
                stats.enumerate_time = t1.elapsed();
                stats.num_cores = run.num_cores;
                stats.total_result_edges = run.total_edges;
                stats.peak_memory_bytes = run.peak_memory_bytes;
            }
            Algorithm::EnumBase => {
                let t0 = Instant::now();
                let ecs = EdgeCoreSkyline::build(graph, self.k, self.range);
                stats.precompute_time = t0.elapsed();
                let t1 = Instant::now();
                let run = enumerate_base(graph, &ecs, sink);
                stats.enumerate_time = t1.elapsed();
                stats.num_cores = run.num_cores;
                stats.total_result_edges = run.total_edges;
                stats.peak_memory_bytes = run.peak_memory_bytes;
            }
            Algorithm::Otcd => {
                let t1 = Instant::now();
                let run = run_otcd(graph, self.k, self.range, sink);
                stats.enumerate_time = t1.elapsed();
                stats.num_cores = run.num_cores;
                stats.total_result_edges = run.total_edges;
                stats.peak_memory_bytes = run.peak_memory_bytes;
            }
            Algorithm::Naive => {
                let t1 = Instant::now();
                let mut counter = CountingForwarder {
                    inner: sink,
                    cores: 0,
                    edges: 0,
                };
                enumerate_naive(graph, self.k, self.range, &mut counter);
                stats.enumerate_time = t1.elapsed();
                stats.num_cores = counter.cores;
                stats.total_result_edges = counter.edges;
                stats.peak_memory_bytes = 0;
            }
        }
        stats
    }
}

/// Wraps a sink while counting what flows through it (used for the naive
/// reference, whose entry point does not report statistics itself).
struct CountingForwarder<'a> {
    inner: &'a mut dyn ResultSink,
    cores: u64,
    edges: u64,
}

impl ResultSink for CountingForwarder<'_> {
    fn emit(&mut self, tti: TimeWindow, edges: &[temporal_graph::EdgeId]) {
        self.cores += 1;
        self.edges += edges.len() as u64;
        self.inner.emit(tti, edges);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example;
    use crate::sink::CountingSink;

    #[test]
    fn accessors_and_counts_match_figure_2() {
        let g = paper_example::graph();
        let query = TimeRangeKCoreQuery::new(2, paper_example::example_query_range()).unwrap();
        assert_eq!(query.k(), 2);
        assert_eq!(query.range(), paper_example::example_query_range());
        let mut sink = CountingSink::default();
        query.run_with(&g, Algorithm::Enum, &mut sink);
        assert_eq!(sink.num_cores, 2);
        assert_eq!(sink.total_edges, 9); // 6 + 3 edges (Figure 2)
    }

    #[test]
    fn all_algorithms_produce_identical_counts() {
        let g = paper_example::graph();
        let query = TimeRangeKCoreQuery::new(2, paper_example::full_range()).unwrap();
        let mut counts = Vec::new();
        for algo in Algorithm::ALL {
            let mut sink = CountingSink::default();
            let stats = query.run_with(&g, algo, &mut sink);
            assert_eq!(stats.num_cores, sink.num_cores, "{}", algo.name());
            assert_eq!(stats.total_result_edges, sink.total_edges);
            assert!(stats.total_time() >= stats.enumerate_time);
            counts.push((sink.num_cores, sink.total_edges));
        }
        assert!(
            counts.windows(2).all(|w| w[0] == w[1]),
            "counts: {counts:?}"
        );
    }

    #[test]
    fn zero_k_is_a_typed_error() {
        let err = TimeRangeKCoreQuery::new(0, TimeWindow::new(1, 5)).unwrap_err();
        assert_eq!(err, TkError::KOutOfRange { k: 0 });
    }

    #[test]
    fn run_with_skyline_rejects_mismatches_and_indexless_algorithms() {
        let g = paper_example::graph();
        let skyline = EdgeCoreSkyline::build(&g, 2, paper_example::full_range());
        let wrong_k = TimeRangeKCoreQuery::new(3, paper_example::full_range()).unwrap();
        let mut sink = CountingSink::default();
        assert!(matches!(
            wrong_k.run_with_skyline(&g, &skyline, Algorithm::Enum, &mut sink),
            Err(TkError::SkylineMismatch { .. })
        ));
        let wrong_range =
            TimeRangeKCoreQuery::new(2, paper_example::example_query_range()).unwrap();
        assert!(matches!(
            wrong_range.run_with_skyline(&g, &skyline, Algorithm::Enum, &mut sink),
            Err(TkError::SkylineMismatch { .. })
        ));
        let matching = TimeRangeKCoreQuery::new(2, paper_example::full_range()).unwrap();
        assert!(matches!(
            matching.run_with_skyline(&g, &skyline, Algorithm::Otcd, &mut sink),
            Err(TkError::UnsupportedAlgorithm { .. })
        ));
        assert!(matching
            .run_with_skyline(&g, &skyline, Algorithm::Enum, &mut sink)
            .is_ok());
    }

    #[test]
    fn algorithm_names_are_stable() {
        assert_eq!(Algorithm::Enum.name(), "Enum");
        assert_eq!(Algorithm::EnumBase.name(), "EnumBase");
        assert_eq!(Algorithm::Otcd.name(), "OTCD");
        assert_eq!(Algorithm::Naive.name(), "Naive");
        assert_eq!(Algorithm::ALL.len(), 4);
    }

    #[test]
    fn algorithm_display_round_trips_through_from_str() {
        for algo in Algorithm::ALL {
            let rendered = algo.to_string();
            assert_eq!(rendered, algo.name());
            assert_eq!(rendered.parse::<Algorithm>().unwrap(), algo, "{rendered}");
        }
    }

    #[test]
    fn algorithm_parsing_is_case_and_separator_insensitive() {
        for (input, expected) in [
            ("enum", Algorithm::Enum),
            ("ENUM", Algorithm::Enum),
            ("enum-base", Algorithm::EnumBase),
            ("enum_base", Algorithm::EnumBase),
            ("EnumBase", Algorithm::EnumBase),
            ("otcd", Algorithm::Otcd),
            ("OTCD", Algorithm::Otcd),
            ("Naive", Algorithm::Naive),
        ] {
            assert_eq!(input.parse::<Algorithm>().unwrap(), expected, "{input}");
        }
        assert!(matches!(
            "magic".parse::<Algorithm>(),
            Err(TkError::UnknownAlgorithm { name }) if name == "magic"
        ));
    }
}
