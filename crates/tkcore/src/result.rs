use temporal_graph::{EdgeId, TemporalGraph, TimeWindow, VertexId};

/// A single temporal k-core result.
///
/// A temporal k-core is identified by its set of temporal edges (two results
/// with the same edge set are the same core) and is reported together with
/// its *Tightest Time Interval* (TTI): the minimal time window containing all
/// of its edges.  There is a one-to-one correspondence between a temporal
/// k-core and its TTI (Section V-B of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TemporalKCore {
    /// Tightest time interval of the core.
    pub tti: TimeWindow,
    /// Ids of the temporal edges forming the core, sorted ascending.
    pub edges: Vec<EdgeId>,
}

impl TemporalKCore {
    /// Creates a result, normalising the edge order.
    pub fn new(tti: TimeWindow, mut edges: Vec<EdgeId>) -> Self {
        edges.sort_unstable();
        edges.dedup();
        Self { tti, edges }
    }

    /// Number of temporal edges in the core (the unit in which the paper
    /// measures the total result size `|R|`).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The distinct vertices spanned by the core, sorted ascending.
    pub fn vertices(&self, graph: &TemporalGraph) -> Vec<VertexId> {
        let mut vs: Vec<VertexId> = self
            .edges
            .iter()
            .flat_map(|&e| {
                let edge = graph.edge(e);
                [edge.u, edge.v]
            })
            .collect();
        vs.sort_unstable();
        vs.dedup();
        vs
    }

    /// Does the core contain the given temporal edge?
    pub fn contains_edge(&self, edge: EdgeId) -> bool {
        self.edges.binary_search(&edge).is_ok()
    }

    /// Recomputes the tightest time interval from the edge timestamps and
    /// checks it matches the stored TTI (used by tests / debug assertions).
    pub fn tti_is_tight(&self, graph: &TemporalGraph) -> bool {
        let Some(min_t) = self.edges.iter().map(|&e| graph.edge(e).t).min() else {
            return false;
        };
        // tkc-lint: allow(no-panic-api) — max exists on the same non-empty iterator that produced min
        let max_t = self.edges.iter().map(|&e| graph.edge(e).t).max().unwrap();
        self.tti == TimeWindow::new(min_t, max_t)
    }

    /// Checks the defining property: every vertex of the core has at least
    /// `k` distinct neighbours within the core (used by tests).
    pub fn is_valid_k_core(&self, graph: &TemporalGraph, k: usize) -> bool {
        use std::collections::HashMap;
        let mut neighbors: HashMap<VertexId, std::collections::HashSet<VertexId>> = HashMap::new();
        for &e in &self.edges {
            let edge = graph.edge(e);
            neighbors.entry(edge.u).or_default().insert(edge.v);
            neighbors.entry(edge.v).or_default().insert(edge.u);
        }
        neighbors.values().all(|ns| ns.len() >= k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use temporal_graph::TemporalGraphBuilder;

    fn triangle() -> TemporalGraph {
        TemporalGraphBuilder::new()
            .with_edges([(0u64, 1u64, 1i64), (1, 2, 2), (0, 2, 3)])
            .build()
            .unwrap()
    }

    #[test]
    fn normalises_edges_and_reports_vertices() {
        let g = triangle();
        let core = TemporalKCore::new(TimeWindow::new(1, 3), vec![2, 0, 1, 1]);
        assert_eq!(core.edges, vec![0, 1, 2]);
        assert_eq!(core.num_edges(), 3);
        assert_eq!(core.vertices(&g), vec![0, 1, 2]);
        assert!(core.contains_edge(1));
        assert!(!core.contains_edge(5));
    }

    #[test]
    fn validity_checks() {
        let g = triangle();
        let core = TemporalKCore::new(TimeWindow::new(1, 3), vec![0, 1, 2]);
        assert!(core.tti_is_tight(&g));
        assert!(core.is_valid_k_core(&g, 2));
        assert!(!core.is_valid_k_core(&g, 3));

        let loose = TemporalKCore::new(TimeWindow::new(1, 3), vec![0, 1]);
        assert!(!loose.tti_is_tight(&g)); // edges span [1, 2] only
        assert!(!loose.is_valid_k_core(&g, 2));

        let empty = TemporalKCore::new(TimeWindow::new(1, 1), vec![]);
        assert!(!empty.tti_is_tight(&g));
    }
}
