//! A pool-backed serving front end: [`CoreService`].
//!
//! The ROADMAP's sharded / async serving layer needs a seam between clients
//! and the query engines: a bounded queue with admission control, typed
//! rejection, and per-request accounting.  `CoreService` is that seam — a
//! persistent [`ExecPool`] of
//! [`ServiceConfig::workers`] threads executing validated requests from
//! **per-worker service lanes**, on either the span-wide [`QueryEngine`] or
//! a time-interval [`ShardedEngine`]:
//!
//! * [`CoreService::submit`] **validates synchronously** (malformed requests
//!   never occupy queue capacity) and then applies **admission control**:
//!   when [`ServiceConfig::queue_depth`] requests are already waiting, or
//!   the engine's skyline cache sits above
//!   [`ServiceConfig::admission_memory_bytes`], the request is refused with
//!   [`TkError::BudgetExceeded`] instead of being queued;
//! * admitted requests are routed to a lane by [`ServiceConfig::affinity`]:
//!   [`Affinity::Shard`] schedules a request whose window overlaps shards
//!   `{i..j}` onto the least-loaded worker **owning one of those shards'
//!   cache partitions** (shards are split into contiguous per-worker
//!   blocks), so `(shard, k)` skylines and boundary-stitch entries stop
//!   ping-ponging between threads; [`Affinity::Shared`] load-balances
//!   across all lanes.  Idle workers **steal** from other lanes either way,
//!   so affinity never strands a request behind a busy owner;
//! * every admitted request gets a [`RequestId`] and a [`Ticket`]; the reply
//!   carries queue-wait and execution latency alongside the
//!   [`QueryResponse`], and [`ServiceStats::per_worker`] breaks latency out
//!   per worker, including a [`LatencyHistogram`];
//! * a **panicking request** (typically a panicking user sink in stream
//!   mode) is caught on the worker: the caller's ticket resolves to
//!   [`TkError::WorkerPanicked`], the worker thread survives, and every
//!   statistic — including the per-worker histograms — remains intact;
//! * multi-`k` requests fan across the engine's batch path on the **same
//!   pool** (the executing worker participates, so nested fan-out cannot
//!   deadlock), and a `k`-range sweep still costs at most one skyline build
//!   per `(shard, k)`;
//! * every request belongs to a priority [`Lane`] and may carry a
//!   **deadline** ([`CoreService::submit_opts`]): workers dequeue waiting
//!   interactive requests ahead of batch ones, and a request whose deadline
//!   expired while it waited is **shed** with [`TkError::DeadlineExceeded`]
//!   instead of executing — overload degrades batch traffic first and never
//!   spends a worker on an answer nobody is waiting for.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::engine::{CacheStats, QueryEngine};
use crate::error::TkError;
use crate::exec::ExecPool;
use crate::ingest::{AbsorbStats, IngestEvent};
use crate::query::{Algorithm, QueryStats, TimeRangeKCoreQuery};
use crate::request::{KOutcome, KOutput, OutputMode, QueryRequest, QueryResponse};
use crate::shard::{ShardPlan, ShardedBackend, ShardedEngine};
use crate::sink::{CollectingSink, CountingSink, ResultSink};
use temporal_graph::{TemporalGraph, TimeWindow};

/// How [`CoreService`] routes admitted requests onto worker lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Affinity {
    /// Load-balance every request onto the least-loaded lane.
    #[default]
    Shared,
    /// Route a request to the least-loaded worker owning one of the shards
    /// its window overlaps (shards are partitioned into contiguous
    /// per-worker blocks).  Falls back to [`Affinity::Shared`] on an
    /// unsharded engine.
    Shard,
}

impl std::fmt::Display for Affinity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Affinity::Shared => write!(f, "shared"),
            Affinity::Shard => write!(f, "shard"),
        }
    }
}

impl std::str::FromStr for Affinity {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "shared" => Ok(Affinity::Shared),
            "shard" => Ok(Affinity::Shard),
            other => Err(format!("`{other}` is not `shared` or `shard`")),
        }
    }
}

/// Priority class of a submitted request (see [`SubmitOptions::lane`]).
///
/// Workers always dequeue waiting `Interactive` requests before `Batch`
/// ones on every worker lane; within a class, requests dequeue in FIFO
/// order.  Admission control (queue depth, memory gate) and deadlines apply
/// to both classes alike — priority decides *who runs first*, not *who gets
/// in*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Lane {
    /// Latency-sensitive traffic; always served first.
    #[default]
    Interactive,
    /// Throughput traffic; served when no interactive request is waiting.
    /// Ingest batches ([`CoreService::submit_append`]) account here.
    Batch,
}

impl Lane {
    /// Number of priority lanes (the length of [`ServiceStats::per_lane`]).
    pub const COUNT: usize = 2;

    /// Index of this lane in [`ServiceStats::per_lane`].
    pub fn index(self) -> usize {
        match self {
            Lane::Interactive => 0,
            Lane::Batch => 1,
        }
    }
}

impl std::fmt::Display for Lane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Lane::Interactive => write!(f, "interactive"),
            Lane::Batch => write!(f, "batch"),
        }
    }
}

impl std::str::FromStr for Lane {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "interactive" => Ok(Lane::Interactive),
            "batch" => Ok(Lane::Batch),
            other => Err(format!("`{other}` is not `interactive` or `batch`")),
        }
    }
}

/// Per-request options of [`CoreService::submit_opts`].
#[derive(Debug, Clone, Copy)]
pub struct SubmitOptions {
    /// The algorithm executing the request.
    pub algorithm: Algorithm,
    /// The priority class the request queues in.
    pub lane: Lane,
    /// Relative deadline, measured from submission.  A request still queued
    /// when its deadline expires is shed at dequeue with
    /// [`TkError::DeadlineExceeded`] instead of executing; a zero deadline
    /// is refused at admission.  The deadline does **not** abort a request
    /// already executing — it bounds queueing, not computation.
    pub deadline: Option<Duration>,
}

impl Default for SubmitOptions {
    fn default() -> Self {
        Self {
            algorithm: Algorithm::Enum,
            lane: Lane::Interactive,
            deadline: None,
        }
    }
}

impl SubmitOptions {
    /// Options for a batch-lane request with the default algorithm.
    pub fn batch() -> Self {
        Self {
            lane: Lane::Batch,
            ..Self::default()
        }
    }

    /// Returns these options with `algorithm`.
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Returns these options with `lane`.
    pub fn with_lane(mut self, lane: Lane) -> Self {
        self.lane = lane;
        self
    }

    /// Returns these options with a relative `deadline`.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Tuning knobs of a [`CoreService`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Maximum number of requests waiting in the lanes (not counting the
    /// ones currently executing on workers).  Submissions beyond this depth
    /// are refused with [`TkError::BudgetExceeded`].
    pub queue_depth: usize,
    /// Worker threads of the service's persistent pool; `0` is treated as
    /// `1`.  Each worker executes one request at a time, so up to `workers`
    /// requests are in flight concurrently.
    pub workers: usize,
    /// Lane-routing policy for admitted requests.
    pub affinity: Affinity,
    /// Refuse new requests while the engine's skyline cache holds more than
    /// this many resident bytes (`None` disables the memory gate; the
    /// engine's own LRU budget still bounds the cache itself).
    pub admission_memory_bytes: Option<usize>,
    /// Configuration of the underlying engine.
    pub engine: crate::engine::EngineConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            queue_depth: 64,
            workers: 1,
            affinity: Affinity::Shared,
            admission_memory_bytes: None,
            engine: crate::engine::EngineConfig::default(),
        }
    }
}

/// Identifier of one admitted request, unique per service instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub u64);

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req-{}", self.0)
    }
}

/// The completed reply to an admitted request.
#[derive(Debug)]
pub struct ServiceReply {
    /// The id handed out at submission.
    pub id: RequestId,
    /// The request's results, one outcome per `k`.
    pub response: QueryResponse,
    /// Time the request spent queued before a worker picked it up.
    pub queue_wait: Duration,
    /// Wall-clock execution time on the worker.
    pub execute_time: Duration,
    /// Index of the worker thread that executed the request.
    pub worker: usize,
}

/// Handle to one admitted request; redeem it with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    /// The id of the admitted request.
    pub id: RequestId,
    rx: mpsc::Receiver<Result<ServiceReply, TkError>>,
}

impl Ticket {
    /// Blocks until the request completes (or the service shuts down, which
    /// yields [`TkError::ServiceStopped`]).
    ///
    /// # Errors
    /// Whatever the execution produced, or [`TkError::ServiceStopped`] if
    /// the worker exited before replying.
    pub fn wait(self) -> Result<ServiceReply, TkError> {
        self.rx.recv().unwrap_or(Err(TkError::ServiceStopped))
    }

    /// Non-blocking probe: `None` while the request is still in flight.
    pub fn try_wait(&self) -> Option<Result<ServiceReply, TkError>> {
        self.rx.try_recv().ok()
    }
}

/// The completed reply to an admitted append batch.
#[derive(Debug)]
pub struct IngestReply {
    /// The id handed out at submission.
    pub id: RequestId,
    /// What the absorb did: events appended, invalidations, seal outcome.
    pub stats: AbsorbStats,
    /// Time the batch spent queued before a worker picked it up.
    pub queue_wait: Duration,
    /// Wall-clock absorb time on the worker (append + publish + purge).
    pub absorb_time: Duration,
    /// Index of the worker thread that absorbed the batch.
    pub worker: usize,
}

/// Handle to one admitted append batch; redeem it with
/// [`IngestTicket::wait`].
#[derive(Debug)]
pub struct IngestTicket {
    /// The id of the admitted batch.
    pub id: RequestId,
    rx: mpsc::Receiver<Result<IngestReply, TkError>>,
}

impl IngestTicket {
    /// Blocks until the batch is absorbed (or the service shuts down, which
    /// yields [`TkError::ServiceStopped`]).
    ///
    /// # Errors
    /// Whatever the absorb produced — a typed append rejection applies to
    /// the whole batch, which changed nothing — or
    /// [`TkError::ServiceStopped`] if the worker exited before replying.
    pub fn wait(self) -> Result<IngestReply, TkError> {
        self.rx.recv().unwrap_or(Err(TkError::ServiceStopped))
    }

    /// Non-blocking probe: `None` while the batch is still in flight.
    pub fn try_wait(&self) -> Option<Result<IngestReply, TkError>> {
        self.rx.try_recv().ok()
    }
}

/// Base-10 histogram of per-request execution latencies.
///
/// Bucket `i` counts requests faster than
/// [`LatencyHistogram::BOUNDS_MICROS`]`[i]` microseconds (and at least the
/// previous bound); the last bucket counts everything slower.  Stored in the
/// shared [`ServiceStats`], not on the worker threads, so a worker panic
/// cannot drop it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// The bucket counts, slowest bucket last.
    pub buckets: [u64; LatencyHistogram::NUM_BUCKETS],
}

impl LatencyHistogram {
    /// Number of buckets (seven bounded decades plus the overflow bucket).
    pub const NUM_BUCKETS: usize = 8;

    /// Upper bounds (exclusive) of the bounded buckets, in microseconds:
    /// 10µs, 100µs, 1ms, 10ms, 100ms, 1s, 10s.
    pub const BOUNDS_MICROS: [u64; 7] = [10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000];

    /// Records one observed latency.
    pub fn record(&mut self, latency: Duration) {
        let micros = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let bucket = Self::BOUNDS_MICROS
            .iter()
            .position(|&bound| micros < bound)
            .unwrap_or(Self::NUM_BUCKETS - 1);
        self.buckets[bucket] += 1;
    }

    /// Total number of recorded latencies over all buckets.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: [0; Self::NUM_BUCKETS],
        }
    }
}

/// Latency counters of one worker thread (see [`ServiceStats::per_worker`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Requests this worker fully executed and replied to (including
    /// panicked ones, which reply with [`TkError::WorkerPanicked`]).
    pub completed: u64,
    /// Requests whose execution panicked on this worker (the worker
    /// survived; see the module docs).
    pub panicked: u64,
    /// Summed execution time of this worker's completed requests.
    pub execute_total: Duration,
    /// Execution-latency histogram of this worker's completed requests.
    pub latency: LatencyHistogram,
}

/// Cumulative request accounting, readable via [`CoreService::stats`].
///
/// All counters — including the per-worker histograms — live in the
/// service's shared state, never on a worker thread, so they survive
/// panicking requests intact (a poisoned lock is recovered, not dropped).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests admitted to the lanes.
    pub admitted: u64,
    /// Requests refused by admission control ([`TkError::BudgetExceeded`]).
    pub rejected: u64,
    /// Requests fully executed and replied to (sum of the per-worker
    /// counters; includes panicked requests, which reply with an error).
    pub completed: u64,
    /// Admitted requests shed without executing because their deadline
    /// expired while they waited (plus submissions refused at admission
    /// with an already-expired deadline); each replied with
    /// [`TkError::DeadlineExceeded`].
    pub shed: u64,
    /// Requests whose execution panicked (sum of the per-worker counters).
    pub panicked: u64,
    /// Summed queue wait of completed requests.
    pub queue_wait_total: Duration,
    /// Summed execution time of completed requests (sum of the per-worker
    /// totals).
    pub execute_total: Duration,
    /// High-water mark of the number of waiting requests.
    pub max_queue_depth: usize,
    /// Per-worker latency counters, one entry per pool worker.
    pub per_worker: Vec<WorkerStats>,
    /// Per-priority-lane counters, indexed by [`Lane::index`].  Each of
    /// `admitted`, `completed`, `shed` and `rejected` sums across the lanes
    /// to the service-wide total (ingest batches account under
    /// [`Lane::Batch`]).
    pub per_lane: [LaneStats; Lane::COUNT],
    /// Ingest-lane breakdown ([`CoreService::submit_append`] traffic;
    /// appends also count in the shared `admitted`/`completed` totals).
    pub ingest: IngestLaneStats,
}

impl ServiceStats {
    /// The counters of one priority lane.
    pub fn lane(&self, lane: Lane) -> &LaneStats {
        &self.per_lane[lane.index()]
    }
}

/// Counters of one priority [`Lane`] (see [`ServiceStats::per_lane`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaneStats {
    /// Requests of this lane admitted to the queues.
    pub admitted: u64,
    /// Requests of this lane fully executed and replied to.
    pub completed: u64,
    /// Requests of this lane shed with [`TkError::DeadlineExceeded`].
    pub shed: u64,
    /// Requests of this lane refused by admission control.
    pub rejected: u64,
}

/// Ingest-lane counters of a [`CoreService`] (see [`ServiceStats::ingest`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestLaneStats {
    /// Append batches admitted to the lanes.
    pub submitted: u64,
    /// Batches absorbed successfully.
    pub completed: u64,
    /// Batches rejected by the ingest path (out-of-order, duplicate,
    /// malformed) or failed by a worker panic; each changed nothing.
    pub failed: u64,
    /// Events appended by successful batches.
    pub events_appended: u64,
    /// Tail seals triggered by absorbed batches (per the engine's
    /// [`crate::SealPolicy`]).
    pub seals: u64,
    /// Summed worker-side absorb time of completed and failed batches.
    pub absorb_total: Duration,
}

struct Job {
    id: RequestId,
    request: crate::request::ValidatedRequest,
    algorithm: Algorithm,
    lane: Lane,
    /// Relative deadline; checked against `enqueued_at` at dequeue.
    deadline: Option<Duration>,
    enqueued_at: Instant,
    reply: mpsc::Sender<Result<ServiceReply, TkError>>,
}

/// The waiting jobs of one pool worker lane, split by priority: dequeue
/// takes interactive jobs first, FIFO within each class.
#[derive(Default)]
struct LaneQueues {
    interactive: VecDeque<Job>,
    batch: VecDeque<Job>,
}

impl LaneQueues {
    fn push(&mut self, job: Job) {
        match job.lane {
            Lane::Interactive => self.interactive.push_back(job),
            Lane::Batch => self.batch.push_back(job),
        }
    }

    fn pop(&mut self) -> Option<Job> {
        self.interactive
            .pop_front()
            .or_else(|| self.batch.pop_front())
    }
}

struct ServiceState {
    open: bool,
    /// Admitted requests not yet picked up by a worker.
    queued: usize,
    /// Requests currently executing.
    in_flight: usize,
    /// Waiting query jobs, one two-priority queue pair per pool worker
    /// lane.  Every push is paired with one pool task that pops from the
    /// same pair, so the queues and the pool stay in lockstep.
    queues: Vec<LaneQueues>,
    stats: ServiceStats,
}

struct ServiceShared {
    state: Mutex<ServiceState>,
    /// Signalled whenever a request finishes (shutdown drains on it).
    drained: Condvar,
}

impl ServiceShared {
    /// Locks the service state, recovering from poisoning so statistics
    /// survive a panic that unwound through the lock.
    fn lock(&self) -> MutexGuard<'_, ServiceState> {
        crate::sync::lock(&self.state)
    }
}

/// The engine a service executes on: span-wide or time-interval sharded.
enum ServingEngine {
    Span(Arc<QueryEngine>),
    Sharded(Arc<ShardedEngine>),
}

impl ServingEngine {
    /// The engine's current graph snapshot (fixed for a span engine; the
    /// latest published snapshot for a live sharded engine).
    fn graph(&self) -> Arc<TemporalGraph> {
        match self {
            ServingEngine::Span(engine) => engine.graph_arc(),
            ServingEngine::Sharded(engine) => engine.graph(),
        }
    }

    fn cache_stats(&self) -> CacheStats {
        match self {
            ServingEngine::Span(engine) => engine.cache_stats(),
            ServingEngine::Sharded(engine) => engine.cache_stats(),
        }
    }

    fn run_batch_with<S, F>(
        &self,
        queries: &[TimeRangeKCoreQuery],
        algorithm: Algorithm,
        make_sink: F,
    ) -> Result<Vec<(S, QueryStats)>, TkError>
    where
        S: ResultSink + Send + 'static,
        F: Fn(usize) -> S + Send + Sync + 'static,
    {
        match self {
            ServingEngine::Span(engine) => engine
                .run_batch_with(queries, algorithm, make_sink)
                .map(|(results, _)| results),
            ServingEngine::Sharded(engine) => engine
                .run_batch_with(queries, algorithm, make_sink)
                .map(|(results, _)| results),
        }
    }
}

/// Maps a shard to the worker lane owning its cache partition: shards are
/// split into `workers` contiguous blocks of the timeline.
fn lane_of_shard(shard: usize, num_shards: usize, workers: usize) -> usize {
    if num_shards == 0 || workers == 0 {
        return 0;
    }
    (shard * workers / num_shards).min(workers - 1)
}

/// A query-serving front end: bounded per-worker lanes + admission control
/// over a span-wide [`QueryEngine`] or a [`ShardedEngine`], executed by a
/// persistent work-stealing pool of [`ServiceConfig::workers`] threads.
///
/// # Example
///
/// ```
/// use tkcore::{paper_example, Algorithm, CoreService, QueryRequest, ServiceConfig};
///
/// let service = CoreService::start(
///     paper_example::graph(),
///     ServiceConfig {
///         workers: 2,
///         ..ServiceConfig::default()
///     },
/// );
/// let ticket = service
///     .submit(QueryRequest::sweep(1..=3, 1, 7))
///     .unwrap();
/// let reply = ticket.wait().unwrap();
/// assert_eq!(reply.response.outcomes.len(), 3); // one outcome per k
/// // Each k of the sweep built its span-wide skyline at most once.
/// assert_eq!(service.cache_stats().misses, 3);
/// assert_eq!(service.stats().per_worker.len(), 2);
/// service.shutdown();
/// ```
pub struct CoreService {
    engine: Arc<ServingEngine>,
    shared: Arc<ServiceShared>,
    /// `None` only after shutdown; dropping the last reference joins the
    /// pool threads.
    pool: Option<Arc<ExecPool>>,
    config: ServiceConfig,
    next_id: AtomicU64,
}

impl CoreService {
    /// Starts a service owning `graph` on a span-wide engine; the engine's
    /// batches share the service's worker pool.
    pub fn start(graph: TemporalGraph, config: ServiceConfig) -> Self {
        let pool = ExecPool::new(config.workers.max(1));
        let engine = QueryEngine::with_pool(graph, config.engine, Arc::clone(&pool));
        Self::launch(ServingEngine::Span(Arc::new(engine)), config, pool)
    }

    /// Starts a service owning `graph` on a [`ShardedEngine`] cut by `plan`;
    /// the engine's batches share the service's worker pool.
    ///
    /// # Errors
    /// [`TkError::InvalidShardPlan`] when `plan` does not resolve against
    /// the graph.
    pub fn start_sharded(
        graph: TemporalGraph,
        plan: ShardPlan,
        config: ServiceConfig,
    ) -> Result<Self, TkError> {
        let pool = ExecPool::new(config.workers.max(1));
        let engine = ShardedEngine::with_pool(graph, plan, config.engine, Arc::clone(&pool))?;
        Ok(Self::launch(
            ServingEngine::Sharded(Arc::new(engine)),
            config,
            pool,
        ))
    }

    /// Starts a service over an existing (possibly shared) span-wide
    /// engine.  If the engine has not yet created or been given a pool of
    /// its own, it adopts the service's pool, so one set of threads serves
    /// both layers; otherwise it keeps its existing pool.
    pub fn over(engine: Arc<QueryEngine>, config: ServiceConfig) -> Self {
        let pool = ExecPool::new(config.workers.max(1));
        engine.adopt_pool(Arc::clone(&pool));
        Self::launch(ServingEngine::Span(engine), config, pool)
    }

    /// Starts a service over an existing (possibly shared) sharded engine;
    /// the same pool-adoption rule as [`CoreService::over`] applies.
    pub fn over_sharded(engine: Arc<ShardedEngine>, config: ServiceConfig) -> Self {
        let pool = ExecPool::new(config.workers.max(1));
        engine.adopt_pool(Arc::clone(&pool));
        Self::launch(ServingEngine::Sharded(engine), config, pool)
    }

    fn launch(engine: ServingEngine, config: ServiceConfig, pool: Arc<ExecPool>) -> Self {
        let shared = Arc::new(ServiceShared {
            state: Mutex::new(ServiceState {
                open: true,
                queued: 0,
                in_flight: 0,
                queues: (0..pool.num_workers())
                    .map(|_| LaneQueues::default())
                    .collect(),
                stats: ServiceStats {
                    per_worker: vec![WorkerStats::default(); pool.num_workers()],
                    ..ServiceStats::default()
                },
            }),
            drained: Condvar::new(),
        });
        Self {
            engine: Arc::new(engine),
            shared,
            pool: Some(pool),
            config,
            next_id: AtomicU64::new(1),
        }
    }

    /// The span-wide engine this service executes on, when it is not
    /// sharded (for cache statistics, warming…).
    pub fn engine(&self) -> Option<&QueryEngine> {
        match &*self.engine {
            ServingEngine::Span(engine) => Some(engine),
            ServingEngine::Sharded(_) => None,
        }
    }

    /// The sharded engine this service executes on, when it is sharded.
    pub fn sharded_engine(&self) -> Option<&ShardedEngine> {
        match &*self.engine {
            ServingEngine::Span(_) => None,
            ServingEngine::Sharded(engine) => Some(engine),
        }
    }

    /// Skyline-cache counters of whichever engine backs this service; a
    /// sharded service reports the per-shard and boundary-stitch dimensions.
    pub fn cache_stats(&self) -> CacheStats {
        self.engine.cache_stats()
    }

    /// Cumulative admission and latency counters, including per-worker ones.
    pub fn stats(&self) -> ServiceStats {
        self.shared.lock().stats.clone()
    }

    /// Submits a request running the paper's final algorithm (`Enum`).
    ///
    /// # Errors
    /// See [`CoreService::submit_with`].
    pub fn submit(&self, request: QueryRequest) -> Result<Ticket, TkError> {
        self.submit_with(request, Algorithm::Enum)
    }

    /// Validates `request`, applies admission control, and enqueues it on
    /// the lane chosen by [`ServiceConfig::affinity`] for the chosen
    /// algorithm, in the default (interactive, no-deadline) priority class.
    ///
    /// # Errors
    /// See [`CoreService::submit_opts`].
    pub fn submit_with(
        &self,
        request: QueryRequest,
        algorithm: Algorithm,
    ) -> Result<Ticket, TkError> {
        self.submit_opts(
            request,
            SubmitOptions {
                algorithm,
                ..SubmitOptions::default()
            },
        )
    }

    /// Validates `request`, applies admission control, and enqueues it with
    /// the priority lane and deadline in `opts` on the worker lane chosen
    /// by [`ServiceConfig::affinity`].
    ///
    /// Deadlines are enforced twice without ever interrupting execution: a
    /// zero deadline is refused here, and a request whose deadline passes
    /// while it waits is shed when a worker would otherwise pick it up —
    /// its ticket resolves to [`TkError::DeadlineExceeded`] and the worker
    /// moves on to the next job.
    ///
    /// # Errors
    /// * the validation errors of [`QueryRequest::validate`] (checked
    ///   synchronously — malformed requests never consume queue capacity);
    /// * [`TkError::BudgetExceeded`] when [`ServiceConfig::queue_depth`]
    ///   requests are already waiting or the skyline cache exceeds
    ///   [`ServiceConfig::admission_memory_bytes`];
    /// * [`TkError::DeadlineExceeded`] when `opts.deadline` is zero (the
    ///   request is expired on arrival);
    /// * [`TkError::ServiceStopped`] after [`CoreService::shutdown`].
    pub fn submit_opts(
        &self,
        request: QueryRequest,
        opts: SubmitOptions,
    ) -> Result<Ticket, TkError> {
        let validated = request.validate(&self.engine.graph())?;
        if self.pool.is_none() {
            // close_and_join already ran; the open flag under the state
            // lock agrees, but the affinity routing below needs the pool.
            return Err(TkError::ServiceStopped);
        }
        // Reading cache statistics takes the engine's cache mutex, and the
        // affinity routing below takes the pool mutex; doing both before
        // the state lock keeps every lock pair unnested.
        let resident_over_budget = self
            .config
            .admission_memory_bytes
            .map(|budget| self.engine.cache_stats().resident_bytes > budget);
        let window = validated.window();
        let pool_lane = self.lane_for(window);
        let mut state = self.shared.lock();
        if !state.open {
            // A stopped service is ServiceStopped, never BudgetExceeded.
            return Err(TkError::ServiceStopped);
        }
        if resident_over_budget == Some(true) {
            state.stats.rejected += 1;
            state.stats.per_lane[opts.lane.index()].rejected += 1;
            return Err(TkError::BudgetExceeded {
                resource: "cache memory",
                limit: self
                    .config
                    .admission_memory_bytes
                    // tkc-lint: allow(no-panic-api) — this branch is only reached when the admission gate is configured
                    .expect("gate only fires when configured"),
            });
        }
        if state.queued >= self.config.queue_depth {
            state.stats.rejected += 1;
            state.stats.per_lane[opts.lane.index()].rejected += 1;
            return Err(TkError::BudgetExceeded {
                resource: "request queue",
                limit: self.config.queue_depth,
            });
        }
        if opts.deadline == Some(Duration::ZERO) {
            // Expired on arrival: shed at admission, never queued.
            state.stats.shed += 1;
            state.stats.per_lane[opts.lane.index()].shed += 1;
            return Err(TkError::DeadlineExceeded {
                deadline: Duration::ZERO,
                waited: Duration::ZERO,
            });
        }
        let id = RequestId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let (tx, rx) = mpsc::channel();
        state.queued += 1;
        state.stats.admitted += 1;
        state.stats.per_lane[opts.lane.index()].admitted += 1;
        state.stats.max_queue_depth = state.stats.max_queue_depth.max(state.queued);
        state.queues[pool_lane].push(Job {
            id,
            request: validated,
            algorithm: opts.algorithm,
            lane: opts.lane,
            deadline: opts.deadline,
            enqueued_at: Instant::now(),
            reply: tx,
        });
        drop(state);
        let shared = Arc::clone(&self.shared);
        let engine = Arc::clone(&self.engine);
        let pool = self
            .pool
            .as_ref()
            // tkc-lint: allow(no-panic-api) — `pool` is Some from construction until close_and_join tears the service down
            .expect("pool alive while the service is open");
        pool.spawn_on(pool_lane, move |worker| {
            drain_service_job(&engine, &shared, pool_lane, worker);
        });
        Ok(Ticket { id, rx })
    }

    /// Submits a batch of ingest events to the service's **ingest lane**:
    /// the batch is queued like a request (same admission control and
    /// accounting, broken out in [`ServiceStats::ingest`]) and absorbed on
    /// a worker via [`ShardedEngine::absorb`].  Ingestion serializes with
    /// concurrent queries only at the engine's snapshot swap, so queries
    /// keep executing while batches land — and each observes either none of
    /// a batch or all of it.
    ///
    /// Batches absorb in worker order, not submission order; submitters
    /// needing strict event ordering should wait on each
    /// [`IngestTicket`] before submitting the next batch (the engine
    /// refuses out-of-order timestamps with a typed error either way).
    ///
    /// # Errors
    /// * [`TkError::AppendRejected`] when the service runs a span-wide
    ///   engine (only sharded engines have a live tail);
    /// * [`TkError::BudgetExceeded`] when [`ServiceConfig::queue_depth`]
    ///   requests are already waiting;
    /// * [`TkError::ServiceStopped`] after [`CoreService::shutdown`].
    pub fn submit_append(&self, events: Vec<IngestEvent>) -> Result<IngestTicket, TkError> {
        let ServingEngine::Sharded(sharded) = &*self.engine else {
            return Err(TkError::AppendRejected {
                detail: "this service runs a span-wide engine; live ingestion needs a sharded \
                         service (CoreService::start_sharded)"
                    .into(),
            });
        };
        let sharded = Arc::clone(sharded);
        let mut state = self.shared.lock();
        if !state.open {
            return Err(TkError::ServiceStopped);
        }
        if state.queued >= self.config.queue_depth {
            state.stats.rejected += 1;
            state.stats.per_lane[Lane::Batch.index()].rejected += 1;
            return Err(TkError::BudgetExceeded {
                resource: "request queue",
                limit: self.config.queue_depth,
            });
        }
        let id = RequestId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let (tx, rx) = mpsc::channel();
        state.queued += 1;
        state.stats.admitted += 1;
        state.stats.per_lane[Lane::Batch.index()].admitted += 1;
        state.stats.ingest.submitted += 1;
        state.stats.max_queue_depth = state.stats.max_queue_depth.max(state.queued);
        drop(state);
        let shared = Arc::clone(&self.shared);
        let enqueued_at = Instant::now();
        let pool = self
            .pool
            .as_ref()
            // tkc-lint: allow(no-panic-api) — `pool` is Some from construction until close_and_join tears the service down
            .expect("pool alive while the service is open");
        // Route appends to the lane owning the tail shard's cache partition:
        // that is the only partition an absorb invalidates.
        let lane = {
            let num_shards = sharded.num_shards();
            lane_of_shard(
                num_shards.saturating_sub(1),
                num_shards,
                pool.lane_lens().len(),
            )
        };
        pool.spawn_on(lane, move |worker| {
            execute_ingest_job(&sharded, &shared, id, &events, enqueued_at, &tx, worker);
        });
        Ok(IngestTicket { id, rx })
    }

    /// Chooses the lane for a request over `window` (see
    /// [`ServiceConfig::affinity`]).
    fn lane_for(&self, window: TimeWindow) -> usize {
        let pool = self
            .pool
            .as_ref()
            // tkc-lint: allow(no-panic-api) — `pool` is Some from construction until close_and_join tears the service down
            .expect("pool alive while the service is open");
        let lens = pool.lane_lens();
        match (self.config.affinity, &*self.engine) {
            (Affinity::Shard, ServingEngine::Sharded(engine)) => engine
                .overlapping_shards(window)
                .map(|shard| lane_of_shard(shard, engine.num_shards(), lens.len()))
                .min_by_key(|&lane| (lens[lane], lane))
                .unwrap_or(0),
            _ => (0..lens.len())
                .min_by_key(|&lane| (lens[lane], lane))
                .unwrap_or(0),
        }
    }

    /// Stops accepting requests, waits for every admitted request (query
    /// and ingest alike) to finish or shed, and releases the worker pool.
    /// Dropping the service does the same; `shutdown` followed by the
    /// implicit drop is idempotent — the second drain is a no-op.
    pub fn shutdown(mut self) {
        self.close_and_join();
    }

    fn close_and_join(&mut self) {
        if self.pool.is_none() {
            // Already drained: `shutdown(mut self)` ran close_and_join and
            // is now dropping `self`, which calls it again.  The first pass
            // closed admission and waited out every queued and in-flight
            // job, so there is nothing left to wait on.
            return;
        }
        let mut state = self.shared.lock();
        state.open = false;
        while state.queued + state.in_flight > 0 {
            state = crate::sync::wait(&self.shared.drained, state);
        }
        drop(state);
        // Dropping the last pool reference joins the worker threads.  An
        // engine created by `start`/`start_sharded` holds a reference for
        // its own batches; its threads idle until the engine is dropped.
        self.pool = None;
    }
}

impl Drop for CoreService {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

/// Renders a panic payload for [`TkError::WorkerPanicked`].
fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Dequeues and runs the next waiting job of pool lane `pool_lane` on pool
/// worker `worker`: priority pop (interactive before batch), deadline check,
/// then execution with panic isolation, accounting, reply.
///
/// One such task is spawned per admitted job on the job's pool lane, so the
/// pop always finds a job — though not necessarily *the* job that spawned
/// this task: a task spawned by a batch submission happily executes an
/// interactive request that arrived later, which is exactly how the
/// priority inversion between the classes is implemented.
fn drain_service_job(
    engine: &ServingEngine,
    shared: &ServiceShared,
    pool_lane: usize,
    worker: usize,
) {
    let (job, queue_wait) = {
        let mut state = shared.lock();
        let Some(job) = state.queues[pool_lane].pop() else {
            // Defensive: pushes and spawns are 1:1, so this cannot happen.
            return;
        };
        state.queued -= 1;
        let waited = job.enqueued_at.elapsed();
        if let Some(deadline) = job.deadline {
            if waited > deadline {
                // Expired while queued: shed instead of executing.
                state.stats.shed += 1;
                state.stats.per_lane[job.lane.index()].shed += 1;
                drop(state);
                shared.drained.notify_all();
                // The submitter may have dropped its ticket; not an error.
                let _ = job
                    .reply
                    .send(Err(TkError::DeadlineExceeded { deadline, waited }));
                return;
            }
        }
        state.in_flight += 1;
        (job, waited)
    };
    let request = job.request;
    let algorithm = job.algorithm;
    let t0 = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| execute_job(engine, request, algorithm)));
    let execute_time = t0.elapsed();
    let (result, panicked) = match outcome {
        Ok(result) => (result, false),
        Err(payload) => (
            Err(TkError::WorkerPanicked {
                detail: panic_detail(payload.as_ref()),
            }),
            true,
        ),
    };
    {
        let mut state = shared.lock();
        state.in_flight -= 1;
        let stats = &mut state.stats;
        stats.completed += 1;
        stats.per_lane[job.lane.index()].completed += 1;
        stats.queue_wait_total += queue_wait;
        stats.execute_total += execute_time;
        if panicked {
            stats.panicked += 1;
        }
        let per_worker = &mut stats.per_worker[worker];
        per_worker.completed += 1;
        per_worker.execute_total += execute_time;
        per_worker.latency.record(execute_time);
        if panicked {
            per_worker.panicked += 1;
        }
    }
    shared.drained.notify_all();
    let reply = result.map(|response| ServiceReply {
        id: job.id,
        response,
        queue_wait,
        execute_time,
        worker,
    });
    // The submitter may have dropped its ticket; that is not an error.
    let _ = job.reply.send(reply);
}

/// Runs one admitted append batch on pool worker `worker`: accounting,
/// absorb with panic isolation, ingest-lane accounting, reply.
fn execute_ingest_job(
    sharded: &ShardedEngine,
    shared: &ServiceShared,
    id: RequestId,
    events: &[IngestEvent],
    enqueued_at: Instant,
    reply: &mpsc::Sender<Result<IngestReply, TkError>>,
    worker: usize,
) {
    {
        let mut state = shared.lock();
        state.queued -= 1;
        state.in_flight += 1;
    }
    let queue_wait = enqueued_at.elapsed();
    let t0 = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| sharded.absorb(events)));
    let absorb_time = t0.elapsed();
    let (result, panicked) = match outcome {
        Ok(result) => (result, false),
        Err(payload) => (
            Err(TkError::WorkerPanicked {
                detail: panic_detail(payload.as_ref()),
            }),
            true,
        ),
    };
    {
        let mut state = shared.lock();
        state.in_flight -= 1;
        let stats = &mut state.stats;
        stats.completed += 1;
        stats.per_lane[Lane::Batch.index()].completed += 1;
        stats.queue_wait_total += queue_wait;
        stats.execute_total += absorb_time;
        if panicked {
            stats.panicked += 1;
        }
        let per_worker = &mut stats.per_worker[worker];
        per_worker.completed += 1;
        per_worker.execute_total += absorb_time;
        per_worker.latency.record(absorb_time);
        if panicked {
            per_worker.panicked += 1;
        }
        let ingest = &mut stats.ingest;
        ingest.absorb_total += absorb_time;
        match &result {
            Ok(absorbed) => {
                ingest.completed += 1;
                ingest.events_appended += absorbed.appended as u64;
                if absorbed.sealed {
                    ingest.seals += 1;
                }
            }
            Err(_) => ingest.failed += 1,
        }
    }
    shared.drained.notify_all();
    let reply_value = result.map(|stats| IngestReply {
        id,
        stats,
        queue_wait,
        absorb_time,
        worker,
    });
    // The submitter may have dropped its ticket; that is not an error.
    let _ = reply.send(reply_value);
}

/// Executes one validated request on the engine.  Count and materialize
/// modes fan the per-`k` queries across the engine's batch path (which runs
/// on the same pool, with this worker participating); stream mode runs
/// sequentially because all `k` values share one sink.
fn execute_job(
    engine: &ServingEngine,
    request: crate::request::ValidatedRequest,
    algorithm: Algorithm,
) -> Result<QueryResponse, TkError> {
    let window = request.window();
    let queries: Vec<TimeRangeKCoreQuery> = request
        .ks()
        .iter()
        .map(|&k| TimeRangeKCoreQuery::validated(k, window))
        .collect();
    match request.mode() {
        OutputMode::Stream(_) => {
            // Sequential: the one caller sink sees every k in order, still
            // answered from the engine's skyline cache.
            match engine {
                ServingEngine::Span(span) => {
                    let backend =
                        crate::backend::CachedBackend::with_algorithm(Arc::clone(span), algorithm);
                    request.execute(span.graph(), &backend)
                }
                ServingEngine::Sharded(sharded) => {
                    let backend = ShardedBackend::with_algorithm(Arc::clone(sharded), algorithm);
                    // Capture one snapshot; a racing absorb publishes a new
                    // one without invalidating this capture (the backend
                    // serves any snapshot of its engine's lineage).
                    request.execute(&sharded.graph(), &backend)
                }
            }
        }
        OutputMode::Materialize => {
            let results =
                engine.run_batch_with(&queries, algorithm, |_| CollectingSink::default())?;
            let outcomes = queries
                .iter()
                .zip(results)
                .map(|(query, (sink, stats))| KOutcome {
                    k: query.k(),
                    stats,
                    output: KOutput::Cores(sink.into_sorted()),
                })
                .collect();
            Ok(QueryResponse {
                window,
                outcomes,
                sink: None,
            })
        }
        OutputMode::Count => {
            let results =
                engine.run_batch_with(&queries, algorithm, |_| CountingSink::default())?;
            let outcomes = queries
                .iter()
                .zip(results)
                .map(|(query, (sink, stats))| KOutcome {
                    k: query.k(),
                    stats,
                    output: KOutput::Counts(sink),
                })
                .collect();
            Ok(QueryResponse {
                window,
                outcomes,
                sink: None,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example;
    use crate::request::KOutput;

    #[test]
    fn submitted_requests_complete_with_latency_accounting() {
        let service = CoreService::start(paper_example::graph(), ServiceConfig::default());
        let ticket = service.submit(QueryRequest::single(2, 1, 4)).unwrap();
        let id = ticket.id;
        let reply = ticket.wait().unwrap();
        assert_eq!(reply.id, id);
        assert_eq!(reply.response.total_cores(), 2);
        assert!(reply.worker < 1, "single-worker pool");
        let stats = service.stats();
        assert_eq!(stats.admitted, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.panicked, 0);
        assert!(stats.execute_total >= reply.execute_time);
        assert_eq!(stats.per_worker.len(), 1);
        assert_eq!(stats.per_worker[0].completed, 1);
        assert_eq!(stats.per_worker[0].execute_total, stats.execute_total);
        assert_eq!(stats.per_worker[0].latency.count(), 1);
        service.shutdown();
    }

    #[test]
    fn invalid_requests_are_rejected_synchronously() {
        let service = CoreService::start(paper_example::graph(), ServiceConfig::default());
        assert!(matches!(
            service.submit(QueryRequest::single(0, 1, 4)),
            Err(TkError::KOutOfRange { k: 0 })
        ));
        assert!(matches!(
            service.submit(QueryRequest::single(2, 9, 12)),
            Err(TkError::WindowPastTmax { .. })
        ));
        let stats = service.stats();
        assert_eq!(stats.admitted, 0, "invalid requests never hit the lanes");
    }

    #[test]
    fn sweep_requests_report_per_k_outcomes() {
        let service = CoreService::start(paper_example::graph(), ServiceConfig::default());
        let reply = service
            .submit(QueryRequest::sweep(1..=3, 1, 7))
            .unwrap()
            .wait()
            .unwrap();
        let ks: Vec<usize> = reply.response.outcomes.iter().map(|o| o.k).collect();
        assert_eq!(ks, vec![1, 2, 3]);
        for outcome in &reply.response.outcomes {
            assert!(matches!(outcome.output, KOutput::Counts(_)));
        }
        assert_eq!(service.cache_stats().misses, 3);
        service.shutdown();
    }

    #[test]
    fn sharded_service_answers_like_span_and_reports_shard_cache() {
        let graph = paper_example::graph();
        let span = CoreService::start(graph.clone(), ServiceConfig::default());
        let sharded =
            CoreService::start_sharded(graph, ShardPlan::FixedCount(4), ServiceConfig::default())
                .unwrap();
        assert!(sharded.engine().is_none());
        assert_eq!(sharded.sharded_engine().unwrap().num_shards(), 4);
        for request in [
            || QueryRequest::single(2, 1, 4).materialize(),
            || QueryRequest::sweep(1..=3, 2, 6).materialize(),
        ] {
            let a = span.submit(request()).unwrap().wait().unwrap();
            let b = sharded.submit(request()).unwrap().wait().unwrap();
            assert_eq!(a.response.total_cores(), b.response.total_cores());
            for (oa, ob) in a.response.outcomes.iter().zip(&b.response.outcomes) {
                let (KOutput::Cores(ca), KOutput::Cores(cb)) = (&oa.output, &ob.output) else {
                    panic!("materialized request");
                };
                assert_eq!(ca, cb, "k={}", oa.k);
            }
        }
        assert_eq!(sharded.cache_stats().per_shard.len(), 4);
        span.shutdown();
        sharded.shutdown();
    }

    #[test]
    fn shard_affinity_routes_and_answers_like_the_shared_queue() {
        let graph = paper_example::graph();
        let shared_q = CoreService::start_sharded(
            graph.clone(),
            ShardPlan::FixedCount(4),
            ServiceConfig {
                workers: 2,
                affinity: Affinity::Shared,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        let affine = CoreService::start_sharded(
            graph,
            ShardPlan::FixedCount(4),
            ServiceConfig {
                workers: 2,
                affinity: Affinity::Shard,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        for (k, s, e) in [(2, 1, 4), (2, 2, 6), (1, 1, 7), (3, 5, 7), (2, 1, 2)] {
            let a = shared_q
                .submit(QueryRequest::single(k, s, e))
                .unwrap()
                .wait()
                .unwrap();
            let b = affine
                .submit(QueryRequest::single(k, s, e))
                .unwrap()
                .wait()
                .unwrap();
            assert_eq!(
                a.response.total_cores(),
                b.response.total_cores(),
                "k={k} [{s}, {e}]"
            );
        }
        let stats = affine.stats();
        assert_eq!(stats.completed, 5);
        shared_q.shutdown();
        affine.shutdown();
    }

    #[test]
    fn lane_of_shard_partitions_contiguously() {
        // 4 shards over 2 workers: first half owned by lane 0, second by 1.
        assert_eq!(lane_of_shard(0, 4, 2), 0);
        assert_eq!(lane_of_shard(1, 4, 2), 0);
        assert_eq!(lane_of_shard(2, 4, 2), 1);
        assert_eq!(lane_of_shard(3, 4, 2), 1);
        // More workers than shards: every shard gets its own lane prefix.
        assert_eq!(lane_of_shard(0, 2, 4), 0);
        assert_eq!(lane_of_shard(1, 2, 4), 2);
        // Degenerate inputs stay in range.
        assert_eq!(lane_of_shard(5, 3, 2), 1);
        assert_eq!(lane_of_shard(0, 0, 2), 0);
    }

    #[test]
    fn lanes_parse_and_display_round_trip() {
        for lane in [Lane::Interactive, Lane::Batch] {
            let rendered = lane.to_string();
            assert_eq!(rendered.parse::<Lane>(), Ok(lane));
            assert!(lane.index() < Lane::COUNT);
        }
        assert!("express".parse::<Lane>().is_err());
        assert_eq!(Lane::default(), Lane::Interactive);
    }

    #[test]
    fn a_zero_deadline_is_shed_at_admission() {
        let service = CoreService::start(paper_example::graph(), ServiceConfig::default());
        let err = service
            .submit_opts(
                QueryRequest::single(2, 1, 4),
                SubmitOptions::default().with_deadline(Duration::ZERO),
            )
            .unwrap_err();
        assert!(matches!(err, TkError::DeadlineExceeded { .. }), "{err}");
        let stats = service.stats();
        assert_eq!(stats.admitted, 0, "never queued");
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.lane(Lane::Interactive).shed, 1);
        service.shutdown();
    }

    #[test]
    fn per_lane_counters_sum_to_totals_across_both_classes() {
        let service = CoreService::start(
            paper_example::graph(),
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
        );
        let mut tickets = Vec::new();
        for _ in 0..3 {
            tickets.push(
                service
                    .submit_opts(QueryRequest::single(2, 1, 4), SubmitOptions::default())
                    .unwrap(),
            );
        }
        for _ in 0..2 {
            tickets.push(
                service
                    .submit_opts(
                        QueryRequest::single(2, 1, 4),
                        SubmitOptions::batch().with_deadline(Duration::from_secs(3600)),
                    )
                    .unwrap(),
            );
        }
        for ticket in tickets {
            let reply = ticket.wait().unwrap();
            assert_eq!(reply.response.total_cores(), 2);
        }
        let stats = service.stats();
        assert_eq!(stats.admitted, 5);
        assert_eq!(stats.completed, 5);
        assert_eq!(stats.shed, 0);
        assert_eq!(stats.lane(Lane::Interactive).admitted, 3);
        assert_eq!(stats.lane(Lane::Batch).admitted, 2);
        let lane_admitted: u64 = stats.per_lane.iter().map(|l| l.admitted).sum();
        let lane_completed: u64 = stats.per_lane.iter().map(|l| l.completed).sum();
        assert_eq!(lane_admitted, stats.admitted);
        assert_eq!(lane_completed, stats.completed);
        service.shutdown();
    }

    #[test]
    fn latency_histogram_buckets_by_decade() {
        let mut histogram = LatencyHistogram::default();
        histogram.record(Duration::from_micros(5));
        histogram.record(Duration::from_micros(50));
        histogram.record(Duration::from_millis(5));
        histogram.record(Duration::from_secs(100));
        assert_eq!(histogram.buckets[0], 1);
        assert_eq!(histogram.buckets[1], 1);
        assert_eq!(histogram.buckets[3], 1);
        assert_eq!(histogram.buckets[LatencyHistogram::NUM_BUCKETS - 1], 1);
        assert_eq!(histogram.count(), 4);
    }

    #[test]
    fn submissions_after_shutdown_are_refused() {
        let graph = paper_example::graph();
        let engine = Arc::new(QueryEngine::new(graph));
        engine.warm(2); // make the memory gate eligible to fire
        let mut service = CoreService::over(
            Arc::clone(&engine),
            ServiceConfig {
                admission_memory_bytes: Some(0),
                ..ServiceConfig::default()
            },
        );
        service.close_and_join();
        // Stopped beats over-budget: the caller must learn the service is
        // gone, not be told to back off and retry.
        assert!(matches!(
            service.submit(QueryRequest::single(2, 1, 4)),
            Err(TkError::ServiceStopped)
        ));
        assert_eq!(service.stats().rejected, 0);
    }

    #[test]
    fn memory_admission_gate_rejects_when_cache_is_over_budget() {
        let graph = paper_example::graph();
        let engine = Arc::new(QueryEngine::new(graph));
        engine.warm(2); // make the cache non-empty
        assert!(engine.cache_stats().resident_bytes > 0);
        let service = CoreService::over(
            Arc::clone(&engine),
            ServiceConfig {
                admission_memory_bytes: Some(0),
                ..ServiceConfig::default()
            },
        );
        let err = service.submit(QueryRequest::single(2, 1, 4)).unwrap_err();
        assert!(matches!(
            err,
            TkError::BudgetExceeded {
                resource: "cache memory",
                ..
            }
        ));
        assert_eq!(service.stats().rejected, 1);
    }

    /// A sink that panics on the first emitted core.
    struct PanickingSink;

    impl ResultSink for PanickingSink {
        fn emit(&mut self, _tti: TimeWindow, _edges: &[temporal_graph::EdgeId]) {
            panic!("sink rejected the core");
        }
    }

    #[test]
    fn a_panicking_sink_fails_only_its_request_and_stats_survive() {
        let service = CoreService::start(
            paper_example::graph(),
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
        );
        let err = service
            .submit(QueryRequest::single(2, 1, 4).stream(Box::new(PanickingSink)))
            .unwrap()
            .wait()
            .expect_err("the panic surfaces as a typed error");
        assert!(
            matches!(&err, TkError::WorkerPanicked { detail } if detail.contains("rejected")),
            "{err}"
        );
        // The worker survived: later requests complete on a full pool, and
        // the per-worker histograms still include the panicked request.
        for _ in 0..4 {
            let reply = service
                .submit(QueryRequest::single(2, 1, 4))
                .unwrap()
                .wait()
                .unwrap();
            assert_eq!(reply.response.total_cores(), 2);
        }
        let stats = service.stats();
        assert_eq!(stats.completed, 5);
        assert_eq!(stats.panicked, 1);
        assert_eq!(stats.per_worker.len(), 2);
        let per_worker_completed: u64 = stats.per_worker.iter().map(|w| w.completed).sum();
        assert_eq!(per_worker_completed, 5);
        let per_worker_panicked: u64 = stats.per_worker.iter().map(|w| w.panicked).sum();
        assert_eq!(per_worker_panicked, 1);
        let histogram_total: u64 = stats.per_worker.iter().map(|w| w.latency.count()).sum();
        assert_eq!(histogram_total, 5, "histograms survive the panic");
        service.shutdown();
    }
}
