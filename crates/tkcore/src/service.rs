//! A thread-backed serving front end: [`CoreService`].
//!
//! The ROADMAP's sharded / async serving layer needs a seam between clients
//! and the query engines: a bounded queue with admission control, typed
//! rejection, and per-request accounting.  `CoreService` is that seam —
//! [`ServiceConfig::workers`] OS worker threads draining one shared bounded
//! FIFO of validated requests, executing on either the span-wide
//! [`QueryEngine`] or a time-interval [`ShardedEngine`]:
//!
//! * [`CoreService::submit`] **validates synchronously** (malformed requests
//!   never occupy queue capacity) and then applies **admission control**:
//!   when the queue already holds [`ServiceConfig::queue_depth`] requests, or
//!   the engine's skyline cache sits above
//!   [`ServiceConfig::admission_memory_bytes`], the request is refused with
//!   [`TkError::BudgetExceeded`] instead of being queued;
//! * every admitted request gets a [`RequestId`] and a [`Ticket`]; the reply
//!   carries queue-wait and execution latency alongside the
//!   [`QueryResponse`];
//! * with `workers > 1`, requests execute concurrently (each worker owns one
//!   request at a time); per-worker latency counters are aggregated into the
//!   shared [`ServiceStats`] and broken out in [`ServiceStats::per_worker`];
//! * multi-`k` requests fan across the engine's batch path
//!   ([`QueryEngine::run_batch_with`] or its sharded counterpart), so a
//!   `k`-range sweep still costs at most one skyline build per `(shard, k)`.
//!
//! Swapping the worker pool for an async executor, or the single queue for
//! per-shard queues, changes this module only — the admission and accounting
//! surface is the contract the roadmap items plug into.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::engine::{CacheStats, EngineConfig, QueryEngine};
use crate::error::TkError;
use crate::query::{Algorithm, QueryStats, TimeRangeKCoreQuery};
use crate::request::{KOutcome, KOutput, OutputMode, QueryRequest, QueryResponse};
use crate::shard::{ShardPlan, ShardedBackend, ShardedEngine};
use crate::sink::{CollectingSink, CountingSink, ResultSink};
use temporal_graph::TemporalGraph;

/// Tuning knobs of a [`CoreService`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Maximum number of requests waiting in the queue (not counting the
    /// ones currently executing on workers).  Submissions beyond this depth
    /// are refused with [`TkError::BudgetExceeded`].
    pub queue_depth: usize,
    /// Worker threads draining the shared queue; `0` is treated as `1`.
    /// Each worker executes one request at a time, so up to `workers`
    /// requests are in flight concurrently.
    pub workers: usize,
    /// Refuse new requests while the engine's skyline cache holds more than
    /// this many resident bytes (`None` disables the memory gate; the
    /// engine's own LRU budget still bounds the cache itself).
    pub admission_memory_bytes: Option<usize>,
    /// Configuration of the underlying engine.
    pub engine: EngineConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            queue_depth: 64,
            workers: 1,
            admission_memory_bytes: None,
            engine: EngineConfig::default(),
        }
    }
}

/// Identifier of one admitted request, unique per service instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub u64);

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req-{}", self.0)
    }
}

/// The completed reply to an admitted request.
#[derive(Debug)]
pub struct ServiceReply {
    /// The id handed out at submission.
    pub id: RequestId,
    /// The request's results, one outcome per `k`.
    pub response: QueryResponse,
    /// Time the request spent queued before a worker picked it up.
    pub queue_wait: Duration,
    /// Wall-clock execution time on the worker.
    pub execute_time: Duration,
    /// Index of the worker thread that executed the request.
    pub worker: usize,
}

/// Handle to one admitted request; redeem it with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    /// The id of the admitted request.
    pub id: RequestId,
    rx: mpsc::Receiver<Result<ServiceReply, TkError>>,
}

impl Ticket {
    /// Blocks until the request completes (or the service shuts down, which
    /// yields [`TkError::ServiceStopped`]).
    ///
    /// # Errors
    /// Whatever the execution produced, or [`TkError::ServiceStopped`] if
    /// the worker exited before replying.
    pub fn wait(self) -> Result<ServiceReply, TkError> {
        self.rx.recv().unwrap_or(Err(TkError::ServiceStopped))
    }

    /// Non-blocking probe: `None` while the request is still in flight.
    pub fn try_wait(&self) -> Option<Result<ServiceReply, TkError>> {
        self.rx.try_recv().ok()
    }
}

/// Latency counters of one worker thread (see [`ServiceStats::per_worker`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Requests this worker fully executed and replied to.
    pub completed: u64,
    /// Summed execution time of this worker's completed requests.
    pub execute_total: Duration,
}

/// Cumulative request accounting, readable via [`CoreService::stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests admitted to the queue.
    pub admitted: u64,
    /// Requests refused by admission control ([`TkError::BudgetExceeded`]).
    pub rejected: u64,
    /// Requests fully executed and replied to (sum of the per-worker
    /// counters).
    pub completed: u64,
    /// Summed queue wait of completed requests.
    pub queue_wait_total: Duration,
    /// Summed execution time of completed requests (sum of the per-worker
    /// totals).
    pub execute_total: Duration,
    /// High-water mark of the queue depth.
    pub max_queue_depth: usize,
    /// Per-worker latency counters, one entry per worker thread.
    pub per_worker: Vec<WorkerStats>,
}

struct Job {
    id: RequestId,
    request: crate::request::ValidatedRequest,
    algorithm: Algorithm,
    enqueued_at: Instant,
    reply: mpsc::Sender<Result<ServiceReply, TkError>>,
}

struct State {
    queue: VecDeque<Job>,
    open: bool,
    stats: ServiceStats,
}

struct Shared {
    state: Mutex<State>,
    work_ready: Condvar,
}

/// The engine a service executes on: span-wide or time-interval sharded.
enum ServingEngine {
    Span(Arc<QueryEngine>),
    Sharded(Arc<ShardedEngine>),
}

impl ServingEngine {
    fn graph(&self) -> &TemporalGraph {
        match self {
            ServingEngine::Span(engine) => engine.graph(),
            ServingEngine::Sharded(engine) => engine.graph(),
        }
    }

    fn cache_stats(&self) -> CacheStats {
        match self {
            ServingEngine::Span(engine) => engine.cache_stats(),
            ServingEngine::Sharded(engine) => engine.cache_stats(),
        }
    }

    fn run_batch_with<S, F>(
        &self,
        queries: &[TimeRangeKCoreQuery],
        algorithm: Algorithm,
        make_sink: F,
    ) -> Result<Vec<(S, QueryStats)>, TkError>
    where
        S: ResultSink + Send,
        F: Fn(usize) -> S + Sync,
    {
        match self {
            ServingEngine::Span(engine) => engine
                .run_batch_with(queries, algorithm, make_sink)
                .map(|(results, _)| results),
            ServingEngine::Sharded(engine) => engine
                .run_batch_with(queries, algorithm, make_sink)
                .map(|(results, _)| results),
        }
    }
}

/// A query-serving front end: bounded queue + admission control over a
/// span-wide [`QueryEngine`] or a [`ShardedEngine`], processed by a pool of
/// [`ServiceConfig::workers`] worker threads.
///
/// # Example
///
/// ```
/// use tkcore::{paper_example, Algorithm, CoreService, QueryRequest, ServiceConfig};
///
/// let service = CoreService::start(
///     paper_example::graph(),
///     ServiceConfig {
///         workers: 2,
///         ..ServiceConfig::default()
///     },
/// );
/// let ticket = service
///     .submit(QueryRequest::sweep(1..=3, 1, 7))
///     .unwrap();
/// let reply = ticket.wait().unwrap();
/// assert_eq!(reply.response.outcomes.len(), 3); // one outcome per k
/// // Each k of the sweep built its span-wide skyline at most once.
/// assert_eq!(service.cache_stats().misses, 3);
/// assert_eq!(service.stats().per_worker.len(), 2);
/// service.shutdown();
/// ```
pub struct CoreService {
    engine: Arc<ServingEngine>,
    shared: Arc<Shared>,
    config: ServiceConfig,
    next_id: AtomicU64,
    workers: Vec<JoinHandle<()>>,
}

impl CoreService {
    /// Starts a service owning `graph` on a span-wide engine, with its
    /// worker pool running.
    pub fn start(graph: TemporalGraph, config: ServiceConfig) -> Self {
        Self::over(
            Arc::new(QueryEngine::with_config(graph, config.engine)),
            config,
        )
    }

    /// Starts a service owning `graph` on a [`ShardedEngine`] cut by `plan`.
    ///
    /// # Errors
    /// [`TkError::InvalidShardPlan`] when `plan` does not resolve against
    /// the graph.
    pub fn start_sharded(
        graph: TemporalGraph,
        plan: ShardPlan,
        config: ServiceConfig,
    ) -> Result<Self, TkError> {
        let engine = Arc::new(ShardedEngine::with_config(graph, plan, config.engine)?);
        Ok(Self::over_sharded(engine, config))
    }

    /// Starts a service over an existing (possibly shared) span-wide engine.
    pub fn over(engine: Arc<QueryEngine>, config: ServiceConfig) -> Self {
        Self::launch(ServingEngine::Span(engine), config)
    }

    /// Starts a service over an existing (possibly shared) sharded engine.
    pub fn over_sharded(engine: Arc<ShardedEngine>, config: ServiceConfig) -> Self {
        Self::launch(ServingEngine::Sharded(engine), config)
    }

    fn launch(engine: ServingEngine, config: ServiceConfig) -> Self {
        let num_workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                open: true,
                stats: ServiceStats {
                    per_worker: vec![WorkerStats::default(); num_workers],
                    ..ServiceStats::default()
                },
            }),
            work_ready: Condvar::new(),
        });
        let engine = Arc::new(engine);
        let workers = (0..num_workers)
            .map(|worker_idx| {
                let worker_shared = Arc::clone(&shared);
                let worker_engine = Arc::clone(&engine);
                std::thread::Builder::new()
                    .name(format!("tkcore-service-{worker_idx}"))
                    .spawn(move || worker_loop(worker_engine, worker_shared, worker_idx))
                    .expect("spawn service worker")
            })
            .collect();
        Self {
            engine,
            shared,
            config,
            next_id: AtomicU64::new(1),
            workers,
        }
    }

    /// The span-wide engine this service executes on, when it is not
    /// sharded (for cache statistics, warming…).
    pub fn engine(&self) -> Option<&QueryEngine> {
        match &*self.engine {
            ServingEngine::Span(engine) => Some(engine),
            ServingEngine::Sharded(_) => None,
        }
    }

    /// The sharded engine this service executes on, when it is sharded.
    pub fn sharded_engine(&self) -> Option<&ShardedEngine> {
        match &*self.engine {
            ServingEngine::Span(_) => None,
            ServingEngine::Sharded(engine) => Some(engine),
        }
    }

    /// Skyline-cache counters of whichever engine backs this service; a
    /// sharded service reports the per-shard dimension.
    pub fn cache_stats(&self) -> CacheStats {
        self.engine.cache_stats()
    }

    /// Cumulative admission and latency counters, including per-worker ones.
    pub fn stats(&self) -> ServiceStats {
        self.shared
            .state
            .lock()
            .expect("service state")
            .stats
            .clone()
    }

    /// Submits a request running the paper's final algorithm (`Enum`).
    ///
    /// # Errors
    /// See [`CoreService::submit_with`].
    pub fn submit(&self, request: QueryRequest) -> Result<Ticket, TkError> {
        self.submit_with(request, Algorithm::Enum)
    }

    /// Validates `request`, applies admission control, and enqueues it for
    /// the chosen algorithm.
    ///
    /// # Errors
    /// * the validation errors of [`QueryRequest::validate`] (checked
    ///   synchronously — malformed requests never consume queue capacity);
    /// * [`TkError::BudgetExceeded`] when the queue is at
    ///   [`ServiceConfig::queue_depth`] or the skyline cache exceeds
    ///   [`ServiceConfig::admission_memory_bytes`];
    /// * [`TkError::ServiceStopped`] after [`CoreService::shutdown`].
    pub fn submit_with(
        &self,
        request: QueryRequest,
        algorithm: Algorithm,
    ) -> Result<Ticket, TkError> {
        let validated = request.validate(self.engine.graph())?;
        // Reading cache statistics takes the engine's cache mutex; doing it
        // before the state lock keeps the two locks unnested.
        let resident_over_budget = self
            .config
            .admission_memory_bytes
            .map(|budget| self.engine.cache_stats().resident_bytes > budget);
        let mut state = self.shared.state.lock().expect("service state");
        if !state.open {
            // A stopped service is ServiceStopped, never BudgetExceeded.
            return Err(TkError::ServiceStopped);
        }
        if resident_over_budget == Some(true) {
            state.stats.rejected += 1;
            return Err(TkError::BudgetExceeded {
                resource: "cache memory",
                limit: self
                    .config
                    .admission_memory_bytes
                    .expect("gate only fires when configured"),
            });
        }
        if state.queue.len() >= self.config.queue_depth {
            state.stats.rejected += 1;
            return Err(TkError::BudgetExceeded {
                resource: "request queue",
                limit: self.config.queue_depth,
            });
        }
        let id = RequestId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let (tx, rx) = mpsc::channel();
        state.queue.push_back(Job {
            id,
            request: validated,
            algorithm,
            enqueued_at: Instant::now(),
            reply: tx,
        });
        state.stats.admitted += 1;
        state.stats.max_queue_depth = state.stats.max_queue_depth.max(state.queue.len());
        drop(state);
        self.shared.work_ready.notify_one();
        Ok(Ticket { id, rx })
    }

    /// Stops accepting requests, drains the queue, and joins the worker
    /// pool.  Dropping the service does the same.
    pub fn shutdown(mut self) {
        self.close_and_join();
    }

    fn close_and_join(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("service state");
            state.open = false;
        }
        self.shared.work_ready.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for CoreService {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

fn worker_loop(engine: Arc<ServingEngine>, shared: Arc<Shared>, worker_idx: usize) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("service state");
            loop {
                if let Some(job) = state.queue.pop_front() {
                    break job;
                }
                if !state.open {
                    return; // closed and drained
                }
                state = shared
                    .work_ready
                    .wait(state)
                    .expect("service state poisoned");
            }
        };
        let queue_wait = job.enqueued_at.elapsed();
        let t0 = Instant::now();
        let result = execute_job(&engine, job.request, job.algorithm);
        let execute_time = t0.elapsed();
        {
            let mut state = shared.state.lock().expect("service state");
            state.stats.completed += 1;
            state.stats.queue_wait_total += queue_wait;
            state.stats.execute_total += execute_time;
            let lane = &mut state.stats.per_worker[worker_idx];
            lane.completed += 1;
            lane.execute_total += execute_time;
        }
        let reply = result.map(|response| ServiceReply {
            id: job.id,
            response,
            queue_wait,
            execute_time,
            worker: worker_idx,
        });
        // The submitter may have dropped its ticket; that is not an error.
        let _ = job.reply.send(reply);
    }
}

/// Executes one validated request on the engine.  Count and materialize
/// modes fan the per-`k` queries across the engine's batch path; stream
/// mode runs sequentially because all `k` values share one sink.
fn execute_job(
    engine: &ServingEngine,
    request: crate::request::ValidatedRequest,
    algorithm: Algorithm,
) -> Result<QueryResponse, TkError> {
    let window = request.window();
    let queries: Vec<TimeRangeKCoreQuery> = request
        .ks()
        .iter()
        .map(|&k| TimeRangeKCoreQuery::validated(k, window))
        .collect();
    match request.mode() {
        OutputMode::Stream(_) => {
            // Sequential: the one caller sink sees every k in order, still
            // answered from the engine's skyline cache.
            match engine {
                ServingEngine::Span(span) => {
                    let backend =
                        crate::backend::CachedBackend::with_algorithm(Arc::clone(span), algorithm);
                    request.execute(span.graph(), &backend)
                }
                ServingEngine::Sharded(sharded) => {
                    let backend = ShardedBackend::with_algorithm(Arc::clone(sharded), algorithm);
                    request.execute(sharded.graph(), &backend)
                }
            }
        }
        OutputMode::Materialize => {
            let results =
                engine.run_batch_with(&queries, algorithm, |_| CollectingSink::default())?;
            let outcomes = queries
                .iter()
                .zip(results)
                .map(|(query, (sink, stats))| KOutcome {
                    k: query.k(),
                    stats,
                    output: KOutput::Cores(sink.into_sorted()),
                })
                .collect();
            Ok(QueryResponse {
                window,
                outcomes,
                sink: None,
            })
        }
        OutputMode::Count => {
            let results =
                engine.run_batch_with(&queries, algorithm, |_| CountingSink::default())?;
            let outcomes = queries
                .iter()
                .zip(results)
                .map(|(query, (sink, stats))| KOutcome {
                    k: query.k(),
                    stats,
                    output: KOutput::Counts(sink),
                })
                .collect();
            Ok(QueryResponse {
                window,
                outcomes,
                sink: None,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example;
    use crate::request::KOutput;

    #[test]
    fn submitted_requests_complete_with_latency_accounting() {
        let service = CoreService::start(paper_example::graph(), ServiceConfig::default());
        let ticket = service.submit(QueryRequest::single(2, 1, 4)).unwrap();
        let id = ticket.id;
        let reply = ticket.wait().unwrap();
        assert_eq!(reply.id, id);
        assert_eq!(reply.response.total_cores(), 2);
        assert!(reply.worker < 1, "single-worker pool");
        let stats = service.stats();
        assert_eq!(stats.admitted, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.rejected, 0);
        assert!(stats.execute_total >= reply.execute_time);
        assert_eq!(stats.per_worker.len(), 1);
        assert_eq!(stats.per_worker[0].completed, 1);
        assert_eq!(stats.per_worker[0].execute_total, stats.execute_total);
        service.shutdown();
    }

    #[test]
    fn invalid_requests_are_rejected_synchronously() {
        let service = CoreService::start(paper_example::graph(), ServiceConfig::default());
        assert!(matches!(
            service.submit(QueryRequest::single(0, 1, 4)),
            Err(TkError::KOutOfRange { k: 0 })
        ));
        assert!(matches!(
            service.submit(QueryRequest::single(2, 9, 12)),
            Err(TkError::WindowPastTmax { .. })
        ));
        let stats = service.stats();
        assert_eq!(stats.admitted, 0, "invalid requests never hit the queue");
    }

    #[test]
    fn sweep_requests_report_per_k_outcomes() {
        let service = CoreService::start(paper_example::graph(), ServiceConfig::default());
        let reply = service
            .submit(QueryRequest::sweep(1..=3, 1, 7))
            .unwrap()
            .wait()
            .unwrap();
        let ks: Vec<usize> = reply.response.outcomes.iter().map(|o| o.k).collect();
        assert_eq!(ks, vec![1, 2, 3]);
        for outcome in &reply.response.outcomes {
            assert!(matches!(outcome.output, KOutput::Counts(_)));
        }
        assert_eq!(service.cache_stats().misses, 3);
        service.shutdown();
    }

    #[test]
    fn sharded_service_answers_like_span_and_reports_shard_cache() {
        let graph = paper_example::graph();
        let span = CoreService::start(graph.clone(), ServiceConfig::default());
        let sharded =
            CoreService::start_sharded(graph, ShardPlan::FixedCount(4), ServiceConfig::default())
                .unwrap();
        assert!(sharded.engine().is_none());
        assert_eq!(sharded.sharded_engine().unwrap().num_shards(), 4);
        for request in [
            || QueryRequest::single(2, 1, 4).materialize(),
            || QueryRequest::sweep(1..=3, 2, 6).materialize(),
        ] {
            let a = span.submit(request()).unwrap().wait().unwrap();
            let b = sharded.submit(request()).unwrap().wait().unwrap();
            assert_eq!(a.response.total_cores(), b.response.total_cores());
            for (oa, ob) in a.response.outcomes.iter().zip(&b.response.outcomes) {
                let (KOutput::Cores(ca), KOutput::Cores(cb)) = (&oa.output, &ob.output) else {
                    panic!("materialized request");
                };
                assert_eq!(ca, cb, "k={}", oa.k);
            }
        }
        assert_eq!(sharded.cache_stats().per_shard.len(), 4);
        span.shutdown();
        sharded.shutdown();
    }

    #[test]
    fn submissions_after_shutdown_are_refused() {
        let graph = paper_example::graph();
        let engine = Arc::new(QueryEngine::new(graph));
        engine.warm(2); // make the memory gate eligible to fire
        let mut service = CoreService::over(
            Arc::clone(&engine),
            ServiceConfig {
                admission_memory_bytes: Some(0),
                ..ServiceConfig::default()
            },
        );
        service.close_and_join();
        // Stopped beats over-budget: the caller must learn the service is
        // gone, not be told to back off and retry.
        assert!(matches!(
            service.submit(QueryRequest::single(2, 1, 4)),
            Err(TkError::ServiceStopped)
        ));
        assert_eq!(service.stats().rejected, 0);
    }

    #[test]
    fn memory_admission_gate_rejects_when_cache_is_over_budget() {
        let graph = paper_example::graph();
        let engine = Arc::new(QueryEngine::new(graph));
        engine.warm(2); // make the cache non-empty
        assert!(engine.cache_stats().resident_bytes > 0);
        let service = CoreService::over(
            Arc::clone(&engine),
            ServiceConfig {
                admission_memory_bytes: Some(0),
                ..ServiceConfig::default()
            },
        );
        let err = service.submit(QueryRequest::single(2, 1, 4)).unwrap_err();
        assert!(matches!(
            err,
            TkError::BudgetExceeded {
                resource: "cache memory",
                ..
            }
        ));
        assert_eq!(service.stats().rejected, 1);
    }
}
