//! The typed, fallible request front end: [`QueryRequest`] →
//! [`ValidatedRequest`] → [`QueryResponse`].
//!
//! A request generalises the paper's `(k, [Ts, Te])` problem statement to
//! the shapes a serving layer meets in practice:
//!
//! * a **single `k`** (the paper's query),
//! * a **multi-`k` set** (`{2, 5, 9}` for one dashboard panel each),
//! * a **`k`-range sweep** (`k_min..=k_max`, e.g. to find the largest `k`
//!   with a non-empty answer) — through a [`crate::CachedBackend`] each `k`
//!   reuses the engine's span-wide skyline, so a sweep costs at most one
//!   index build per `k` (and through a [`crate::ShardedBackend`] at most
//!   one build per `(shard, k)` touched by the window);
//!
//! crossed with an [`OutputMode`]: materialise every core, count them, or
//! stream them into a caller-supplied sink.
//!
//! Construction is infallible and graph-independent; [`QueryRequest::validate`]
//! checks the request against a concrete graph and returns a typed
//! [`TkError`] for malformed input (`k == 0`, empty windows, windows past
//! the last timestamp) instead of panicking.  The resulting
//! [`ValidatedRequest`] executes against any [`CoreBackend`].

use std::fmt;
use std::ops::RangeInclusive;

use crate::backend::CoreBackend;
use crate::error::TkError;
use crate::query::QueryStats;
use crate::result::TemporalKCore;
use crate::sink::{CollectingSink, CountingSink, ResultSink};
use temporal_graph::{TemporalGraph, TimeWindow, Timestamp};

/// Which `k` values a request covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KSelection {
    /// The paper's single-`k` query.
    Single(usize),
    /// An explicit set of `k` values, executed in the given order
    /// (duplicates are collapsed).
    Set(Vec<usize>),
    /// An inclusive sweep `min..=max`, executed in increasing order.
    Range {
        /// Smallest `k` of the sweep (inclusive).
        min: usize,
        /// Largest `k` of the sweep (inclusive).
        max: usize,
    },
}

impl KSelection {
    fn expand(&self) -> Result<Vec<usize>, TkError> {
        let ks: Vec<usize> = match self {
            KSelection::Single(k) => vec![*k],
            KSelection::Set(ks) => {
                let mut seen = Vec::with_capacity(ks.len());
                for &k in ks {
                    if !seen.contains(&k) {
                        seen.push(k);
                    }
                }
                seen
            }
            KSelection::Range { min, max } => {
                if min > max {
                    return Err(TkError::EmptyKSelection);
                }
                (*min..=*max).collect()
            }
        };
        if ks.is_empty() {
            return Err(TkError::EmptyKSelection);
        }
        if let Some(&k) = ks.iter().find(|&&k| k == 0) {
            return Err(TkError::KOutOfRange { k });
        }
        Ok(ks)
    }
}

/// What a request does with the cores it finds.
#[derive(Default)]
pub enum OutputMode {
    /// Collect every core, returned per `k` in canonical order.
    Materialize,
    /// Count cores and result edges without materialising them (what the
    /// paper's experiments do, since `|R|` routinely exceeds memory).
    #[default]
    Count,
    /// Stream every core into the supplied sink; for multi-`k` requests the
    /// same sink sees all `k` values in execution order.  The sink is handed
    /// back in [`QueryResponse::sink`].
    Stream(Box<dyn ResultSink + Send>),
}

impl fmt::Debug for OutputMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OutputMode::Materialize => f.write_str("Materialize"),
            OutputMode::Count => f.write_str("Count"),
            OutputMode::Stream(_) => f.write_str("Stream(..)"),
        }
    }
}

/// A not-yet-validated time-range temporal k-core request.
///
/// Built from raw parameters (so malformed input is representable and
/// rejected with a typed error at [`QueryRequest::validate`] time), then
/// executed against any [`CoreBackend`] with [`QueryRequest::run`].
///
/// # Example
///
/// ```
/// use tkcore::{paper_example, Algorithm, KOutput, QueryRequest};
///
/// let graph = paper_example::graph();
/// let response = QueryRequest::single(2, 1, 4)
///     .materialize()
///     .run(&graph, &Algorithm::Enum)
///     .unwrap();
/// let KOutput::Cores(cores) = &response.outcomes[0].output else {
///     panic!("materialized request");
/// };
/// assert_eq!(cores.len(), 2); // Figure 2 of the paper
/// ```
#[derive(Debug)]
pub struct QueryRequest {
    ks: KSelection,
    start: Timestamp,
    end: Timestamp,
    mode: OutputMode,
}

impl QueryRequest {
    /// A single-`k` request over the raw window `[start, end]` (the paper's
    /// problem statement).  An `end` past the graph's last timestamp is
    /// clamped at validation, so `QueryRequest::single(k, 1, Timestamp::MAX)`
    /// queries the whole span.
    pub fn single(k: usize, start: Timestamp, end: Timestamp) -> Self {
        Self::with_selection(KSelection::Single(k), start, end)
    }

    /// A multi-`k` request: one execution per distinct `k`, same window.
    pub fn multi(ks: impl Into<Vec<usize>>, start: Timestamp, end: Timestamp) -> Self {
        Self::with_selection(KSelection::Set(ks.into()), start, end)
    }

    /// A `k`-range sweep `ks.start()..=ks.end()` over `[start, end]`.
    pub fn sweep(ks: RangeInclusive<usize>, start: Timestamp, end: Timestamp) -> Self {
        Self::with_selection(
            KSelection::Range {
                min: *ks.start(),
                max: *ks.end(),
            },
            start,
            end,
        )
    }

    /// A request with an explicit [`KSelection`].
    pub fn with_selection(ks: KSelection, start: Timestamp, end: Timestamp) -> Self {
        Self {
            ks,
            start,
            end,
            mode: OutputMode::Count,
        }
    }

    /// Sets the output mode (the default is [`OutputMode::Count`]).
    pub fn output(mut self, mode: OutputMode) -> Self {
        self.mode = mode;
        self
    }

    /// Shorthand for `.output(OutputMode::Materialize)`.
    pub fn materialize(self) -> Self {
        self.output(OutputMode::Materialize)
    }

    /// Shorthand for `.output(OutputMode::Count)`.
    pub fn count(self) -> Self {
        self.output(OutputMode::Count)
    }

    /// Shorthand for `.output(OutputMode::Stream(sink))`.
    pub fn stream(self, sink: Box<dyn ResultSink + Send>) -> Self {
        self.output(OutputMode::Stream(sink))
    }

    /// The requested `k` selection.
    pub fn selection(&self) -> &KSelection {
        &self.ks
    }

    /// The raw (unvalidated) requested window as `(start, end)`.
    pub fn window_bounds(&self) -> (Timestamp, Timestamp) {
        (self.start, self.end)
    }

    /// Checks the request against a concrete graph.
    ///
    /// The window's `end` is clamped to the graph's last timestamp (an
    /// overhanging query is a valid question with a smaller answer); all
    /// other defects are typed errors.
    ///
    /// # Errors
    /// * [`TkError::KOutOfRange`] — some selected `k` is `0`;
    /// * [`TkError::EmptyKSelection`] — the selection contains no `k`;
    /// * [`TkError::EmptyWindow`] — `start == 0` or `start > end`;
    /// * [`TkError::WindowPastTmax`] — `start` exceeds `graph.tmax()`.
    pub fn validate(self, graph: &TemporalGraph) -> Result<ValidatedRequest, TkError> {
        let ks = self.ks.expand()?;
        let Some(window) = TimeWindow::try_new(self.start, self.end) else {
            return Err(TkError::EmptyWindow {
                start: self.start,
                end: self.end,
            });
        };
        let window = crate::backend::validate_query(graph, ks[0], window)?;
        Ok(ValidatedRequest {
            ks,
            window,
            mode: self.mode,
        })
    }

    /// Validates against `graph` and executes on `backend` in one step.
    ///
    /// # Errors
    /// Everything [`QueryRequest::validate`] rejects, plus any execution
    /// error of the backend.
    pub fn run(
        self,
        graph: &TemporalGraph,
        backend: &dyn CoreBackend,
    ) -> Result<QueryResponse, TkError> {
        self.validate(graph)?.execute(graph, backend)
    }
}

/// A request that passed [`QueryRequest::validate`]: every `k` is `>= 1`,
/// and the window is non-empty, within the graph span, and clamped.
#[derive(Debug)]
pub struct ValidatedRequest {
    ks: Vec<usize>,
    window: TimeWindow,
    mode: OutputMode,
}

impl ValidatedRequest {
    /// The distinct `k` values, in execution order.
    pub fn ks(&self) -> &[usize] {
        &self.ks
    }

    /// The validated, span-clamped query window.
    pub fn window(&self) -> TimeWindow {
        self.window
    }

    /// The output mode the request was built with.
    pub fn mode(&self) -> &OutputMode {
        &self.mode
    }

    /// Executes every `(k, window)` pair on `backend`, consuming the request.
    ///
    /// # Errors
    /// Propagates the backend's execution errors (validation has already
    /// passed, so [`CoreBackend`] input errors cannot occur here for the
    /// graph the request was validated against).
    pub fn execute(
        self,
        graph: &TemporalGraph,
        backend: &dyn CoreBackend,
    ) -> Result<QueryResponse, TkError> {
        let ValidatedRequest { ks, window, mode } = self;
        let mut outcomes = Vec::with_capacity(ks.len());
        let materialize = matches!(mode, OutputMode::Materialize);
        let mut streamed_sink = match mode {
            OutputMode::Stream(sink) => Some(sink),
            _ => None,
        };
        for k in ks {
            let outcome = if let Some(sink) = streamed_sink.as_mut() {
                let stats = backend.execute(graph, k, window, sink.as_mut())?;
                KOutcome {
                    k,
                    stats,
                    output: KOutput::Streamed,
                }
            } else if materialize {
                let mut sink = CollectingSink::default();
                let stats = backend.execute(graph, k, window, &mut sink)?;
                KOutcome {
                    k,
                    stats,
                    output: KOutput::Cores(sink.into_sorted()),
                }
            } else {
                let mut sink = CountingSink::default();
                let stats = backend.execute(graph, k, window, &mut sink)?;
                KOutcome {
                    k,
                    stats,
                    output: KOutput::Counts(sink),
                }
            };
            outcomes.push(outcome);
        }
        Ok(QueryResponse {
            window,
            outcomes,
            sink: streamed_sink,
        })
    }
}

/// Per-`k` result payload of a [`QueryResponse`].
#[derive(Debug)]
pub enum KOutput {
    /// All distinct cores of this `k`, in canonical order
    /// ([`OutputMode::Materialize`]).
    Cores(Vec<TemporalKCore>),
    /// Core and result-edge counts ([`OutputMode::Count`]).
    Counts(CountingSink),
    /// Results went to the caller's sink ([`OutputMode::Stream`]); counts
    /// are still available in the accompanying [`QueryStats`].
    Streamed,
}

/// Outcome of one `k` of a request: per-phase statistics plus the output in
/// the requested mode.
#[derive(Debug)]
pub struct KOutcome {
    /// The query parameter this outcome belongs to.
    pub k: usize,
    /// Per-phase timings and counts of this `k`'s execution.
    pub stats: QueryStats,
    /// The result payload in the requested [`OutputMode`].
    pub output: KOutput,
}

/// Everything a request produced: one [`KOutcome`] per `k`, in execution
/// order, plus the streaming sink handed back to the caller.
pub struct QueryResponse {
    /// The validated window the request actually ran over (end clamped to
    /// the graph's last timestamp).
    pub window: TimeWindow,
    /// Per-`k` outcomes, in execution order.
    pub outcomes: Vec<KOutcome>,
    /// For [`OutputMode::Stream`] requests, the sink that received every
    /// core; `None` otherwise.
    pub sink: Option<Box<dyn ResultSink + Send>>,
}

impl fmt::Debug for QueryResponse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueryResponse")
            .field("window", &self.window)
            .field("outcomes", &self.outcomes)
            .field("sink", &self.sink.as_ref().map(|_| "Box<dyn ResultSink>"))
            .finish()
    }
}

impl QueryResponse {
    /// Sum of distinct cores over all `k` values.
    pub fn total_cores(&self) -> u64 {
        self.outcomes.iter().map(|o| o.stats.num_cores).sum()
    }

    /// Sum of result edges (`|R|`) over all `k` values.
    pub fn total_result_edges(&self) -> u64 {
        self.outcomes
            .iter()
            .map(|o| o.stats.total_result_edges)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example;
    use crate::query::Algorithm;
    use crate::sink::FnSink;
    use temporal_graph::EdgeId;

    #[test]
    fn single_request_counts_figure_2() {
        let g = paper_example::graph();
        let response = QueryRequest::single(2, 1, 4)
            .run(&g, &Algorithm::Enum)
            .unwrap();
        assert_eq!(response.outcomes.len(), 1);
        assert_eq!(response.outcomes[0].k, 2);
        assert_eq!(response.total_cores(), 2);
        assert_eq!(response.total_result_edges(), 9);
        let KOutput::Counts(counts) = &response.outcomes[0].output else {
            panic!("count is the default mode");
        };
        assert_eq!(counts.num_cores, 2);
    }

    #[test]
    fn multi_k_collapses_duplicates_and_keeps_order() {
        let g = paper_example::graph();
        let response = QueryRequest::multi(vec![3, 2, 3], 1, 7)
            .run(&g, &Algorithm::Enum)
            .unwrap();
        let ks: Vec<usize> = response.outcomes.iter().map(|o| o.k).collect();
        assert_eq!(ks, vec![3, 2]);
    }

    #[test]
    fn sweep_reports_per_k_stats() {
        let g = paper_example::graph();
        let response = QueryRequest::sweep(1..=3, 1, 7)
            .run(&g, &Algorithm::Enum)
            .unwrap();
        let ks: Vec<usize> = response.outcomes.iter().map(|o| o.k).collect();
        assert_eq!(ks, vec![1, 2, 3]);
        for outcome in &response.outcomes {
            assert_eq!(outcome.stats.algorithm, Algorithm::Enum);
        }
        // More cohesion constraints, fewer (or equal) results.
        let cores: Vec<u64> = response
            .outcomes
            .iter()
            .map(|o| o.stats.num_cores)
            .collect();
        assert!(cores.windows(2).all(|w| w[0] >= w[1]), "{cores:?}");
    }

    #[test]
    fn stream_mode_hands_the_sink_back() {
        let g = paper_example::graph();
        let seen = std::sync::Arc::new(std::sync::Mutex::new(0u64));
        let seen_in_sink = std::sync::Arc::clone(&seen);
        let sink = FnSink(move |_tti: TimeWindow, _edges: &[EdgeId]| {
            *seen_in_sink.lock().unwrap() += 1;
        });
        let response = QueryRequest::single(2, 1, 4)
            .stream(Box::new(sink))
            .run(&g, &Algorithm::Enum)
            .unwrap();
        assert!(matches!(response.outcomes[0].output, KOutput::Streamed));
        assert!(response.sink.is_some());
        assert_eq!(*seen.lock().unwrap(), 2);
        assert_eq!(response.total_cores(), 2);
    }

    #[test]
    fn validation_rejects_each_defect_with_its_own_error() {
        let g = paper_example::graph();
        assert!(matches!(
            QueryRequest::single(0, 1, 4).validate(&g),
            Err(TkError::KOutOfRange { k: 0 })
        ));
        assert!(matches!(
            QueryRequest::multi(Vec::<usize>::new(), 1, 4).validate(&g),
            Err(TkError::EmptyKSelection)
        ));
        assert!(matches!(
            QueryRequest::with_selection(KSelection::Range { min: 4, max: 2 }, 1, 4).validate(&g),
            Err(TkError::EmptyKSelection)
        ));
        assert!(matches!(
            QueryRequest::single(2, 0, 4).validate(&g),
            Err(TkError::EmptyWindow { start: 0, end: 4 })
        ));
        assert!(matches!(
            QueryRequest::single(2, 5, 4).validate(&g),
            Err(TkError::EmptyWindow { start: 5, end: 4 })
        ));
        assert!(matches!(
            QueryRequest::single(2, 8, 20).validate(&g),
            Err(TkError::WindowPastTmax { start: 8, tmax: 7 })
        ));
    }

    #[test]
    fn validation_clamps_overhanging_windows() {
        let g = paper_example::graph();
        let validated = QueryRequest::single(2, 3, 500).validate(&g).unwrap();
        assert_eq!(validated.window(), TimeWindow::new(3, 7));
        assert_eq!(validated.ks(), &[2]);
        assert!(matches!(validated.mode(), OutputMode::Count));
    }

    #[test]
    fn materialized_outputs_are_canonical() {
        let g = paper_example::graph();
        let response = QueryRequest::single(2, 1, 4)
            .materialize()
            .run(&g, &Algorithm::Naive)
            .unwrap();
        let KOutput::Cores(cores) = &response.outcomes[0].output else {
            panic!("materialized");
        };
        assert_eq!(
            cores.as_slice(),
            crate::naive::naive_results(&g, 2, paper_example::example_query_range()).as_slice()
        );
    }
}
