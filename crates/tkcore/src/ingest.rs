//! Live-ingestion types: seal policies and per-absorb outcomes.
//!
//! The write path of the stack is documented on [`crate::ShardedEngine`]
//! (see also the "Live ingestion" section of the crate docs): an
//! [`temporal_graph::AppendableGraph`] buffers time-ordered events,
//! [`crate::ShardedEngine::absorb`] publishes them as a fresh snapshot and
//! invalidates exactly the tail-shard skylines and tail-touching
//! boundary-stitch entries, and a [`SealPolicy`] decides when the live tail
//! shard is rolled into a closed (immutable) shard.

use temporal_graph::{TimeWindow, Timestamp};

/// One ingest event: external endpoint labels plus a normalised timestamp
/// on the graph's `1..=tmax` timeline.
pub type IngestEvent = (u64, u64, Timestamp);

/// When [`crate::ShardedEngine::absorb`] rolls the live tail shard into a
/// closed shard (whose skylines become permanently valid) and opens a new
/// tail for subsequent appends.
///
/// Evaluated after each absorbed batch; [`SealPolicy::Manual`] (the
/// default) never seals automatically — call
/// [`crate::ShardedEngine::seal_tail`] instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SealPolicy {
    /// Seal once the tail shard holds at least this many edge occurrences.
    EdgeCount(usize),
    /// Seal once the tail shard's window spans at least this many
    /// timestamps.
    SpanWidth(Timestamp),
    /// Seal only on explicit [`crate::ShardedEngine::seal_tail`] calls.
    #[default]
    Manual,
}

impl SealPolicy {
    /// Whether a tail shard with `tail_edges` occurrences over `tail`
    /// should be sealed under this policy.
    pub fn should_seal(&self, tail_edges: usize, tail: TimeWindow) -> bool {
        match *self {
            SealPolicy::EdgeCount(limit) => limit > 0 && tail_edges >= limit,
            SealPolicy::SpanWidth(width) => width > 0 && tail.len() >= u64::from(width),
            SealPolicy::Manual => false,
        }
    }
}

/// Outcome of one [`crate::ShardedEngine::absorb`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AbsorbStats {
    /// Events appended by this batch (the whole batch, or zero: batches
    /// apply atomically).
    pub appended: usize,
    /// Tail-shard `(shard, k)` skylines dropped by this absorb.
    pub tail_invalidations: u64,
    /// Boundary-stitch entries whose shard range touches the tail dropped
    /// by this absorb.
    pub boundary_invalidations: u64,
    /// Whether this absorb sealed the tail shard (per the configured
    /// [`SealPolicy`]).
    pub sealed: bool,
    /// The graph's last timestamp after the batch.
    pub tmax: Timestamp,
    /// Total shards (closed + tail) after the batch.
    pub num_shards: usize,
    /// Closed (immutable) shards after the batch.
    pub sealed_shards: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_policies_trigger_on_their_own_dimension() {
        let tail = TimeWindow::new(11, 20); // 10 timestamps
        assert!(SealPolicy::EdgeCount(5).should_seal(5, tail));
        assert!(!SealPolicy::EdgeCount(5).should_seal(4, tail));
        assert!(SealPolicy::SpanWidth(10).should_seal(0, tail));
        assert!(!SealPolicy::SpanWidth(11).should_seal(999, tail));
        assert!(!SealPolicy::Manual.should_seal(usize::MAX, tail));
        // Degenerate zero limits never fire instead of always firing.
        assert!(!SealPolicy::EdgeCount(0).should_seal(0, tail));
        assert!(!SealPolicy::SpanWidth(0).should_seal(0, tail));
    }
}
