//! Time-range temporal k-core enumeration.
//!
//! This crate implements the framework of *Accelerating K-Core Computation
//! in Temporal Graphs* (EDBT 2026): given a temporal graph, an integer `k`
//! and a query time range `[Ts, Te]`, enumerate every distinct temporal
//! k-core appearing in the snapshot of any sub-window `[ts, te] ⊆ [Ts, Te]`.
//!
//! # The unified query surface
//!
//! All execution goes through three pieces:
//!
//! * [`QueryRequest`] — a typed, fallible request builder covering the
//!   paper's single-`k` query plus multi-`k` sets and `k`-range sweeps,
//!   crossed with an [`OutputMode`] (materialize / count / stream).
//!   [`QueryRequest::validate`] turns malformed input into a structured
//!   [`TkError`] instead of a panic;
//! * [`CoreBackend`] — pluggable execution: every [`Algorithm`] variant
//!   (`Enum`, `EnumBase`, `Otcd`, `Naive`) is a backend, and
//!   [`CachedBackend`] answers from a shared [`QueryEngine`]'s span-wide
//!   skyline cache so repeated and swept queries build each index at most
//!   once;
//! * [`CoreService`] — a thread-backed serving front end with a bounded
//!   request queue, [`ServiceConfig::workers`] worker threads, admission
//!   control ([`TkError::BudgetExceeded`]), and per-request [`RequestId`] +
//!   latency accounting.
//!
//! # Execution model
//!
//! All parallelism runs on one primitive: [`exec::ExecPool`], a
//! **persistent work-stealing pool** of named OS threads (per-worker task
//! deques plus a shared injector; idle workers steal from the back of other
//! lanes).  Nothing in the crate spawns transient per-call threads:
//!
//! * [`QueryEngine::run_batch`] and [`ShardedEngine::run_batch`] fan
//!   queries across the engine's pool — created lazily on the first
//!   multi-threaded batch ([`EngineConfig::num_threads`], the calling
//!   thread counts as one of them and participates in every batch, so
//!   nested fan-out never deadlocks;
//! * [`CoreService`] owns a pool of [`ServiceConfig::workers`] threads and
//!   routes every admitted request onto a **per-worker service lane**.
//!   With [`Affinity::Shard`], a request whose window overlaps shards
//!   `{i..j}` is scheduled onto the least-loaded worker owning one of
//!   those shards' cache partitions (shards split into contiguous
//!   per-worker blocks), keeping `(shard, k)` skylines and boundary-stitch
//!   entries hot in one worker's hands; [`Affinity::Shared`] simply
//!   load-balances.  Either way idle workers **steal** across lanes, so
//!   affinity is a locality preference, never a stall.  Engines created by
//!   `CoreService::start*` share the service's pool, so a multi-`k` sweep
//!   fans out on the same threads that serve requests;
//! * a panicking request (e.g. a panicking streaming sink) is caught on
//!   the worker: the ticket resolves to [`TkError::WorkerPanicked`], the
//!   thread survives, and [`ServiceStats`] — including the per-worker
//!   [`LatencyHistogram`]s — stays intact;
//! * boundary-spanning queries on a [`ShardedEngine`] reuse a small
//!   LRU-cached **boundary-stitch index** (the cut-crossing minimal core
//!   windows per `(shard range, k)`, see [`shard`]) instead of re-sweeping
//!   a merged sub-window skyline per query; its counters appear in
//!   [`CacheStats::boundary`].
//!
//! # Sharding
//!
//! A span-wide skyline per `k` is the memory and cold-build bottleneck on
//! big graphs, so the timeline can be partitioned into contiguous
//! time-interval shards ([`ShardPlan`]): a [`ShardedEngine`] caches one
//! [`EdgeCoreSkyline`] per `(shard, k)` lazily under the same memory budget,
//! and [`ShardedBackend`] plugs it into the request/serving surface.
//!
//! Answers stay **exact** at shard boundaries.  Every distinct temporal
//! k-core equals the k-core of its own tightest time interval (TTI), so the
//! cores of a query window `W` split into two disjoint classes: cores whose
//! TTI fits inside one shard's slice of `W` — exactly the cores of that
//! slice, served by restricting the shard's cached skyline
//! ([`EdgeCoreSkyline::restrict`] is exact for sub-ranges) — and cores
//! whose TTI crosses a shard cut, which per-shard skylines cannot represent
//! and which are therefore re-verified against the merged sub-window: a
//! transient skyline built for `W` itself, enumerated through a filter that
//! forwards only cut-crossing TTIs.  Together the two classes reproduce the
//! span-wide answer core for core; the `shard_equivalence` test harness
//! asserts this for random graphs, random plans and all four algorithms.
//! The transient index is dropped after the query, so resident memory stays
//! bounded by the per-shard cache budget.
//!
//! # Live ingestion
//!
//! The sharded stack is **appendable**: the last shard of the plan is a
//! live tail that [`ShardedEngine::absorb`] grows with batches of
//! time-ordered events (through a
//! [`temporal_graph::AppendableGraph`], which rejects out-of-order and
//! duplicate events with typed errors and publishes each batch as one
//! atomic `Arc`-swapped snapshot).  The maintenance is **incremental**:
//!
//! * an absorb dirties only the tail — tail-shard `(shard, k)` skylines
//!   and tail-touching boundary-stitch entries are purged (counted in
//!   [`CacheStats::tail_invalidations`] /
//!   [`CacheStats::boundary_invalidations`]), while **closed-shard
//!   skylines stay resident and valid** because appends land strictly past
//!   the seal watermark and therefore never move a closed shard's edges or
//!   `EdgeId`s;
//! * a [`SealPolicy`] (`EdgeCount`, `SpanWidth`, or `Manual` via
//!   [`ShardedEngine::seal_tail`]) rolls the live tail into a closed shard
//!   ([`CacheStats::seals`]); the next advancing batch opens a fresh tail;
//! * queries capture one immutable live view at entry, so a query racing
//!   an absorb observes either none of the batch or all of it — ingestion
//!   and queries serialize only at the snapshot swap;
//! * [`CoreService::submit_append`] queues batches on the service's
//!   **ingest lane** (same admission control as queries, absorbed on the
//!   worker owning the tail shard's cache partition, broken out in
//!   [`ServiceStats::ingest`]), and the `tkc ingest` CLI command drives
//!   file/stdin event streams through it.
//!
//! # Serving
//!
//! [`server::TkServer`] puts a std-only TCP front end on the service: a
//! line-delimited JSON protocol (one request per line, one reply line per
//! request; see [`wire`] for the field-level spec) decoded into the same
//! [`QueryRequest`] surface and submitted through
//! [`CoreService::submit_opts`].  Three serving policies compose on top of
//! the existing queue-depth and memory admission gates:
//!
//! * **priority lanes** — every request queues in a [`Lane`]
//!   (`interactive` or `batch`); workers always dequeue waiting
//!   interactive requests first, so under pressure batch traffic absorbs
//!   the queueing delay.  [`ServiceStats::per_lane`] breaks
//!   admitted/completed/shed/rejected out per lane, summing to the
//!   service-wide totals (ingest batches account under `batch`);
//! * **deadlines** — a request may carry a relative deadline
//!   ([`SubmitOptions::deadline`], `"deadline_ms"` on the wire).  It is
//!   checked twice and never interrupts execution: an already-expired
//!   (zero) deadline is refused at admission, and a request whose deadline
//!   passes while queued is **shed** at dequeue with
//!   [`TkError::DeadlineExceeded`] — the worker moves on instead of
//!   computing an answer nobody is waiting for.  Shed and refused requests
//!   are error *replies*, not closed connections, so clients can tell
//!   backpressure ([`TkError::BudgetExceeded`]) from timeout shedding;
//! * **graceful drain** — a `{"op": "shutdown"}` line stops the acceptor;
//!   [`server::TkServer::serve`] finishes every in-flight connection
//!   before returning, and dropping the [`CoreService`] afterwards waits
//!   out the request queue ([`CoreService::shutdown`] followed by the
//!   implicit drop is idempotent).
//!
//! # Example
//!
//! ```
//! use tkcore::{paper_example, Algorithm, KOutput, QueryRequest};
//!
//! let graph = paper_example::graph();
//! // The paper's query: all temporal 2-cores in any sub-window of [1, 4].
//! let response = QueryRequest::single(2, 1, 4)
//!     .materialize()
//!     .run(&graph, &Algorithm::Enum)
//!     .unwrap();
//! let KOutput::Cores(cores) = &response.outcomes[0].output else { unreachable!() };
//! assert_eq!(cores.len(), 2); // Figure 2 of the paper
//! ```
//!
//! A `k`-range sweep served from the cache, one skyline build per `k`:
//!
//! ```
//! use std::sync::Arc;
//! use tkcore::{paper_example, CachedBackend, QueryEngine, QueryRequest};
//!
//! let graph = paper_example::graph();
//! let engine = Arc::new(QueryEngine::new(graph.clone()));
//! let backend = CachedBackend::new(Arc::clone(&engine));
//! let response = QueryRequest::sweep(1..=3, 1, 7).run(&graph, &backend).unwrap();
//! assert_eq!(response.outcomes.len(), 3);           // per-k stats
//! assert_eq!(engine.cache_stats().misses, 3);       // ≤ 1 build per k
//! ```
//!
//! # Algorithmic components
//!
//! * [`VertexCoreTimeIndex`] / [`CoreTimeSweep`] — vertex core times
//!   (Definition 4) computed with an incremental start-time sweep;
//! * [`EdgeCoreSkyline`] — minimal core windows of every edge (Definition 5,
//!   Algorithm 2), obtained as a byproduct of the sweep;
//! * [`enumerate`] — the paper's final algorithm (Algorithms 4–5), which
//!   enumerates all temporal k-cores in time bounded by the result size;
//! * [`enumerate_base`] — the simpler Algorithm 3 baseline on the same
//!   framework;
//! * [`run_otcd`] — the OTCD state-of-the-art competitor (Algorithm 1);
//! * [`naive_results`] — a brute-force reference used for testing;
//! * [`QueryEngine`] — the cached batch-query engine underneath
//!   [`CachedBackend`] and [`CoreService`].
//!
//! The pre-redesign entry points `TimeRangeKCoreQuery::{enumerate, count}`
//! (deprecated since the PR 2 API redesign) have been removed; see
//! `CHANGES.md` for the migration table.
//!
//! # Data layout
//!
//! [`EdgeCoreSkyline`] stores every edge's minimal core windows in one
//! CSR-style pair of arrays: a flat `Vec<TimeWindow>` holding all windows
//! back to back in edge order, and a `Vec<u32>` offset array with one
//! cumulative entry per covered edge (plus a trailing sentinel), so edge
//! `i`'s skyline is the contiguous slice `flat[offsets[i]..offsets[i+1]]`.
//! Three consequences the hot paths rely on:
//!
//! * **contiguity** — `restrict`/`restrict_with` and the boundary-stitch
//!   compose walk edges in increasing id order and append straight onto the
//!   flat tail, so a whole restriction is two binary searches plus one
//!   `memcpy`-shaped slice copy per edge over memory the prefetcher
//!   already has; there are no per-edge `Vec`s to chase or allocate.
//! * **`u32` offsets** — window counts are bounded by `|ECS|`, which the
//!   paper's datasets keep far below `u32::MAX`, and halving the offset
//!   width keeps the entire offset array of a typical shard inside a few
//!   cache lines ([`EdgeCoreSkyline::build_from_sweep`] asserts the bound
//!   rather than silently truncating).
//! * **scratch recycling** — [`SkylineScratch`] pools `(offsets, flat)`
//!   buffer pairs: a restriction *takes* a pair, emits into it, and the
//!   caller *recycles* the result's storage back into the pool once the
//!   restricted skyline has been consumed.  The contract is per-engine:
//!   scratch pools live under the engine's own lock, are taken whole
//!   (never held across another lock) and merged back with
//!   [`SkylineScratch::absorb`], so a warm engine performs zero skyline
//!   allocations per query regardless of how many shards a window spans.
//!
//! # Workspace invariants
//!
//! The concurrency and error-handling guarantees above are invariants of
//! *convention*, so the workspace machine-checks them on every PR with
//! `tkc-lint` (`cargo run -p tkc-lint -- --deny`; see `crates/lint/README.md`
//! for rule rationale and the suppression-pragma syntax):
//!
//! * **no-raw-threads** — all fan-out goes through [`exec::ExecPool`];
//!   `thread::{spawn, scope, Builder}` appears only in `exec.rs`.  This is
//!   what makes panic isolation, nested-batch deadlock freedom and the
//!   service's lane accounting hold everywhere by construction.
//! * **poison-safe-locks** — library code never calls `.lock().unwrap()`;
//!   it recovers poisoned mutexes with [`sync::lock`] /​ [`sync::wait`], so
//!   one contained panic (always possible: sinks are user code) cannot wedge
//!   every later caller of a shared cache or stats lock.
//! * **no-panic-api** — non-test `tkcore` / `temporal-graph` code returns
//!   [`TkError`] on public paths; every intentional `unwrap` / `expect` /
//!   `unreachable!` carries an inline pragma stating why it cannot fire.
//! * **lock-order** — the nested-lock acquisition graph over named lock
//!   sites stays acyclic, ruling out ABBA deadlocks between the engine,
//!   shard and service mutexes.
//! * **no-println** — library crates return data; stdout/stderr belong to
//!   the CLI and bench binaries.
//! * **forbid-unsafe** — every non-compat crate root carries
//!   `#![forbid(unsafe_code)]`, uniformly and enforced.
//!
//! ## Interprocedural invariants
//!
//! Three rules run over a workspace-wide symbol table and call graph
//! (suffix-resolved; `cargo run -p tkc-lint -- --graph` prints the
//! resolution statistics):
//!
//! * **lock-order-global** — held-lock propagation across calls: a fn
//!   holding lock A that calls a fn which (transitively) acquires lock B
//!   contributes the edge A→B, and the combined workspace graph stays
//!   acyclic.  This is what rules out the composed deadlocks no single
//!   function exhibits — e.g. a service path holding a cache lock while
//!   calling into shard code that takes the stats lock, composed with the
//!   reverse order elsewhere.
//! * **no-blocking-in-worker** — no fn reachable from a closure handed to
//!   [`exec::ExecPool::spawn`] / `spawn_on` / `run_batch` blocks
//!   (`Ticket::wait`, `Condvar::wait`, `JoinHandle::join`,
//!   [`sync::wait`]): a worker waiting on work only another worker can
//!   finish deadlocks the pool.  The two sanctioned waits in `exec.rs`
//!   (the idle scheduler loop; the claim-alongside-helpers batch join)
//!   carry pragmas explaining why they cannot.
//! * **hot-path-alloc** — fns marked `// tkc-lint: hot` (the CoreTime
//!   sweep's [`CoreTimeSweep::advance`], [`EdgeCoreSkyline::restrict`] /
//!   `restrict_with`, and the boundary-stitch merge) and everything
//!   uniquely reachable from them within `tkcore` allocate nothing per
//!   call; restriction and stitching draw their flat CSR buffers from a
//!   pooled [`SkylineScratch`] instead (see *Data layout* above).  Skyline
//!   *construction*
//!   (`EdgeCoreSkyline::build` / `build_from_sweep`) is deliberately not
//!   seeded: it runs once per `(k, shard)` and is amortised by the
//!   skyline caches, so its allocations are build-time, not per-query.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod ecs;
pub mod engine;
mod enum_base;
mod enumerate;
mod error;
pub mod exec;
mod historical;
pub mod ingest;
pub mod naive;
mod otcd;
pub mod paper_example;
mod query;
mod request;
mod result;
pub mod server;
pub mod service;
pub mod shard;
mod sink;
mod stats;
pub mod sync;
mod vct;
pub mod wire;

pub use backend::{CachedBackend, CoreBackend};
pub use ecs::{EdgeCoreSkyline, SkylineScratch};
pub use engine::{
    BatchStats, BoundaryCacheStats, CacheStats, EngineConfig, QueryEngine, ShardCacheStats,
    WarmStats,
};
pub use enum_base::{enumerate_base, enumerate_base_from_graph, EnumBaseStats};
pub use enumerate::{enumerate, enumerate_from_graph, EnumStats};
pub use error::TkError;
pub use exec::ExecPool;
pub use historical::{historical_core_from_skyline, HistoricalKCoreIndex};
pub use ingest::{AbsorbStats, IngestEvent, SealPolicy};
pub use naive::{core_edges_of_window, enumerate_naive, naive_results};
pub use otcd::{run_otcd, OtcdStats};
pub use query::{Algorithm, QueryStats, TimeRangeKCoreQuery};
pub use request::{
    KOutcome, KOutput, KSelection, OutputMode, QueryRequest, QueryResponse, ValidatedRequest,
};
pub use result::TemporalKCore;
pub use server::{ServeSummary, ServerConfig, TkServer};
pub use service::{
    Affinity, CoreService, IngestLaneStats, IngestReply, IngestTicket, Lane, LaneStats,
    LatencyHistogram, RequestId, ServiceConfig, ServiceReply, ServiceStats, SubmitOptions, Ticket,
    WorkerStats,
};
pub use shard::{ShardPlan, ShardedBackend, ShardedEngine};
pub use sink::{CollectingSink, CountingSink, FnSink, ResultSink};
pub use stats::{FrameworkStats, IngestDelta, ShardProfile};
pub use vct::{CoreTimeSweep, VertexCoreTimeIndex};
