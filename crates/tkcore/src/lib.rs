//! Time-range temporal k-core enumeration.
//!
//! This crate implements the framework of *Accelerating K-Core Computation
//! in Temporal Graphs* (EDBT 2026): given a temporal graph, an integer `k`
//! and a query time range `[Ts, Te]`, enumerate every distinct temporal
//! k-core appearing in the snapshot of any sub-window `[ts, te] ⊆ [Ts, Te]`.
//!
//! # Components
//!
//! * [`VertexCoreTimeIndex`] / [`CoreTimeSweep`] — vertex core times
//!   (Definition 4) computed with an incremental start-time sweep;
//! * [`EdgeCoreSkyline`] — minimal core windows of every edge (Definition 5,
//!   Algorithm 2), obtained as a byproduct of the sweep;
//! * [`enumerate`] — the paper's final algorithm (Algorithms 4–5), which
//!   enumerates all temporal k-cores in time bounded by the result size;
//! * [`enumerate_base`] — the simpler Algorithm 3 baseline on the same
//!   framework;
//! * [`run_otcd`] — the OTCD state-of-the-art competitor (Algorithm 1);
//! * [`naive_results`] — a brute-force reference used for testing;
//! * [`TimeRangeKCoreQuery`] — the high-level entry point tying it together;
//! * [`QueryEngine`] — a cached batch-query engine that reuses one span-wide
//!   skyline per `k` across every sub-range query, with parallel batching.
//!
//! # Example
//!
//! ```
//! use tkcore::{TimeRangeKCoreQuery, paper_example};
//! use temporal_graph::TimeWindow;
//!
//! let graph = paper_example::graph();
//! let query = TimeRangeKCoreQuery::new(2, TimeWindow::new(1, 4));
//! let cores = query.enumerate(&graph);
//! assert_eq!(cores.len(), 2); // Figure 2 of the paper
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ecs;
pub mod engine;
mod enum_base;
mod enumerate;
mod historical;
pub mod naive;
mod otcd;
pub mod paper_example;
mod query;
mod result;
mod sink;
mod stats;
mod vct;

pub use ecs::EdgeCoreSkyline;
pub use engine::{BatchStats, CacheStats, EngineConfig, QueryEngine};
pub use enum_base::{enumerate_base, enumerate_base_from_graph, EnumBaseStats};
pub use enumerate::{enumerate, enumerate_from_graph, EnumStats};
pub use historical::{historical_core_from_skyline, HistoricalKCoreIndex};
pub use naive::{core_edges_of_window, enumerate_naive, naive_results};
pub use otcd::{run_otcd, OtcdStats};
pub use query::{Algorithm, QueryStats, TimeRangeKCoreQuery};
pub use result::TemporalKCore;
pub use sink::{CollectingSink, CountingSink, FnSink, ResultSink};
pub use stats::FrameworkStats;
pub use vct::{CoreTimeSweep, VertexCoreTimeIndex};
