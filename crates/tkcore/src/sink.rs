use crate::result::TemporalKCore;
use temporal_graph::{EdgeId, TimeWindow};

/// Receiver for enumerated temporal k-cores.
///
/// The enumeration algorithms stream their results through a sink so that
/// callers can choose between materialising every core ([`CollectingSink`]),
/// merely counting them ([`CountingSink`] — what the paper's experiments do,
/// since `|R|` routinely exceeds memory), or any custom processing.
pub trait ResultSink {
    /// Called once per distinct temporal k-core, with its tightest time
    /// interval and the ids of its temporal edges (unsorted, possibly with
    /// an algorithm-specific order).
    fn emit(&mut self, tti: TimeWindow, edges: &[EdgeId]);
}

/// Collects every result as an owned [`TemporalKCore`].
#[derive(Debug, Default)]
pub struct CollectingSink {
    /// The collected cores, in emission order.
    pub cores: Vec<TemporalKCore>,
}

impl ResultSink for CollectingSink {
    fn emit(&mut self, tti: TimeWindow, edges: &[EdgeId]) {
        self.cores.push(TemporalKCore::new(tti, edges.to_vec()));
    }
}

impl CollectingSink {
    /// Consumes the sink and returns the cores sorted by (TTI, edge set),
    /// which gives a canonical order independent of the producing algorithm.
    pub fn into_sorted(mut self) -> Vec<TemporalKCore> {
        self.cores
            .sort_by(|a, b| a.tti.cmp(&b.tti).then_with(|| a.edges.cmp(&b.edges)));
        self.cores
    }
}

/// Counts results without storing them.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CountingSink {
    /// Number of distinct temporal k-cores.
    pub num_cores: u64,
    /// Total number of edges over all cores — the paper's result size `|R|`.
    pub total_edges: u64,
    /// Number of edges in the largest core seen.
    pub max_core_edges: u64,
}

impl ResultSink for CountingSink {
    fn emit(&mut self, _tti: TimeWindow, edges: &[EdgeId]) {
        self.num_cores += 1;
        self.total_edges += edges.len() as u64;
        self.max_core_edges = self.max_core_edges.max(edges.len() as u64);
    }
}

/// Adapter that forwards to a closure; convenient in tests and examples.
pub struct FnSink<F: FnMut(TimeWindow, &[EdgeId])>(pub F);

impl<F: FnMut(TimeWindow, &[EdgeId])> ResultSink for FnSink<F> {
    fn emit(&mut self, tti: TimeWindow, edges: &[EdgeId]) {
        (self.0)(tti, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_sink_accumulates() {
        let mut sink = CountingSink::default();
        sink.emit(TimeWindow::new(1, 2), &[0, 1, 2]);
        sink.emit(TimeWindow::new(2, 5), &[3, 4]);
        assert_eq!(sink.num_cores, 2);
        assert_eq!(sink.total_edges, 5);
        assert_eq!(sink.max_core_edges, 3);
    }

    #[test]
    fn collecting_sink_sorts_canonically() {
        let mut sink = CollectingSink::default();
        sink.emit(TimeWindow::new(3, 4), &[7, 5]);
        sink.emit(TimeWindow::new(1, 2), &[9]);
        let sorted = sink.into_sorted();
        assert_eq!(sorted[0].tti, TimeWindow::new(1, 2));
        assert_eq!(sorted[1].edges, vec![5, 7]);
    }

    #[test]
    fn fn_sink_forwards() {
        let mut seen = Vec::new();
        {
            let mut sink = FnSink(|tti: TimeWindow, edges: &[EdgeId]| {
                seen.push((tti, edges.len()));
            });
            sink.emit(TimeWindow::new(1, 1), &[0]);
        }
        assert_eq!(seen, vec![(TimeWindow::new(1, 1), 1)]);
    }
}
