//! The OTCD baseline (Algorithm 1): Optimized Temporal Core Decomposition
//! of Yang et al. (VLDB 2023), the state of the art the paper compares
//! against.
//!
//! OTCD anchors a start time `ts` and shrinks the end time from `Te` down to
//! `ts`, maintaining the temporal k-core decrementally: truncating the
//! previous window's core and re-peeling.  Our implementation applies the
//! dominant pruning rule of the original (*Pruning-on-the-Right*): after
//! computing the core of `[ts, te]` with tightest time interval
//! `[ts', te']`, every window `[ts, x]` with `te' <= x < te` has the same
//! core, so the scan jumps directly to `te' - 1`.  A core is output exactly
//! when the current window equals its TTI, which yields each distinct
//! temporal k-core exactly once without a dedup table (see the module tests
//! for the cross-check against the reference enumerator).  The remaining
//! PoU/PoL rules of the original prune additional duplicate windows but do
//! not change the `O(tmax² · B)` worst case; their omission is recorded in
//! DESIGN.md.

use crate::sink::ResultSink;
use std::collections::{HashMap, VecDeque};
use temporal_graph::{EdgeId, TemporalGraph, TimeWindow, Timestamp, VertexId};

/// Statistics of one OTCD run.
#[derive(Debug, Clone, Copy, Default)]
pub struct OtcdStats {
    /// Number of distinct temporal k-cores emitted.
    pub num_cores: u64,
    /// Total number of edges over all emitted cores (`|R|`).
    pub total_edges: u64,
    /// Number of (start, end) windows whose core was materialised.
    pub windows_scanned: u64,
    /// Estimated peak heap footprint in bytes (two working subgraphs).
    pub peak_memory_bytes: usize,
}

/// A decrementally-maintained temporal k-core: the projected window shrinks
/// (from either side) and vertices below degree `k` are peeled away.
#[derive(Clone)]
struct CoreSubgraph<'g> {
    graph: &'g TemporalGraph,
    k: usize,
    first_edge: EdgeId,
    /// Aliveness per local edge index (edge id - first_edge).
    alive_edge: Vec<bool>,
    /// Multiplicity of alive edges per vertex pair (u < v).
    pair_mult: HashMap<(VertexId, VertexId), u32>,
    /// Distinct alive neighbours per vertex.
    distinct_deg: Vec<u32>,
    /// Vertex currently in the core candidate set.
    in_core: Vec<bool>,
    /// Incident local edges per vertex (built once, shared via Arc-like clone).
    inc_offsets: Vec<u32>,
    incident: Vec<u32>,
    num_alive_edges: usize,
    /// Number of alive edges per timestamp offset (t - range.start()).
    alive_per_time: Vec<u32>,
    range: TimeWindow,
    /// Current (not yet truncated) window bounds; edges outside have already
    /// been removed, so truncations never revisit them.
    cur_start: Timestamp,
    cur_end: Timestamp,
    min_ptr: usize,
    max_ptr: usize,
}

impl<'g> CoreSubgraph<'g> {
    /// Builds the k-core of the full query range.
    fn new(graph: &'g TemporalGraph, k: usize, range: TimeWindow) -> Self {
        let edge_range = graph.edge_ids_in(range);
        let first_edge = edge_range.start;
        let num_local = (edge_range.end - edge_range.start) as usize;
        let n = graph.num_vertices();
        let width = range.len() as usize;

        let mut inc_offsets = vec![0u32; n + 1];
        for id in edge_range.clone() {
            let e = graph.edge(id);
            inc_offsets[e.u as usize + 1] += 1;
            inc_offsets[e.v as usize + 1] += 1;
        }
        for i in 1..inc_offsets.len() {
            inc_offsets[i] += inc_offsets[i - 1];
        }
        let mut incident = vec![0u32; inc_offsets[n] as usize];
        let mut cursor = inc_offsets.clone();
        for id in edge_range.clone() {
            let e = graph.edge(id);
            let local = id - first_edge;
            for v in [e.u, e.v] {
                incident[cursor[v as usize] as usize] = local;
                cursor[v as usize] += 1;
            }
        }

        let mut pair_mult: HashMap<(VertexId, VertexId), u32> = HashMap::new();
        let mut distinct_deg = vec![0u32; n];
        let mut alive_per_time = vec![0u32; width];
        for id in edge_range.clone() {
            let e = graph.edge(id);
            let entry = pair_mult.entry((e.u, e.v)).or_insert(0);
            if *entry == 0 {
                distinct_deg[e.u as usize] += 1;
                distinct_deg[e.v as usize] += 1;
            }
            *entry += 1;
            alive_per_time[(e.t - range.start()) as usize] += 1;
        }

        let mut sub = Self {
            graph,
            k,
            first_edge,
            alive_edge: vec![true; num_local],
            pair_mult,
            distinct_deg,
            in_core: vec![true; n],
            inc_offsets,
            incident,
            num_alive_edges: num_local,
            alive_per_time,
            range,
            cur_start: range.start(),
            cur_end: range.end(),
            min_ptr: 0,
            max_ptr: width.saturating_sub(1),
        };
        // Vertices with no incident edge in the range are not part of the
        // candidate set at all.
        for u in 0..n {
            if sub.distinct_deg[u] == 0 {
                sub.in_core[u] = false;
            }
        }
        let seeds: Vec<VertexId> = (0..n as VertexId)
            .filter(|&u| sub.in_core[u as usize] && sub.distinct_deg[u as usize] < k as u32)
            .collect();
        sub.peel(seeds);
        sub
    }

    fn is_empty(&self) -> bool {
        self.num_alive_edges == 0
    }

    /// Removes an alive edge and updates degrees; returns the endpoints that
    /// dropped below `k` as a consequence.
    fn remove_edge(&mut self, local: u32, below_k: &mut Vec<VertexId>) {
        if !self.alive_edge[local as usize] {
            return;
        }
        self.alive_edge[local as usize] = false;
        self.num_alive_edges -= 1;
        let e = self.graph.edge(self.first_edge + local);
        self.alive_per_time[(e.t - self.range.start()) as usize] -= 1;
        let mult = self
            .pair_mult
            .get_mut(&(e.u, e.v))
            // tkc-lint: allow(no-panic-api) — the pair entry was inserted when this edge became alive and `mult > 0` keeps it
            .expect("alive edge has a pair entry");
        *mult -= 1;
        if *mult == 0 {
            for v in [e.u, e.v] {
                self.distinct_deg[v as usize] -= 1;
                if self.in_core[v as usize] && self.distinct_deg[v as usize] < self.k as u32 {
                    below_k.push(v);
                }
            }
        }
    }

    /// Cascading peel starting from the given vertices.
    fn peel(&mut self, seeds: Vec<VertexId>) {
        let mut queue: VecDeque<VertexId> = seeds.into();
        let mut below_k: Vec<VertexId> = Vec::new();
        while let Some(u) = queue.pop_front() {
            if !self.in_core[u as usize] || self.distinct_deg[u as usize] >= self.k as u32 {
                continue;
            }
            self.in_core[u as usize] = false;
            let lo = self.inc_offsets[u as usize] as usize;
            let hi = self.inc_offsets[u as usize + 1] as usize;
            below_k.clear();
            let locals: Vec<u32> = self.incident[lo..hi]
                .iter()
                .copied()
                .filter(|&l| self.alive_edge[l as usize])
                .collect();
            for local in locals {
                self.remove_edge(local, &mut below_k);
            }
            for &v in &below_k {
                queue.push_back(v);
            }
        }
    }

    /// Shrinks the window end: removes edges with timestamp `> new_end` and
    /// re-peels.
    fn truncate_end(&mut self, new_end: Timestamp) {
        if new_end >= self.cur_end {
            return;
        }
        let remove_from = self.graph.edge_ids_in(TimeWindow::new(
            (new_end + 1).max(self.cur_start),
            self.cur_end,
        ));
        self.cur_end = new_end;
        let mut below_k: Vec<VertexId> = Vec::new();
        for id in remove_from {
            if id < self.first_edge {
                continue;
            }
            self.remove_edge(id - self.first_edge, &mut below_k);
        }
        let seeds = std::mem::take(&mut below_k);
        self.peel(seeds);
    }

    /// Shrinks the window start: removes edges with timestamp `< new_start`
    /// and re-peels.
    fn truncate_start(&mut self, new_start: Timestamp) {
        if new_start <= self.cur_start {
            return;
        }
        let remove_range = self.graph.edge_ids_in(TimeWindow::new(
            self.cur_start,
            (new_start - 1).min(self.cur_end),
        ));
        self.cur_start = new_start;
        let mut below_k: Vec<VertexId> = Vec::new();
        for id in remove_range {
            if id < self.first_edge {
                continue;
            }
            self.remove_edge(id - self.first_edge, &mut below_k);
        }
        let seeds = std::mem::take(&mut below_k);
        self.peel(seeds);
    }

    /// Tightest time interval of the currently alive edges.
    /// Must not be called on an empty subgraph.
    fn tti(&mut self) -> TimeWindow {
        debug_assert!(!self.is_empty());
        while self.alive_per_time[self.min_ptr] == 0 {
            self.min_ptr += 1;
        }
        while self.alive_per_time[self.max_ptr] == 0 {
            self.max_ptr -= 1;
        }
        TimeWindow::new(
            self.range.start() + self.min_ptr as Timestamp,
            self.range.start() + self.max_ptr as Timestamp,
        )
    }

    /// Ids of the currently alive edges.
    fn alive_edges(&self) -> Vec<EdgeId> {
        self.alive_edge
            .iter()
            .enumerate()
            .filter_map(|(local, &alive)| alive.then_some(self.first_edge + local as EdgeId))
            .collect()
    }

    /// Approximate heap footprint in bytes.
    fn memory_bytes(&self) -> usize {
        self.alive_edge.len()
            + self.pair_mult.len() * (std::mem::size_of::<(VertexId, VertexId)>() + 4 + 16)
            + self.distinct_deg.len() * 4
            + self.in_core.len()
            + self.inc_offsets.len() * 4
            + self.incident.len() * 4
            + self.alive_per_time.len() * 4
    }
}

/// Runs the OTCD baseline, streaming every distinct temporal k-core of the
/// query range into `sink`.
pub fn run_otcd(
    graph: &TemporalGraph,
    k: usize,
    range: TimeWindow,
    sink: &mut dyn ResultSink,
) -> OtcdStats {
    assert!(k >= 1, "temporal k-core queries require k >= 1");
    let mut stats = OtcdStats::default();
    if graph.num_edges_in(range) == 0 {
        return stats;
    }
    // Clamp to the graph's time span so per-timestamp bookkeeping stays
    // proportional to the data (results are unaffected: windows beyond the
    // last timestamp contain no extra edges).
    let range = TimeWindow::new(
        range.start(),
        range.end().min(graph.tmax()).max(range.start()),
    );
    let mut row = CoreSubgraph::new(graph, k, range);
    stats.peak_memory_bytes = 2 * row.memory_bytes();

    for ts in range.start()..=range.end() {
        if row.is_empty() {
            break;
        }
        let mut scan = row.clone();
        loop {
            if scan.is_empty() {
                break;
            }
            stats.windows_scanned += 1;
            let tti = scan.tti();
            if tti.start() == ts {
                let edges = scan.alive_edges();
                sink.emit(tti, &edges);
                stats.num_cores += 1;
                stats.total_edges += edges.len() as u64;
            }
            if tti.end() <= ts {
                break;
            }
            scan.truncate_end(tti.end() - 1);
        }
        // Advance to the next start time: drop the edges at `ts` from the
        // row core and re-peel (the truncation argument in the module docs).
        row.truncate_start(ts + 1);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_results;
    use crate::sink::CollectingSink;
    use temporal_graph::{generator, TemporalGraphBuilder};

    fn graph() -> TemporalGraph {
        TemporalGraphBuilder::new()
            .with_edges([
                (0u64, 1u64, 1i64),
                (1, 2, 2),
                (0, 2, 3),
                (2, 3, 4),
                (3, 4, 5),
                (2, 4, 6),
                (0, 1, 6),
                (1, 2, 7),
                (0, 2, 7),
            ])
            .build()
            .unwrap()
    }

    #[test]
    fn matches_naive_enumeration() {
        let g = graph();
        for k in 1..=3 {
            for range in [g.span(), TimeWindow::new(2, 6), TimeWindow::new(4, 7)] {
                let mut sink = CollectingSink::default();
                run_otcd(&g, k, range, &mut sink);
                let got = sink.into_sorted();
                let expected = naive_results(&g, k, range);
                assert_eq!(got, expected, "k={k} range={range}");
            }
        }
    }

    #[test]
    fn randomized_graphs_match_naive() {
        for seed in 0..6 {
            let g = generator::uniform_random(14, 60, 12, seed + 100);
            for k in 2..=3 {
                let mut sink = CollectingSink::default();
                run_otcd(&g, k, g.span(), &mut sink);
                let got = sink.into_sorted();
                let expected = naive_results(&g, k, g.span());
                assert_eq!(got, expected, "seed={seed} k={k}");
            }
        }
    }

    #[test]
    fn outputs_have_tight_ttis() {
        let g = graph();
        let mut sink = CollectingSink::default();
        let stats = run_otcd(&g, 2, g.span(), &mut sink);
        assert_eq!(stats.num_cores as usize, sink.cores.len());
        for core in &sink.cores {
            assert!(core.tti_is_tight(&g));
            assert!(core.is_valid_k_core(&g, 2));
        }
        assert!(stats.windows_scanned >= stats.num_cores);
        assert!(stats.peak_memory_bytes > 0);
    }

    #[test]
    fn empty_range_and_large_k() {
        let g = graph();
        let mut sink = CollectingSink::default();
        // Range beyond the graph's timestamps.
        let stats = run_otcd(&g, 2, TimeWindow::new(20, 30), &mut sink);
        assert_eq!(stats.num_cores, 0);
        // k larger than any core.
        let stats = run_otcd(&g, 10, g.span(), &mut sink);
        assert_eq!(stats.num_cores, 0);
    }
}
