//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing framework.
//!
//! The workspace builds in a sandbox without network access, so this crate
//! reimplements the subset of the proptest API used by the test suites:
//! the [`strategy::Strategy`] trait with range / tuple / `collection::vec` strategies
//! and the `prop_filter_map` / `prop_map` adapters, the `proptest!` macro
//! (including the `#![proptest_config(...)]` header), and the
//! `prop_assert*` macros.
//!
//! Differences from the real crate, deliberately accepted for an offline
//! test harness:
//!
//! * **no shrinking** — a failing case reports the case number and message
//!   but is not minimised;
//! * **deterministic seeding** — each test function derives its RNG seed
//!   from its own name (FNV-1a), so failures are reproducible run-over-run
//!   and across machines; set `PROPTEST_SEED_OFFSET` to explore different
//!   case streams.
//!
//! Swapping the path dependency for the real crates.io `proptest` restores
//! shrinking, and the test sources compile unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Test-case execution: configuration, RNG and failure type.
pub mod test_runner {
    use std::fmt;

    /// Subset of proptest's `Config`: just the number of cases to run.
    #[derive(Debug, Clone, Copy)]
    pub struct Config {
        /// Number of random cases each property is checked against.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// A failed property assertion (carries the formatted message).
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            Self {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}", self.message)
        }
    }

    /// SplitMix64 RNG driving value generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Derives a deterministic RNG from a test function's name, mixed
        /// with the optional `PROPTEST_SEED_OFFSET` environment variable.
        pub fn from_name(name: &str) -> Self {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x1000_0000_01b3);
            }
            let offset = std::env::var("PROPTEST_SEED_OFFSET")
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(0);
            Self {
                state: hash ^ offset,
            }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[lo, hi)` (used by size ranges and strategies).
        pub fn below(&mut self, lo: u128, hi: u128) -> u128 {
            assert!(lo < hi, "empty generation range");
            lo + u128::from(self.next_u64()) % (hi - lo)
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// Maximum retries for [`Strategy::prop_filter_map`] before giving up.
    const MAX_FILTER_ATTEMPTS: usize = 4_096;

    /// A recipe for generating random values of an associated type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Keeps only values for which `f` returns `Some`, mapping them.
        /// `whence` labels the filter in give-up panics.
        fn prop_filter_map<T, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> Option<T>,
        {
            FilterMap {
                inner: self,
                f,
                whence,
            }
        }

        /// Maps generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }
    }

    /// See [`Strategy::prop_filter_map`].
    pub struct FilterMap<S, F> {
        inner: S,
        f: F,
        whence: &'static str,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> Option<T>> Strategy for FilterMap<S, F> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            for _ in 0..MAX_FILTER_ATTEMPTS {
                if let Some(v) = (self.f)(self.inner.generate(rng)) {
                    return v;
                }
            }
            panic!(
                "prop_filter_map `{}` rejected {MAX_FILTER_ATTEMPTS} candidates in a row",
                self.whence
            );
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = self.start as i128;
                    let hi = self.end as i128;
                    assert!(lo < hi, "empty range strategy");
                    (lo + rng.below(0, (hi - lo) as u128) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = *self.start() as i128;
                    let hi = *self.end() as i128;
                    assert!(lo <= hi, "empty range strategy");
                    (lo + rng.below(0, (hi - lo + 1) as u128) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);

    /// The `Just` strategy: always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Number-of-elements specification for [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors with lengths drawn from `size`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.below(self.size.lo as u128, self.size.hi_exclusive as u128) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirror of the `prop` module alias exported by proptest's prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property test functions: each `arg in strategy` binding is
/// generated per case and the body is run `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::test_runner::Config::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for case in 0..config.cases {
                    $(
                        let __strategy = $strat;
                        let $arg = $crate::strategy::Strategy::generate(&__strategy, &mut rng);
                    )+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property `{}` failed at case {}/{}: {}",
                            stringify!($name), case + 1, config.cases, e
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        $crate::prop_assert_eq!($left, $right, "")
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n{}",
                left,
                right,
                format!($($fmt)*),
            )));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        $crate::prop_assert_ne!($left, $right, "")
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = &$left;
        let right = &$right;
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left != right`\n  both: {:?}\n{}",
                left,
                format!($($fmt)*),
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples_stay_in_bounds(
            (a, b, c) in (0u64..10, 5u64..6, 1i64..=3),
            k in 2usize..4,
        ) {
            prop_assert!(a < 10);
            prop_assert_eq!(b, 5);
            prop_assert!((1..=3).contains(&c));
            prop_assert!(k == 2 || k == 3);
        }

        #[test]
        fn vec_strategy_respects_size(v in prop::collection::vec(0u32..100, 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn filter_map_applies(x in (0u32..100).prop_filter_map("even only", |x| {
            if x % 2 == 0 { Some(x / 2) } else { None }
        })) {
            prop_assert!(x < 50);
        }

        #[test]
        fn map_and_just_work(x in (1u32..5).prop_map(|x| x * 10), y in Just(7u8)) {
            prop_assert!((10..50).contains(&x));
            prop_assert_ne!(x, 0);
            prop_assert_eq!(y, 7);
        }
    }

    #[test]
    #[should_panic(expected = "property `failing_property` failed")]
    fn failures_report_case_numbers() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn failing_property(x in 0u32..10) {
                prop_assert!(x > 100, "x = {} is never above 100", x);
            }
        }
        failing_property();
    }
}
