//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! This workspace must build in a sandbox without network access, so the
//! small subset of the `rand 0.9` API used by the generators and workloads
//! is reimplemented here on top of a SplitMix64 generator: deterministic,
//! seedable, statistically solid for synthetic-data generation, and entirely
//! dependency-free.  It is **not** cryptographically secure and performs
//! modulo-style range reduction (a bias below 2^-32 for the ranges used
//! here), which is irrelevant for benchmark data but would matter for
//! statistics-grade sampling.  Replacing the path dependency with the real
//! crates.io `rand` restores the full implementation without code changes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64 (Steele, Lea &
    /// Flood, 2014).  Passes BigCrush when used as a 64-bit stream and has
    /// a full 2^64 period, which is ample for synthetic graph generation.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Pre-mix the seed once so that consecutive small seeds (0, 1,
            // 2, ...) produce visibly unrelated streams.
            let mut rng = StdRng { state: seed };
            let _ = rng.next_u64();
            rng
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// A range of values that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = u128::from(rng.next_u64()) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let offset = u128::from(rng.next_u64()) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `next_u64` mapped to the unit interval `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + unit_f64(rng) * (end - start)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        unit_f64(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.random_range(0..u64::MAX)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random_range(0..u64::MAX)).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.random_range(0..u64::MAX)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1_000 {
            let x = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: i64 = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.random_range(-3.0..=3.0);
            assert!((-3.0..=3.0).contains(&f));
        }
        assert_eq!(rng.random_range(9usize..10), 9);
        assert_eq!(rng.random_range(4i64..=4), 4);
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut rng = StdRng::seed_from_u64(1);
        let heads = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_000..4_000).contains(&heads), "heads = {heads}");
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in sorted order");
    }
}
