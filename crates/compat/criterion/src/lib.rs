//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The workspace builds in a sandbox without network access, so this crate
//! reimplements the small slice of the Criterion API the benches use:
//! benchmark groups, [`BenchmarkId`], `bench_function` / `bench_with_input`,
//! [`Bencher::iter`] and the `criterion_group!` / `criterion_main!` macros.
//! Instead of Criterion's statistical machinery it times `sample_size`
//! batches around one warm-up call and prints min / mean / max per
//! iteration — enough to compare algorithms and catch regressions by eye.
//! Swapping the path dependency for the real crates.io `criterion` restores
//! full statistics, and the bench sources compile unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group: a function name plus an
/// optional parameter rendering (`fn_name/param`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Times closures for one benchmark.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Calls `routine` once for warm-up, then `sample_size` timed times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        std::hint::black_box(routine());
        self.samples.clear();
        for _ in 0..self.sample_size.max(1) {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            println!("{group}/{id}: no samples (Bencher::iter never called)");
            return;
        }
        let min = self.samples.iter().min().unwrap();
        let max = self.samples.iter().max().unwrap();
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        println!(
            "{group}/{id}: time [{:.4?} {:.4?} {:.4?}] ({} samples)",
            min,
            mean,
            max,
            self.samples.len()
        );
    }
}

/// A named collection of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark without an explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(&self.name, &id.id);
        self
    }

    /// Runs a benchmark over a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        bencher.report(&self.name, &id.id);
        self
    }

    /// Ends the group (printing happens eagerly, so this is a no-op kept for
    /// API compatibility).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a benchmark group with the default sample size (10).
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("counting", |b| {
            b.iter(|| calls += 1);
        });
        // one warm-up plus three timed samples
        assert_eq!(calls, 4);
        group.bench_with_input(BenchmarkId::new("with_input", 7), &21u64, |b, &x| {
            b.iter(|| x * 2);
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("algo", "CM");
        assert_eq!(id.id, "algo/CM");
        let from_str: BenchmarkId = "plain".into();
        assert_eq!(from_str.id, "plain");
    }
}
