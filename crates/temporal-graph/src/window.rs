use crate::Timestamp;
use std::fmt;

/// An inclusive time window `[start, end]`.
///
/// Windows are the unit of projection for temporal k-core queries: the
/// *projected graph* of a window contains exactly the edge occurrences whose
/// timestamp falls inside the window.
///
/// # Invariant
///
/// `1 <= start <= end` holds for every constructed value — both
/// [`TimeWindow::new`] and [`TimeWindow::try_new`] enforce it, and no method
/// mutates the bounds.  A window therefore always covers at least one
/// timestamp ([`TimeWindow::len`]` >= 1`), and "no window" is represented by
/// `Option<TimeWindow>` (as [`TimeWindow::intersect`] does), never by an
/// empty window value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimeWindow {
    start: Timestamp,
    end: Timestamp,
}

impl TimeWindow {
    /// Creates the window `[start, end]`.
    ///
    /// # Panics
    /// Panics if `start > end` or `start == 0` (timestamps are 1-based).
    pub fn new(start: Timestamp, end: Timestamp) -> Self {
        assert!(start >= 1, "timestamps are 1-based, got start = {start}");
        assert!(start <= end, "invalid window [{start}, {end}]");
        Self { start, end }
    }

    /// Creates the window `[start, end]`, returning `None` when it would be empty.
    pub fn try_new(start: Timestamp, end: Timestamp) -> Option<Self> {
        if start >= 1 && start <= end {
            Some(Self { start, end })
        } else {
            None
        }
    }

    /// Start of the window (inclusive).
    #[inline]
    pub fn start(&self) -> Timestamp {
        self.start
    }

    /// End of the window (inclusive).
    #[inline]
    pub fn end(&self) -> Timestamp {
        self.end
    }

    /// Number of timestamps covered by the window (`tmax` of the query range).
    #[inline]
    pub fn len(&self) -> u64 {
        u64::from(self.end) - u64::from(self.start) + 1
    }

    /// Always `false`: by the type invariant a window covers at least one
    /// timestamp, so [`TimeWindow::len`] is nonzero by construction.  The
    /// method exists because clippy's `len_without_is_empty` expects every
    /// type with `len()` to pair it with `is_empty()`; absence of a window
    /// is modelled as `Option<TimeWindow>` instead (see the type docs).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Does the window contain timestamp `t`?
    #[inline]
    pub fn contains(&self, t: Timestamp) -> bool {
        self.start <= t && t <= self.end
    }

    /// Is `other` fully contained in `self` (`other ⊆ self`)?
    #[inline]
    pub fn contains_window(&self, other: &TimeWindow) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// Is `other` a *proper* sub-window of `self` (`other ⊂ self`)?
    #[inline]
    pub fn properly_contains(&self, other: &TimeWindow) -> bool {
        self.contains_window(other) && self != other
    }

    /// Intersection of two windows, if non-empty.
    pub fn intersect(&self, other: &TimeWindow) -> Option<TimeWindow> {
        TimeWindow::try_new(self.start.max(other.start), self.end.min(other.end))
    }

    /// Iterates all sub-windows `[ts, te] ⊆ self` (used by naive reference
    /// implementations; there are `len * (len + 1) / 2` of them).
    pub fn sub_windows(&self) -> impl Iterator<Item = TimeWindow> + '_ {
        let (s, e) = (self.start, self.end);
        (s..=e).flat_map(move |ts| (ts..=e).map(move |te| TimeWindow::new(ts, te)))
    }
}

impl fmt::Display for TimeWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let w = TimeWindow::new(2, 5);
        assert_eq!(w.start(), 2);
        assert_eq!(w.end(), 5);
        assert_eq!(w.len(), 4);
        assert!(!w.is_empty());
        assert_eq!(w.to_string(), "[2, 5]");
    }

    #[test]
    fn contains_and_containment() {
        let w = TimeWindow::new(2, 6);
        assert!(w.contains(2));
        assert!(w.contains(6));
        assert!(!w.contains(1));
        assert!(!w.contains(7));
        assert!(w.contains_window(&TimeWindow::new(3, 5)));
        assert!(w.contains_window(&TimeWindow::new(2, 6)));
        assert!(!w.properly_contains(&TimeWindow::new(2, 6)));
        assert!(w.properly_contains(&TimeWindow::new(2, 5)));
        assert!(!w.contains_window(&TimeWindow::new(1, 5)));
    }

    #[test]
    fn intersect() {
        let a = TimeWindow::new(2, 6);
        let b = TimeWindow::new(5, 9);
        assert_eq!(a.intersect(&b), Some(TimeWindow::new(5, 6)));
        assert_eq!(b.intersect(&a), Some(TimeWindow::new(5, 6)));
        let c = TimeWindow::new(8, 9);
        assert_eq!(a.intersect(&c), None);
    }

    #[test]
    fn intersect_with_self_is_identity() {
        for w in [
            TimeWindow::new(1, 1),
            TimeWindow::new(2, 6),
            TimeWindow::new(7, 7),
        ] {
            assert_eq!(w.intersect(&w), Some(w));
        }
    }

    #[test]
    fn single_timestamp_window() {
        let w = TimeWindow::new(4, 4);
        assert_eq!(w.len(), 1);
        assert!(
            !w.is_empty(),
            "the invariant start <= end rules out emptiness"
        );
        assert!(w.contains(4));
        assert!(!w.contains(3));
        assert!(!w.contains(5));
        assert!(w.contains_window(&w));
        assert!(!w.properly_contains(&w));
        assert_eq!(w.sub_windows().collect::<Vec<_>>(), vec![w]);
        // Intersections with adjacent singletons are empty, with itself full.
        assert_eq!(w.intersect(&TimeWindow::new(5, 5)), None);
        assert_eq!(w.intersect(&TimeWindow::new(3, 3)), None);
        assert_eq!(w.intersect(&TimeWindow::new(1, 9)), Some(w));
    }

    #[test]
    fn try_new_rejects_invalid() {
        assert!(TimeWindow::try_new(0, 3).is_none());
        assert!(TimeWindow::try_new(4, 3).is_none());
        assert!(TimeWindow::try_new(3, 3).is_some());
    }

    #[test]
    fn sub_windows_count() {
        let w = TimeWindow::new(1, 4);
        let subs: Vec<_> = w.sub_windows().collect();
        assert_eq!(subs.len(), 10);
        assert!(subs.contains(&TimeWindow::new(1, 4)));
        assert!(subs.contains(&TimeWindow::new(3, 3)));
        // all returned windows are contained in the parent
        assert!(subs.iter().all(|s| w.contains_window(s)));
    }

    #[test]
    #[should_panic]
    fn new_panics_on_zero_start() {
        let _ = TimeWindow::new(0, 4);
    }

    #[test]
    #[should_panic]
    fn new_panics_on_inverted() {
        let _ = TimeWindow::new(5, 4);
    }
}
