use crate::graph::GroupEntry;
use crate::{EdgeId, TemporalEdge, TemporalGraph, TemporalGraphError, Timestamp, VertexId};
use std::collections::HashMap;

/// How raw timestamps are mapped to the normalised `1..=tmax` range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimestampMode {
    /// Distinct raw timestamps are compressed, order-preservingly, to the
    /// consecutive integers `1..=tmax` (the convention used throughout the
    /// paper).  This is the default and works with arbitrary `i64` raw
    /// timestamps such as Unix epochs.
    #[default]
    CompressDistinct,
    /// Raw timestamps are used as-is.  They must already be positive and
    /// reasonably dense: per-timestamp index memory is proportional to the
    /// largest timestamp.
    Raw,
}

/// Builder for [`TemporalGraph`].
///
/// Vertices are identified by arbitrary `u64` labels and mapped to dense ids;
/// timestamps are normalised according to the configured [`TimestampMode`].
///
/// ```
/// use temporal_graph::{TemporalGraphBuilder, TimeWindow};
///
/// let g = TemporalGraphBuilder::new()
///     .add_edge(10, 20, 100)
///     .add_edge(20, 30, 105)
///     .add_edge(10, 30, 105)
///     .build()
///     .unwrap();
/// assert_eq!(g.num_vertices(), 3);
/// assert_eq!(g.tmax(), 2); // two distinct raw timestamps
/// ```
#[derive(Debug, Clone)]
pub struct TemporalGraphBuilder {
    raw_edges: Vec<(u64, u64, i64)>,
    timestamp_mode: TimestampMode,
    skip_self_loops: bool,
    dedup_exact: bool,
}

impl Default for TemporalGraphBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl TemporalGraphBuilder {
    /// Creates an empty builder with default settings (compressed timestamps,
    /// self loops silently skipped, exact duplicates kept).
    pub fn new() -> Self {
        Self {
            raw_edges: Vec::new(),
            timestamp_mode: TimestampMode::default(),
            skip_self_loops: true,
            dedup_exact: false,
        }
    }

    /// Sets the timestamp normalisation mode.
    pub fn timestamp_mode(mut self, mode: TimestampMode) -> Self {
        self.timestamp_mode = mode;
        self
    }

    /// When `false`, a self loop makes [`Self::build`] fail instead of being
    /// silently dropped.
    pub fn skip_self_loops(mut self, skip: bool) -> Self {
        self.skip_self_loops = skip;
        self
    }

    /// When `true`, exact duplicate occurrences `(u, v, t)` are collapsed to a
    /// single temporal edge.
    pub fn dedup_exact_duplicates(mut self, dedup: bool) -> Self {
        self.dedup_exact = dedup;
        self
    }

    /// Adds a single temporal edge `(u, v, t)` given by external labels and a
    /// raw timestamp.
    pub fn add_edge(mut self, u: u64, v: u64, t: i64) -> Self {
        self.raw_edges.push((u, v, t));
        self
    }

    /// Adds every edge from an iterator of `(u, v, t)` triples.
    pub fn with_edges<I>(mut self, edges: I) -> Self
    where
        I: IntoIterator<Item = (u64, u64, i64)>,
    {
        self.raw_edges.extend(edges);
        self
    }

    /// Number of raw edges currently buffered.
    pub fn len(&self) -> usize {
        self.raw_edges.len()
    }

    /// True when no edge has been added yet.
    pub fn is_empty(&self) -> bool {
        self.raw_edges.is_empty()
    }

    /// Builds the immutable [`TemporalGraph`].
    pub fn build(self) -> Result<TemporalGraph, TemporalGraphError> {
        let mut raw = Vec::with_capacity(self.raw_edges.len());
        for &(u, v, t) in &self.raw_edges {
            if u == v {
                if self.skip_self_loops {
                    continue;
                }
                return Err(TemporalGraphError::InvalidEdge {
                    message: format!("self loop ({u}, {v}, {t})"),
                });
            }
            raw.push((u, v, t));
        }
        if raw.is_empty() {
            return Err(TemporalGraphError::EmptyGraph);
        }

        // Vertex label -> dense id, deterministic (sorted by label).
        let mut labels: Vec<u64> = raw.iter().flat_map(|&(u, v, _)| [u, v]).collect();
        labels.sort_unstable();
        labels.dedup();
        let id_of: HashMap<u64, VertexId> = labels
            .iter()
            .enumerate()
            .map(|(i, &l)| (l, i as VertexId))
            .collect();

        // Timestamp normalisation.
        let normalise: Box<dyn Fn(i64) -> Result<Timestamp, TemporalGraphError>> =
            match self.timestamp_mode {
                TimestampMode::CompressDistinct => {
                    let mut ts: Vec<i64> = raw.iter().map(|&(_, _, t)| t).collect();
                    ts.sort_unstable();
                    ts.dedup();
                    let map: HashMap<i64, Timestamp> = ts
                        .iter()
                        .enumerate()
                        .map(|(i, &t)| (t, (i + 1) as Timestamp))
                        .collect();
                    Box::new(move |t| Ok(map[&t]))
                }
                TimestampMode::Raw => Box::new(|t| {
                    if t < 1 || t > i64::from(u32::MAX - 1) {
                        Err(TemporalGraphError::InvalidEdge {
                            message: format!("raw timestamp {t} out of range 1..2^32-1"),
                        })
                    } else {
                        Ok(t as Timestamp)
                    }
                }),
            };

        let mut edges = Vec::with_capacity(raw.len());
        for &(u, v, t) in &raw {
            let (a, b) = (id_of[&u], id_of[&v]);
            let (a, b) = if a < b { (a, b) } else { (b, a) };
            edges.push(TemporalEdge {
                u: a,
                v: b,
                t: normalise(t)?,
            });
        }
        edges.sort_unstable_by_key(|e| (e.t, e.u, e.v));
        if self.dedup_exact {
            edges.dedup();
        }

        Ok(assemble_graph(edges, labels))
    }
}

/// Assembles the immutable per-timestamp and adjacency indexes of a
/// [`TemporalGraph`] from normalised edges (dense vertex ids, `u < v`,
/// sorted by `(t, u, v)`) and the dense-id → label table.
///
/// Shared between [`TemporalGraphBuilder::build`] and the appendable layer
/// ([`crate::AppendableGraph`]), which must keep vertex ids stable across
/// snapshots and therefore cannot go through the builder's label-sorted id
/// assignment.
pub(crate) fn assemble_graph(edges: Vec<TemporalEdge>, labels: Vec<u64>) -> TemporalGraph {
    debug_assert!(edges
        .windows(2)
        .all(|w| { (w[0].t, w[0].u, w[0].v) <= (w[1].t, w[1].u, w[1].v) }));
    let num_vertices = labels.len();
    let tmax = edges.last().map(|e| e.t).unwrap_or(0);

    // Per-timestamp offsets.
    let mut time_offsets = vec![0u32; tmax as usize + 2];
    for e in &edges {
        time_offsets[e.t as usize + 1] += 1;
    }
    for i in 1..time_offsets.len() {
        time_offsets[i] += time_offsets[i - 1];
    }

    // Adjacency grouped by distinct neighbour.
    let mut incidences: Vec<(VertexId, VertexId, Timestamp, EdgeId)> =
        Vec::with_capacity(edges.len() * 2);
    for (id, e) in edges.iter().enumerate() {
        incidences.push((e.u, e.v, e.t, id as EdgeId));
        incidences.push((e.v, e.u, e.t, id as EdgeId));
    }
    incidences.sort_unstable();

    let mut adj_offsets = vec![0u32; num_vertices + 1];
    let mut groups: Vec<GroupEntry> = Vec::new();
    let mut occurrences: Vec<(Timestamp, EdgeId)> = Vec::with_capacity(incidences.len());
    let mut i = 0usize;
    for u in 0..num_vertices as VertexId {
        while i < incidences.len() && incidences[i].0 == u {
            let neighbor = incidences[i].1;
            let occ_start = occurrences.len() as u32;
            while i < incidences.len() && incidences[i].0 == u && incidences[i].1 == neighbor {
                occurrences.push((incidences[i].2, incidences[i].3));
                i += 1;
            }
            groups.push(GroupEntry {
                neighbor,
                occ_start,
                occ_end: occurrences.len() as u32,
            });
        }
        adj_offsets[u as usize + 1] = groups.len() as u32;
    }

    TemporalGraph {
        num_vertices,
        edges,
        tmax,
        time_offsets,
        adj_offsets,
        groups,
        occurrences,
        labels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TimeWindow;

    #[test]
    fn compresses_timestamps() {
        let g = TemporalGraphBuilder::new()
            .with_edges([(1u64, 2u64, 1_000i64), (2, 3, 5_000), (1, 3, 1_000)])
            .build()
            .unwrap();
        assert_eq!(g.tmax(), 2);
        assert_eq!(g.edges_at(1).len(), 2);
        assert_eq!(g.edges_at(2).len(), 1);
    }

    #[test]
    fn raw_mode_keeps_timestamps() {
        let g = TemporalGraphBuilder::new()
            .timestamp_mode(TimestampMode::Raw)
            .with_edges([(1u64, 2u64, 3i64), (2, 3, 7)])
            .build()
            .unwrap();
        assert_eq!(g.tmax(), 7);
        assert_eq!(g.edges_at(3).len(), 1);
        assert_eq!(g.num_edges_in(TimeWindow::new(4, 6)), 0);
    }

    #[test]
    fn raw_mode_rejects_nonpositive() {
        let err = TemporalGraphBuilder::new()
            .timestamp_mode(TimestampMode::Raw)
            .add_edge(1, 2, 0)
            .build()
            .unwrap_err();
        assert!(matches!(err, TemporalGraphError::InvalidEdge { .. }));
    }

    #[test]
    fn self_loops_skipped_by_default() {
        let g = TemporalGraphBuilder::new()
            .with_edges([(1u64, 1u64, 1i64), (1, 2, 2)])
            .build()
            .unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.num_vertices(), 2);
    }

    #[test]
    fn self_loops_rejected_when_strict() {
        let err = TemporalGraphBuilder::new()
            .skip_self_loops(false)
            .add_edge(1, 1, 1)
            .build()
            .unwrap_err();
        assert!(matches!(err, TemporalGraphError::InvalidEdge { .. }));
    }

    #[test]
    fn empty_graph_is_an_error() {
        assert!(matches!(
            TemporalGraphBuilder::new().build().unwrap_err(),
            TemporalGraphError::EmptyGraph
        ));
        // only self loops -> still empty
        assert!(matches!(
            TemporalGraphBuilder::new()
                .add_edge(3, 3, 1)
                .build()
                .unwrap_err(),
            TemporalGraphError::EmptyGraph
        ));
    }

    #[test]
    fn dedup_exact_duplicates() {
        let edges = [(1u64, 2u64, 5i64), (2, 1, 5), (1, 2, 5)];
        let kept = TemporalGraphBuilder::new()
            .with_edges(edges)
            .build()
            .unwrap();
        assert_eq!(kept.num_edges(), 3);
        let deduped = TemporalGraphBuilder::new()
            .dedup_exact_duplicates(true)
            .with_edges(edges)
            .build()
            .unwrap();
        assert_eq!(deduped.num_edges(), 1);
    }

    #[test]
    fn labels_round_trip() {
        let g = TemporalGraphBuilder::new()
            .with_edges([(100u64, 7u64, 1i64), (7, 42, 2)])
            .build()
            .unwrap();
        let mut labels = g.labels().to_vec();
        labels.sort_unstable();
        assert_eq!(labels, vec![7, 42, 100]);
        // adjacency is symmetric
        for u in 0..g.num_vertices() as VertexId {
            for gr in g.neighbors(u) {
                assert!(g.neighbors(gr.neighbor).any(|h| h.neighbor == u));
            }
        }
    }

    #[test]
    fn builder_len_helpers() {
        let b = TemporalGraphBuilder::new();
        assert!(b.is_empty());
        let b = b.add_edge(1, 2, 1);
        assert_eq!(b.len(), 1);
        assert!(!b.is_empty());
    }
}
