//! Synthetic temporal graph generators.
//!
//! The evaluation of the paper uses fourteen real temporal networks.  Those
//! files are not redistributable with this repository, so the benchmark
//! harness generates *scaled synthetic analogues* with the same structural
//! knobs that drive the algorithms under test: number of vertices, number of
//! temporal edges, number of distinct timestamps, and core density.  The
//! generators here are the building blocks for those profiles (see the
//! `tkc-datasets` crate) and are also useful on their own for testing.

use crate::{TemporalGraph, TemporalGraphBuilder};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Uniformly random temporal graph: every edge picks two distinct vertices
/// uniformly at random and a timestamp uniformly in `1..=num_timestamps`.
///
/// This mirrors sparse interaction networks with many distinct timestamps
/// (the FB/BO/CM regime of the paper's Table III).
pub fn uniform_random(
    num_vertices: usize,
    num_edges: usize,
    num_timestamps: u32,
    seed: u64,
) -> TemporalGraph {
    assert!(num_vertices >= 2, "need at least two vertices");
    assert!(num_timestamps >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = TemporalGraphBuilder::new();
    let mut added = 0usize;
    while added < num_edges {
        let u = rng.random_range(0..num_vertices) as u64;
        let v = rng.random_range(0..num_vertices) as u64;
        if u == v {
            continue;
        }
        let t = rng.random_range(1..=i64::from(num_timestamps));
        builder = builder.add_edge(u, v, t);
        added += 1;
    }
    // tkc-lint: allow(no-panic-api) — a generator bug, not caller input; the loops above always add edges
    builder.build().expect("generator always produces edges")
}

/// Temporal preferential-attachment graph (Barabási–Albert style).
///
/// Vertices arrive one by one; each new vertex attaches to `edges_per_vertex`
/// existing vertices chosen proportionally to their degree.  Timestamps grow
/// with arrival order with a small random spread, producing the "activity
/// accumulates over time" pattern of communication networks (EM/SU/WT regime).
pub fn preferential_attachment(
    num_vertices: usize,
    edges_per_vertex: usize,
    num_timestamps: u32,
    seed: u64,
) -> TemporalGraph {
    assert!(num_vertices > edges_per_vertex + 1);
    assert!(edges_per_vertex >= 1);
    assert!(num_timestamps >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = TemporalGraphBuilder::new();
    // Repeated-endpoint list implements degree-proportional sampling.
    let mut endpoints: Vec<u64> = Vec::new();
    let seed_vertices = edges_per_vertex + 1;
    for u in 0..seed_vertices as u64 {
        for v in 0..u {
            builder = builder.add_edge(u, v, 1);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for u in seed_vertices as u64..num_vertices as u64 {
        let progress = (u as f64) / (num_vertices as f64);
        let base_t = 1.0 + progress * f64::from(num_timestamps - 1);
        let mut targets = Vec::with_capacity(edges_per_vertex);
        while targets.len() < edges_per_vertex {
            let pick = endpoints[rng.random_range(0..endpoints.len())];
            if pick != u && !targets.contains(&pick) {
                targets.push(pick);
            }
        }
        for &v in &targets {
            let jitter = rng.random_range(-3.0..=3.0);
            let t = (base_t + jitter)
                .round()
                .clamp(1.0, f64::from(num_timestamps)) as i64;
            builder = builder.add_edge(u, v, t);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    // tkc-lint: allow(no-panic-api) — a generator bug, not caller input; the loops above always add edges
    builder.build().expect("generator always produces edges")
}

/// Parameters for [`planted_bursty_cores`].
#[derive(Debug, Clone)]
pub struct BurstyConfig {
    /// Number of vertices in the background graph.
    pub num_vertices: usize,
    /// Number of uniformly random background edges.
    pub background_edges: usize,
    /// Number of planted bursts (dense communities active in a short window).
    pub num_bursts: usize,
    /// Vertices per burst community.
    pub burst_size: usize,
    /// Length (in timestamps) of each burst window.
    pub burst_duration: u32,
    /// Probability of each intra-community pair interacting during the burst.
    pub burst_density: f64,
    /// Total number of distinct timestamps.
    pub num_timestamps: u32,
}

impl Default for BurstyConfig {
    fn default() -> Self {
        Self {
            num_vertices: 500,
            background_edges: 2_000,
            num_bursts: 8,
            burst_size: 20,
            burst_duration: 20,
            burst_density: 0.6,
            num_timestamps: 1_000,
        }
    }
}

/// Background noise plus *planted bursty communities*: dense subgraphs whose
/// edges all fall inside a short time window.  This mimics the coordinated
/// bursts (bot campaigns, transaction rings, outbreak clusters) that motivate
/// exhaustive temporal k-core enumeration in the paper's introduction, and it
/// guarantees the existence of non-trivial temporal k-cores.
pub fn planted_bursty_cores(config: &BurstyConfig, seed: u64) -> TemporalGraph {
    assert!(config.num_vertices >= config.burst_size.max(2));
    assert!(config.burst_size >= 2);
    assert!(config.num_timestamps >= 1);
    assert!((0.0..=1.0).contains(&config.burst_density));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = TemporalGraphBuilder::new();

    // Background noise.
    let mut added = 0usize;
    while added < config.background_edges {
        let u = rng.random_range(0..config.num_vertices) as u64;
        let v = rng.random_range(0..config.num_vertices) as u64;
        if u == v {
            continue;
        }
        let t = rng.random_range(1..=i64::from(config.num_timestamps));
        builder = builder.add_edge(u, v, t);
        added += 1;
    }

    // Planted bursts.
    let mut vertices: Vec<u64> = (0..config.num_vertices as u64).collect();
    for _ in 0..config.num_bursts {
        vertices.shuffle(&mut rng);
        let members = &vertices[..config.burst_size];
        let latest_start = config.num_timestamps.saturating_sub(config.burst_duration) + 1;
        let start = rng.random_range(1..=i64::from(latest_start.max(1)));
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                if rng.random_bool(config.burst_density) {
                    let offset = rng.random_range(0..i64::from(config.burst_duration.max(1)));
                    let t = (start + offset).min(i64::from(config.num_timestamps));
                    builder = builder.add_edge(members[i], members[j], t);
                }
            }
        }
    }
    // tkc-lint: allow(no-panic-api) — a generator bug, not caller input; the loops above always add edges
    builder.build().expect("generator always produces edges")
}

/// Random temporal graph with *few* distinct timestamps: many edges share the
/// same label, mimicking snapshot-style datasets (the WK/PL/YT regime of
/// Table III, where `tmax` is orders of magnitude smaller than `|E|`).
pub fn few_timestamps(
    num_vertices: usize,
    num_edges: usize,
    num_timestamps: u32,
    seed: u64,
) -> TemporalGraph {
    // Identical mechanics to `uniform_random`; the semantic difference is the
    // caller passing a very small `num_timestamps`, which we keep as an
    // explicit entry point for readability at call sites.
    uniform_random(num_vertices, num_edges, num_timestamps, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_random_respects_parameters() {
        let g = uniform_random(50, 300, 40, 7);
        assert!(g.num_vertices() <= 50);
        assert_eq!(g.num_edges(), 300);
        assert!(g.tmax() <= 40);
        // determinism
        let g2 = uniform_random(50, 300, 40, 7);
        assert_eq!(g.edges(), g2.edges());
        let g3 = uniform_random(50, 300, 40, 8);
        assert_ne!(g.edges(), g3.edges());
    }

    #[test]
    fn preferential_attachment_shape() {
        let g = preferential_attachment(100, 3, 50, 11);
        // 3 seed edges (triangle on 4 seed vertices = 6 edges) plus 3 per new vertex
        assert!(g.num_edges() >= 3 * (100 - 4));
        assert!(g.tmax() <= 50);
        // hubs exist: max distinct degree well above the minimum attachment count
        let max_deg = (0..g.num_vertices() as u32)
            .map(|u| g.distinct_degree(u))
            .max()
            .unwrap();
        assert!(max_deg > 5);
    }

    #[test]
    fn bursty_cores_are_planted() {
        let cfg = BurstyConfig {
            num_vertices: 80,
            background_edges: 100,
            num_bursts: 3,
            burst_size: 10,
            burst_duration: 5,
            burst_density: 0.9,
            num_timestamps: 60,
        };
        let g = planted_bursty_cores(&cfg, 3);
        assert!(g.num_edges() > 100);
        // bursts concentrate edges: some timestamp bucket holds several edges
        let busiest = (1..=g.tmax()).map(|t| g.edges_at(t).len()).max().unwrap();
        assert!(busiest >= 2);
    }

    #[test]
    fn few_timestamps_compresses_time() {
        let g = few_timestamps(60, 500, 5, 9);
        assert!(g.tmax() <= 5);
        assert_eq!(g.num_edges(), 500);
    }

    #[test]
    #[should_panic]
    fn uniform_random_rejects_single_vertex() {
        let _ = uniform_random(1, 10, 5, 0);
    }
}
