use crate::{EdgeId, TimeWindow, Timestamp, VertexId};
use std::ops::Range;

/// A single undirected temporal edge occurrence `(u, v, t)`.
///
/// Edges are stored with `u < v`; the graph is undirected so `(u, v, t)` and
/// `(v, u, t)` denote the same occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TemporalEdge {
    /// Smaller endpoint.
    pub u: VertexId,
    /// Larger endpoint.
    pub v: VertexId,
    /// Normalised timestamp (`1..=tmax`).
    pub t: Timestamp,
}

impl TemporalEdge {
    /// The endpoint of the edge that is not `w`.
    ///
    /// # Panics
    /// Panics if `w` is not an endpoint of this edge.
    #[inline]
    pub fn other(&self, w: VertexId) -> VertexId {
        if w == self.u {
            self.v
        } else {
            debug_assert_eq!(w, self.v, "vertex {w} is not an endpoint");
            self.u
        }
    }
}

/// One adjacency group: a distinct neighbour of a vertex together with every
/// edge occurrence shared with that neighbour, sorted by timestamp.
#[derive(Debug, Clone, Copy)]
pub struct NeighborGroup<'a> {
    /// The distinct neighbour vertex.
    pub neighbor: VertexId,
    /// All `(timestamp, edge id)` occurrences between the owning vertex and
    /// [`Self::neighbor`], sorted by timestamp ascending.
    pub occurrences: &'a [(Timestamp, EdgeId)],
}

impl<'a> NeighborGroup<'a> {
    /// Earliest occurrence timestamp that is `>= ts`, if any.
    #[inline]
    pub fn earliest_at_or_after(&self, ts: Timestamp) -> Option<(Timestamp, EdgeId)> {
        let idx = self.occurrences.partition_point(|&(t, _)| t < ts);
        self.occurrences.get(idx).copied()
    }

    /// Occurrences whose timestamp falls inside `window`.
    #[inline]
    pub fn occurrences_in(&self, window: TimeWindow) -> &'a [(Timestamp, EdgeId)] {
        let lo = self
            .occurrences
            .partition_point(|&(t, _)| t < window.start());
        let hi = self
            .occurrences
            .partition_point(|&(t, _)| t <= window.end());
        &self.occurrences[lo..hi]
    }
}

#[derive(Debug, Clone)]
pub(crate) struct GroupEntry {
    pub(crate) neighbor: VertexId,
    pub(crate) occ_start: u32,
    pub(crate) occ_end: u32,
}

/// An immutable temporal graph.
///
/// Construction happens through [`crate::TemporalGraphBuilder`], the
/// [`crate::loader`] or one of the [`crate::generator`] functions.  The graph
/// stores:
///
/// * all temporal edges sorted by timestamp (so the edge occurrences of any
///   time window form a contiguous id range);
/// * a per-timestamp bucket index;
/// * per-vertex adjacency grouped by distinct neighbour, every group holding
///   the sorted occurrence list shared with that neighbour.
#[derive(Debug, Clone)]
pub struct TemporalGraph {
    pub(crate) num_vertices: usize,
    pub(crate) edges: Vec<TemporalEdge>,
    pub(crate) tmax: Timestamp,
    /// `time_offsets[t]..time_offsets[t + 1]` indexes the edges with timestamp `t`.
    pub(crate) time_offsets: Vec<u32>,
    pub(crate) adj_offsets: Vec<u32>,
    pub(crate) groups: Vec<GroupEntry>,
    pub(crate) occurrences: Vec<(Timestamp, EdgeId)>,
    pub(crate) labels: Vec<u64>,
}

impl TemporalGraph {
    /// Number of vertices (`|V|`). Vertex ids are `0..num_vertices()`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of temporal edge occurrences (`|E|`).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Largest (normalised) timestamp in the graph.
    #[inline]
    pub fn tmax(&self) -> Timestamp {
        self.tmax
    }

    /// The full time span `[1, tmax]` of the graph.
    #[inline]
    pub fn span(&self) -> TimeWindow {
        TimeWindow::new(1, self.tmax.max(1))
    }

    /// All temporal edges, sorted by `(t, u, v)`.
    #[inline]
    pub fn edges(&self) -> &[TemporalEdge] {
        &self.edges
    }

    /// The temporal edge with the given id.
    #[inline]
    pub fn edge(&self, id: EdgeId) -> &TemporalEdge {
        &self.edges[id as usize]
    }

    /// Ids of the edges whose timestamp is exactly `t`.
    #[inline]
    pub fn edge_ids_at(&self, t: Timestamp) -> Range<EdgeId> {
        if t == 0 || t > self.tmax {
            return 0..0;
        }
        self.time_offsets[t as usize]..self.time_offsets[t as usize + 1]
    }

    /// Edges whose timestamp is exactly `t`.
    #[inline]
    pub fn edges_at(&self, t: Timestamp) -> &[TemporalEdge] {
        let r = self.edge_ids_at(t);
        &self.edges[r.start as usize..r.end as usize]
    }

    /// Ids of the edges falling inside `window` (a contiguous range because
    /// edges are sorted by timestamp).
    #[inline]
    pub fn edge_ids_in(&self, window: TimeWindow) -> Range<EdgeId> {
        let start = window.start().min(self.tmax + 1);
        let end = window.end().min(self.tmax);
        if start > end {
            return 0..0;
        }
        self.time_offsets[start as usize]..self.time_offsets[end as usize + 1]
    }

    /// Edges falling inside `window`.
    #[inline]
    pub fn edges_in(&self, window: TimeWindow) -> &[TemporalEdge] {
        let r = self.edge_ids_in(window);
        &self.edges[r.start as usize..r.end as usize]
    }

    /// Number of edge occurrences inside `window`.
    #[inline]
    pub fn num_edges_in(&self, window: TimeWindow) -> usize {
        let r = self.edge_ids_in(window);
        (r.end - r.start) as usize
    }

    /// Iterates the adjacency of `u`: one [`NeighborGroup`] per distinct
    /// neighbour, ordered by neighbour id.
    pub fn neighbors(&self, u: VertexId) -> impl Iterator<Item = NeighborGroup<'_>> + '_ {
        let lo = self.adj_offsets[u as usize] as usize;
        let hi = self.adj_offsets[u as usize + 1] as usize;
        self.groups[lo..hi].iter().map(move |g| NeighborGroup {
            neighbor: g.neighbor,
            occurrences: &self.occurrences[g.occ_start as usize..g.occ_end as usize],
        })
    }

    /// Number of distinct neighbours of `u` over the whole time span.
    #[inline]
    pub fn distinct_degree(&self, u: VertexId) -> usize {
        (self.adj_offsets[u as usize + 1] - self.adj_offsets[u as usize]) as usize
    }

    /// Number of edge occurrences incident to `u` over the whole time span.
    pub fn temporal_degree(&self, u: VertexId) -> usize {
        self.neighbors(u).map(|g| g.occurrences.len()).sum()
    }

    /// Number of distinct neighbours of `u` restricted to `window`.
    pub fn distinct_degree_in(&self, u: VertexId, window: TimeWindow) -> usize {
        self.neighbors(u)
            .filter(|g| !g.occurrences_in(window).is_empty())
            .count()
    }

    /// Average distinct degree over vertices with at least one incident edge
    /// in `window` (the `deg_avg` of the paper's complexity analysis).
    pub fn average_distinct_degree_in(&self, window: TimeWindow) -> f64 {
        let mut total = 0usize;
        let mut active = 0usize;
        for u in 0..self.num_vertices as VertexId {
            let d = self.distinct_degree_in(u, window);
            if d > 0 {
                total += d;
                active += 1;
            }
        }
        if active == 0 {
            0.0
        } else {
            total as f64 / active as f64
        }
    }

    /// Number of distinct timestamps present in `window`.
    pub fn distinct_timestamps_in(&self, window: TimeWindow) -> usize {
        let start = window.start().min(self.tmax + 1);
        let end = window.end().min(self.tmax);
        (start..=end)
            .filter(|&t| {
                let r = self.edge_ids_at(t);
                r.end > r.start
            })
            .count()
    }

    /// Original (external) label of vertex `u`.
    #[inline]
    pub fn label(&self, u: VertexId) -> u64 {
        self.labels[u as usize]
    }

    /// Original labels for all vertices, indexed by vertex id.
    #[inline]
    pub fn labels(&self) -> &[u64] {
        &self.labels
    }

    /// Approximate heap footprint of the graph in bytes (used by the memory
    /// accounting experiment).
    pub fn memory_bytes(&self) -> usize {
        self.edges.len() * std::mem::size_of::<TemporalEdge>()
            + self.time_offsets.len() * 4
            + self.adj_offsets.len() * 4
            + self.groups.len() * std::mem::size_of::<GroupEntry>()
            + self.occurrences.len() * std::mem::size_of::<(Timestamp, EdgeId)>()
            + self.labels.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use crate::TemporalGraphBuilder;

    use super::*;

    fn small() -> TemporalGraph {
        // triangle at t=1..3 plus a pendant edge at t=5, duplicate occurrence (0,1)@4
        TemporalGraphBuilder::new()
            .with_edges([
                (0u64, 1u64, 1i64),
                (1, 2, 2),
                (0, 2, 3),
                (0, 1, 4),
                (2, 3, 5),
            ])
            .build()
            .unwrap()
    }

    #[test]
    fn basic_counts() {
        let g = small();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.tmax(), 5);
        assert_eq!(g.span(), TimeWindow::new(1, 5));
    }

    #[test]
    fn edges_sorted_by_time_and_window_slices() {
        let g = small();
        let ts: Vec<_> = g.edges().iter().map(|e| e.t).collect();
        let mut sorted = ts.clone();
        sorted.sort_unstable();
        assert_eq!(ts, sorted);

        assert_eq!(g.edges_at(1).len(), 1);
        assert_eq!(g.edges_at(7).len(), 0);
        assert_eq!(g.num_edges_in(TimeWindow::new(2, 4)), 3);
        assert_eq!(g.num_edges_in(TimeWindow::new(6, 9)), 0);
        let r = g.edge_ids_in(TimeWindow::new(1, 5));
        assert_eq!((r.end - r.start) as usize, g.num_edges());
    }

    #[test]
    fn adjacency_groups() {
        let g = small();
        // vertex with label 0 has neighbours 1 (two occurrences) and 2.
        let v0 = g.labels().iter().position(|&l| l == 0).unwrap() as VertexId;
        let v1 = g.labels().iter().position(|&l| l == 1).unwrap() as VertexId;
        assert_eq!(g.distinct_degree(v0), 2);
        assert_eq!(g.temporal_degree(v0), 3);
        let group = g
            .neighbors(v0)
            .find(|gr| gr.neighbor == v1)
            .expect("neighbour group present");
        assert_eq!(group.occurrences.len(), 2);
        assert_eq!(group.earliest_at_or_after(1), Some(group.occurrences[0]));
        assert_eq!(group.earliest_at_or_after(2).map(|(t, _)| t), Some(4));
        assert_eq!(group.earliest_at_or_after(5), None);
        assert_eq!(group.occurrences_in(TimeWindow::new(2, 5)).len(), 1);
    }

    #[test]
    fn windowed_degrees() {
        let g = small();
        let v0 = g.labels().iter().position(|&l| l == 0).unwrap() as VertexId;
        assert_eq!(g.distinct_degree_in(v0, TimeWindow::new(1, 5)), 2);
        assert_eq!(g.distinct_degree_in(v0, TimeWindow::new(4, 5)), 1);
        assert_eq!(g.distinct_degree_in(v0, TimeWindow::new(5, 5)), 0);
        assert!(g.average_distinct_degree_in(TimeWindow::new(1, 5)) > 0.0);
        assert_eq!(g.average_distinct_degree_in(TimeWindow::new(6, 8)), 0.0);
        assert_eq!(g.distinct_timestamps_in(TimeWindow::new(1, 5)), 5);
        assert_eq!(g.distinct_timestamps_in(TimeWindow::new(4, 5)), 2);
    }

    #[test]
    fn edge_other_endpoint() {
        let e = TemporalEdge { u: 3, v: 7, t: 1 };
        assert_eq!(e.other(3), 7);
        assert_eq!(e.other(7), 3);
    }

    #[test]
    fn memory_estimate_positive() {
        assert!(small().memory_bytes() > 0);
    }
}
