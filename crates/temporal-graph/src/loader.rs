//! Plain-text temporal edge list loading and saving.
//!
//! The format is the one used by SNAP and KONECT temporal datasets: one edge
//! per line, `u v t`, separated by whitespace or commas.  Lines starting with
//! `#` or `%` are comments.  Extra trailing fields (e.g. KONECT edge weights)
//! are ignored when `lenient` parsing is selected.

use crate::{TemporalGraph, TemporalGraphBuilder, TemporalGraphError, TimestampMode};
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Options controlling how an edge list is parsed.
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// Timestamp normalisation mode passed to the builder.
    pub timestamp_mode: TimestampMode,
    /// Accept lines with more than three fields (extra fields are ignored).
    pub lenient: bool,
    /// Collapse exact duplicate `(u, v, t)` occurrences.
    pub dedup_exact: bool,
}

impl Default for LoadOptions {
    fn default() -> Self {
        Self {
            timestamp_mode: TimestampMode::CompressDistinct,
            lenient: true,
            dedup_exact: false,
        }
    }
}

/// Reads a temporal graph from a text edge list file.
pub fn read_edge_list<P: AsRef<Path>>(path: P) -> Result<TemporalGraph, TemporalGraphError> {
    read_edge_list_with(path, &LoadOptions::default())
}

/// Reads a temporal graph from a text edge list file with explicit options.
pub fn read_edge_list_with<P: AsRef<Path>>(
    path: P,
    options: &LoadOptions,
) -> Result<TemporalGraph, TemporalGraphError> {
    let file = File::open(path)?;
    parse_edge_list(BufReader::new(file), options)
}

/// Parses a temporal graph from any reader.
pub fn parse_edge_list<R: Read>(
    reader: R,
    options: &LoadOptions,
) -> Result<TemporalGraph, TemporalGraphError> {
    let mut builder = TemporalGraphBuilder::new()
        .timestamp_mode(options.timestamp_mode)
        .dedup_exact_duplicates(options.dedup_exact);
    let buf = BufReader::new(reader);
    let mut line_no = 0usize;
    let mut line = String::new();
    let mut buf = buf;
    loop {
        line.clear();
        let read = buf.read_line(&mut line)?;
        if read == 0 {
            break;
        }
        line_no += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let fields: Vec<&str> = trimmed
            .split(|c: char| c.is_whitespace() || c == ',')
            .filter(|s| !s.is_empty())
            .collect();
        if fields.len() < 3 || (!options.lenient && fields.len() != 3) {
            return Err(TemporalGraphError::Parse {
                line: line_no,
                message: format!("expected `u v t`, got {} field(s)", fields.len()),
            });
        }
        let parse_u64 = |s: &str, what: &str| {
            s.parse::<u64>().map_err(|_| TemporalGraphError::Parse {
                line: line_no,
                message: format!("invalid {what} `{s}`"),
            })
        };
        let u = parse_u64(fields[0], "source vertex")?;
        let v = parse_u64(fields[1], "target vertex")?;
        // Timestamps may be floating point in some exports (e.g. `1082040961.0`).
        let t_str = fields[2];
        let t = if let Ok(t) = t_str.parse::<i64>() {
            t
        } else if let Ok(t) = t_str.parse::<f64>() {
            t as i64
        } else {
            return Err(TemporalGraphError::Parse {
                line: line_no,
                message: format!("invalid timestamp `{t_str}`"),
            });
        };
        builder = builder.add_edge(u, v, t);
    }
    builder.build()
}

/// Writes a temporal graph as a text edge list (`label_u label_v t` per line,
/// normalised timestamps).
pub fn write_edge_list<P: AsRef<Path>>(
    graph: &TemporalGraph,
    path: P,
) -> Result<(), TemporalGraphError> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    for e in graph.edges() {
        writeln!(w, "{} {} {}", graph.label(e.u), graph.label(e.v), e.t)?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_basic_edge_list() {
        let input = "# comment\n% another comment\n1 2 10\n2 3 20\n1 3 10\n\n";
        let g = parse_edge_list(Cursor::new(input), &LoadOptions::default()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.tmax(), 2);
    }

    #[test]
    fn parses_commas_and_floats_and_extra_fields() {
        let input = "1,2,100.0\n2,3,200.5,1\n";
        let g = parse_edge_list(Cursor::new(input), &LoadOptions::default()).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.tmax(), 2);
    }

    #[test]
    fn strict_mode_rejects_extra_fields() {
        let input = "1 2 3 4\n";
        let opts = LoadOptions {
            lenient: false,
            ..LoadOptions::default()
        };
        let err = parse_edge_list(Cursor::new(input), &opts).unwrap_err();
        assert!(matches!(err, TemporalGraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn reports_parse_errors_with_line_numbers() {
        let input = "1 2 3\nnot an edge\n";
        let err = parse_edge_list(Cursor::new(input), &LoadOptions::default()).unwrap_err();
        match err {
            TemporalGraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn rejects_too_few_fields() {
        let err = parse_edge_list(Cursor::new("1 2\n"), &LoadOptions::default()).unwrap_err();
        assert!(matches!(err, TemporalGraphError::Parse { .. }));
    }

    #[test]
    fn round_trips_through_files() {
        let g = crate::TemporalGraphBuilder::new()
            .with_edges([(5u64, 6u64, 3i64), (6, 7, 9), (5, 7, 9)])
            .build()
            .unwrap();
        let dir = std::env::temp_dir().join("tkc-loader-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.txt");
        write_edge_list(&g, &path).unwrap();
        let g2 = read_edge_list(&path).unwrap();
        assert_eq!(g2.num_vertices(), g.num_vertices());
        assert_eq!(g2.num_edges(), g.num_edges());
        assert_eq!(g2.tmax(), g.tmax());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_edge_list("/definitely/not/a/file.txt").unwrap_err();
        assert!(matches!(err, TemporalGraphError::Io(_)));
    }
}
