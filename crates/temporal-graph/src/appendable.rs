//! An appendable front for [`TemporalGraph`]: time-ordered ingest with
//! cheap immutable snapshots.
//!
//! [`AppendableGraph`] owns a mutable, time-ordered event log and publishes
//! immutable [`TemporalGraph`] snapshots behind an [`Arc`].  Readers clone
//! the `Arc` ([`AppendableGraph::snapshot`]) and keep a fully consistent
//! view for as long as they hold it; writers batch events with
//! [`AppendableGraph::append`] / [`AppendableGraph::append_batch`] and make
//! them visible atomically with [`AppendableGraph::publish`].
//!
//! # Ordering and identity guarantees
//!
//! * Events must arrive in **non-decreasing timestamp order**, strictly past
//!   the sealed watermark ([`AppendableGraph::floor`]); violations are typed
//!   [`TemporalGraphError::OutOfOrder`] rejections, never panics.
//! * Exact duplicates `(u, v, t)` are rejected with
//!   [`TemporalGraphError::DuplicateEvent`].
//! * Vertex ids are assigned in **first-seen order** and never change once
//!   assigned (unlike [`crate::TemporalGraphBuilder`], which sorts by
//!   label).  Together with time-ordered appends this keeps every edge of an
//!   already-published prefix at a stable [`crate::EdgeId`] across
//!   snapshots: appended edges sort strictly after the sealed prefix, so
//!   `EdgeId`-indexed structures built over timestamps `<=` [`Self::floor`]
//!   remain valid against every later snapshot.
//!
//! Publishing reassembles the per-timestamp and adjacency indexes (linear in
//! the number of events), so it is meant to be called once per batch, not
//! per event; `snapshot()` itself is a single atomic-refcount clone.

use crate::builder::assemble_graph;
use crate::{TemporalEdge, TemporalGraph, TemporalGraphError, Timestamp, VertexId};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// A mutable, append-only temporal graph publishing immutable snapshots.
///
/// ```
/// use temporal_graph::{AppendableGraph, TemporalGraphBuilder};
///
/// let base = TemporalGraphBuilder::new()
///     .with_edges([(1u64, 2u64, 1i64), (2, 3, 2)])
///     .build()
///     .unwrap();
/// let mut live = AppendableGraph::from_graph(base);
/// let frozen = live.snapshot();
///
/// live.append(1, 3, 3).unwrap();
/// assert!(live.append(1, 3, 1).is_err()); // out of order: typed, no panic
/// let fresh = live.publish();
///
/// assert_eq!(frozen.num_edges(), 2); // old readers keep their view
/// assert_eq!(fresh.num_edges(), 3);
/// ```
#[derive(Debug)]
pub struct AppendableGraph {
    /// All events, normalised to dense ids with `u < v`; sorted by
    /// `(t, u, v)` up to the dirty suffix re-sorted at publish time.
    edges: Vec<TemporalEdge>,
    /// Dense id → external label, in first-seen order.
    labels: Vec<u64>,
    id_of: HashMap<u64, VertexId>,
    /// Largest timestamp appended (or present in the base graph).
    last_t: Timestamp,
    /// Sealed watermark: appends must satisfy `t > floor`.
    floor: Timestamp,
    /// Label-space keys `(min, max)` of the events at `last_t`, for exact
    /// duplicate detection; reset whenever `last_t` advances.
    at_last: HashSet<(u64, u64)>,
    /// Earliest timestamp with unpublished events (`T_INFINITY`-free: `0`
    /// means clean).
    dirty_from: Timestamp,
    pending: usize,
    snapshot: Arc<TemporalGraph>,
}

impl AppendableGraph {
    /// Wraps an existing immutable graph as the sealed starting prefix.
    ///
    /// The graph's vertex-id assignment and edge ids are preserved verbatim;
    /// the initial snapshot is the graph itself.
    pub fn from_graph(graph: TemporalGraph) -> Self {
        let labels = graph.labels().to_vec();
        let id_of = labels
            .iter()
            .enumerate()
            .map(|(i, &l)| (l, i as VertexId))
            .collect();
        let last_t = graph.tmax();
        let at_last = graph
            .edges_at(last_t)
            .iter()
            .map(|e| Self::label_key(labels[e.u as usize], labels[e.v as usize]))
            .collect();
        let edges = graph.edges().to_vec();
        Self {
            edges,
            labels,
            id_of,
            last_t,
            floor: 0,
            at_last,
            dirty_from: 0,
            pending: 0,
            snapshot: Arc::new(graph),
        }
    }

    #[inline]
    fn label_key(u: u64, v: u64) -> (u64, u64) {
        if u < v {
            (u, v)
        } else {
            (v, u)
        }
    }

    /// The smallest timestamp [`Self::append`] currently accepts.
    #[inline]
    pub fn watermark(&self) -> Timestamp {
        self.last_t.max(self.floor + 1)
    }

    /// The sealed watermark: every event at `t <= floor()` is immutable and
    /// will keep its [`crate::EdgeId`] in all future snapshots.
    #[inline]
    pub fn floor(&self) -> Timestamp {
        self.floor
    }

    /// Raises the sealed watermark (it never goes down).  Events at or
    /// below the new floor become immutable; later appends must be strictly
    /// past it.
    pub fn raise_floor(&mut self, t: Timestamp) {
        self.floor = self.floor.max(t);
    }

    /// Largest timestamp appended so far (including unpublished events).
    #[inline]
    pub fn last_t(&self) -> Timestamp {
        self.last_t
    }

    /// Number of events appended since the last [`Self::publish`].
    #[inline]
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Total number of events, published or not.
    #[inline]
    pub fn num_events(&self) -> usize {
        self.edges.len()
    }

    /// The most recently published immutable snapshot (a cheap `Arc`
    /// clone).  Events appended after the last [`Self::publish`] are not
    /// visible in it.
    #[inline]
    pub fn snapshot(&self) -> Arc<TemporalGraph> {
        Arc::clone(&self.snapshot)
    }

    fn check_event(&self, u: u64, v: u64, t: Timestamp) -> Result<(), TemporalGraphError> {
        if u == v {
            return Err(TemporalGraphError::InvalidEdge {
                message: format!("self loop ({u}, {v}, {t})"),
            });
        }
        if t == Timestamp::MAX {
            return Err(TemporalGraphError::InvalidEdge {
                message: format!("timestamp {t} out of range 1..2^32-1"),
            });
        }
        let watermark = self.watermark();
        if t < watermark {
            return Err(TemporalGraphError::OutOfOrder { t, watermark });
        }
        if t == self.last_t && self.at_last.contains(&Self::label_key(u, v)) {
            return Err(TemporalGraphError::DuplicateEvent { u, v, t });
        }
        Ok(())
    }

    fn push_event(&mut self, u: u64, v: u64, t: Timestamp) {
        if t > self.last_t {
            self.at_last.clear();
            self.last_t = t;
        }
        self.at_last.insert(Self::label_key(u, v));
        let labels = &mut self.labels;
        let a = *self.id_of.entry(u).or_insert_with(|| {
            labels.push(u);
            (labels.len() - 1) as VertexId
        });
        let b = *self.id_of.entry(v).or_insert_with(|| {
            labels.push(v);
            (labels.len() - 1) as VertexId
        });
        let (a, b) = if a < b { (a, b) } else { (b, a) };
        self.edges.push(TemporalEdge { u: a, v: b, t });
        if self.pending == 0 {
            self.dirty_from = t;
        }
        self.pending += 1;
    }

    /// Appends one event `(u, v, t)` given by external vertex labels and a
    /// normalised timestamp on the graph's `1..=tmax` timeline.
    ///
    /// Fails (without mutating anything) when the event is a self loop, its
    /// timestamp is below [`Self::watermark`], or it exactly duplicates an
    /// occurrence at the same timestamp.
    pub fn append(&mut self, u: u64, v: u64, t: Timestamp) -> Result<(), TemporalGraphError> {
        self.check_event(u, v, t)?;
        self.push_event(u, v, t);
        Ok(())
    }

    /// Appends a whole batch atomically: the batch is validated in full
    /// first (including intra-batch ordering and duplicates), and on any
    /// rejection **no event of the batch is applied**.
    ///
    /// Returns the number of events appended (the batch length).
    pub fn append_batch(
        &mut self,
        events: &[(u64, u64, Timestamp)],
    ) -> Result<usize, TemporalGraphError> {
        // Dry-run validation against a simulated cursor, so a fail-fast
        // rejection cannot leave a partial batch behind.
        let mut sim_last = self.last_t;
        let mut sim_new: HashSet<(u64, u64)> = HashSet::new();
        for &(u, v, t) in events {
            if u == v {
                return Err(TemporalGraphError::InvalidEdge {
                    message: format!("self loop ({u}, {v}, {t})"),
                });
            }
            if t == Timestamp::MAX {
                return Err(TemporalGraphError::InvalidEdge {
                    message: format!("timestamp {t} out of range 1..2^32-1"),
                });
            }
            let watermark = sim_last.max(self.floor + 1);
            if t < watermark {
                return Err(TemporalGraphError::OutOfOrder { t, watermark });
            }
            if t > sim_last {
                sim_new.clear();
                sim_last = t;
            }
            let key = Self::label_key(u, v);
            let dup = if sim_last == self.last_t {
                self.at_last.contains(&key) || !sim_new.insert(key)
            } else {
                !sim_new.insert(key)
            };
            if dup {
                return Err(TemporalGraphError::DuplicateEvent { u, v, t });
            }
        }
        for &(u, v, t) in events {
            self.push_event(u, v, t);
        }
        Ok(events.len())
    }

    /// Publishes every pending event as a fresh immutable snapshot and
    /// returns it.  A no-op (returning the current snapshot) when nothing
    /// is pending.
    ///
    /// Index assembly is linear in the total number of events; batch
    /// appends between publishes to amortise it.
    pub fn publish(&mut self) -> Arc<TemporalGraph> {
        if self.pending == 0 {
            return Arc::clone(&self.snapshot);
        }
        // Appends arrive in non-decreasing `t` but not sorted by `(u, v)`
        // within a timestamp; restore the global `(t, u, v)` order over the
        // dirty suffix only.  Everything before `dirty_from` — in
        // particular the sealed prefix — keeps its position, and with it
        // its `EdgeId`.
        let cut = self.edges.partition_point(|e| e.t < self.dirty_from);
        self.edges[cut..].sort_unstable_by_key(|e| (e.t, e.u, e.v));
        let graph = assemble_graph(self.edges.clone(), self.labels.clone());
        self.snapshot = Arc::new(graph);
        self.pending = 0;
        self.dirty_from = 0;
        Arc::clone(&self.snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TemporalGraphBuilder, TimeWindow};

    fn base() -> TemporalGraph {
        TemporalGraphBuilder::new()
            .with_edges([(0u64, 1u64, 1i64), (1, 2, 2), (0, 2, 3), (2, 3, 3)])
            .build()
            .unwrap()
    }

    #[test]
    fn snapshots_are_immutable_and_publish_is_atomic() {
        let mut live = AppendableGraph::from_graph(base());
        let frozen = live.snapshot();
        live.append(0, 3, 4).unwrap();
        live.append(1, 3, 4).unwrap();
        // Not yet published: the snapshot is unchanged.
        assert_eq!(live.snapshot().num_edges(), 4);
        let fresh = live.publish();
        assert_eq!(frozen.num_edges(), 4);
        assert_eq!(fresh.num_edges(), 6);
        assert_eq!(fresh.tmax(), 4);
        assert_eq!(fresh.edges_at(4).len(), 2);
    }

    #[test]
    fn out_of_order_duplicate_and_self_loop_are_typed_errors() {
        let mut live = AppendableGraph::from_graph(base());
        assert!(matches!(
            live.append(0, 3, 2),
            Err(TemporalGraphError::OutOfOrder { t: 2, watermark: 3 })
        ));
        // (0, 2) already occurs at t = 3 = tmax of the base graph.
        assert!(matches!(
            live.append(2, 0, 3),
            Err(TemporalGraphError::DuplicateEvent { t: 3, .. })
        ));
        assert!(matches!(
            live.append(5, 5, 7),
            Err(TemporalGraphError::InvalidEdge { .. })
        ));
        // Same timestamp as tmax but a new pair: accepted.
        live.append(1, 3, 3).unwrap();
        // Appending it again at the same timestamp duplicates it.
        assert!(matches!(
            live.append(3, 1, 3),
            Err(TemporalGraphError::DuplicateEvent { .. })
        ));
        // Nothing above mutated the published view.
        assert_eq!(live.publish().num_edges(), 5);
    }

    #[test]
    fn batches_apply_all_or_nothing() {
        let mut live = AppendableGraph::from_graph(base());
        let err = live
            .append_batch(&[(0, 3, 4), (1, 3, 5), (0, 1, 4)])
            .unwrap_err();
        assert!(matches!(err, TemporalGraphError::OutOfOrder { .. }));
        assert_eq!(live.pending(), 0);
        assert_eq!(live.last_t(), 3);

        let dup = live.append_batch(&[(0, 3, 4), (3, 0, 4)]).unwrap_err();
        assert!(matches!(dup, TemporalGraphError::DuplicateEvent { .. }));
        assert_eq!(live.pending(), 0);

        assert_eq!(live.append_batch(&[(0, 3, 4), (1, 3, 5)]).unwrap(), 2);
        assert_eq!(live.publish().tmax(), 5);
    }

    #[test]
    fn floor_seals_the_prefix() {
        let mut live = AppendableGraph::from_graph(base());
        live.raise_floor(3);
        assert!(matches!(
            live.append(0, 3, 3),
            Err(TemporalGraphError::OutOfOrder { t: 3, watermark: 4 })
        ));
        live.append(0, 3, 4).unwrap();
        live.raise_floor(2); // never goes down
        assert_eq!(live.floor(), 3);
    }

    #[test]
    fn sealed_edge_ids_are_stable_and_new_vertices_get_fresh_ids() {
        let mut live = AppendableGraph::from_graph(base());
        let before = live.snapshot();
        // A brand-new vertex label smaller than every existing label: the
        // sorted builder would renumber, the appendable layer must not.
        live.append_batch(&[(7, 0, 4), (7, 1, 4)]).unwrap();
        let after = live.publish();
        for (id, e) in before.edges().iter().enumerate() {
            assert_eq!(after.edge(id as u32), e, "sealed edge {id} moved");
        }
        for (id, &l) in before.labels().iter().enumerate() {
            assert_eq!(after.label(id as u32), l, "vertex {id} renumbered");
        }
        assert_eq!(after.num_vertices(), before.num_vertices() + 1);
        assert_eq!(after.num_edges_in(TimeWindow::new(4, 4)), 2);
        // The new snapshot is fully indexed: adjacency sees the new edges.
        let v7 = after.labels().iter().position(|&l| l == 7).unwrap() as u32;
        assert_eq!(after.distinct_degree(v7), 2);
    }

    #[test]
    fn rebuilt_graph_matches_a_from_scratch_build_in_label_space() {
        let mut live = AppendableGraph::from_graph(base());
        let events = [(0u64, 3u64, 4u32), (4, 0, 5), (4, 3, 5)];
        live.append_batch(&events).unwrap();
        let inc = live.publish();

        let scratch = TemporalGraphBuilder::new()
            .with_edges(
                [(0u64, 1u64, 1i64), (1, 2, 2), (0, 2, 3), (2, 3, 3)]
                    .into_iter()
                    .chain(events.iter().map(|&(u, v, t)| (u, v, i64::from(t)))),
            )
            .timestamp_mode(crate::TimestampMode::Raw)
            .build()
            .unwrap();

        let canon = |g: &TemporalGraph| {
            let mut v: Vec<(u64, u64, Timestamp)> = g
                .edges()
                .iter()
                .map(|e| {
                    let (a, b) = (g.label(e.u), g.label(e.v));
                    let (a, b) = if a < b { (a, b) } else { (b, a) };
                    (a, b, e.t)
                })
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(canon(&inc), canon(&scratch));
    }
}
