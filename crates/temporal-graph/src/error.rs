use crate::Timestamp;
use std::fmt;
use std::io;

/// Errors produced while building or loading temporal graphs.
#[derive(Debug)]
pub enum TemporalGraphError {
    /// Underlying I/O failure while reading or writing an edge list.
    Io(io::Error),
    /// A line of an edge-list file could not be parsed.
    Parse {
        /// 1-based line number in the input.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// An edge was rejected by the builder (e.g. a self loop when they are
    /// disallowed, or a non-positive raw timestamp in raw mode).
    InvalidEdge {
        /// Human-readable description of the problem.
        message: String,
    },
    /// The builder produced a graph with no edges.
    EmptyGraph,
    /// An appended event's timestamp precedes the appendable graph's write
    /// watermark ([`crate::AppendableGraph`] requires events in
    /// non-decreasing time order, strictly past the sealed prefix).
    OutOfOrder {
        /// The rejected event timestamp.
        t: Timestamp,
        /// The smallest timestamp the append API currently accepts.
        watermark: Timestamp,
    },
    /// An appended event duplicates an edge occurrence already present at
    /// the same timestamp.
    DuplicateEvent {
        /// First endpoint label of the rejected event.
        u: u64,
        /// Second endpoint label of the rejected event.
        v: u64,
        /// Timestamp of the rejected event.
        t: Timestamp,
    },
}

impl fmt::Display for TemporalGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemporalGraphError::Io(e) => write!(f, "I/O error: {e}"),
            TemporalGraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            TemporalGraphError::InvalidEdge { message } => {
                write!(f, "invalid edge: {message}")
            }
            TemporalGraphError::EmptyGraph => write!(f, "temporal graph has no edges"),
            TemporalGraphError::OutOfOrder { t, watermark } => write!(
                f,
                "out-of-order append at t = {t}: the appendable graph accepts t >= {watermark}"
            ),
            TemporalGraphError::DuplicateEvent { u, v, t } => write!(
                f,
                "duplicate append: edge ({u}, {v}) already occurs at t = {t}"
            ),
        }
    }
}

impl std::error::Error for TemporalGraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TemporalGraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TemporalGraphError {
    fn from(e: io::Error) -> Self {
        TemporalGraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = TemporalGraphError::Parse {
            line: 7,
            message: "expected three fields".into(),
        };
        assert!(e.to_string().contains("line 7"));
        let e = TemporalGraphError::EmptyGraph;
        assert!(e.to_string().contains("no edges"));
        let e = TemporalGraphError::InvalidEdge {
            message: "self loop".into(),
        };
        assert!(e.to_string().contains("self loop"));
        let e = TemporalGraphError::OutOfOrder { t: 3, watermark: 5 };
        assert!(e.to_string().contains("t = 3"));
        assert!(e.to_string().contains(">= 5"));
        let e = TemporalGraphError::DuplicateEvent { u: 1, v: 2, t: 9 };
        assert!(e.to_string().contains("(1, 2)"));
        assert!(e.to_string().contains("t = 9"));
    }

    #[test]
    fn io_error_source() {
        let e: TemporalGraphError = io::Error::new(io::ErrorKind::NotFound, "missing").into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("I/O"));
    }
}
