//! Temporal graph substrate for time-range k-core computation.
//!
//! A *temporal graph* is an undirected graph in which every edge occurrence
//! carries a timestamp: `(u, v, t)`.  This crate provides:
//!
//! * [`TemporalGraph`] — an immutable, index-backed representation with
//!   per-timestamp edge buckets and per-vertex adjacency grouped by distinct
//!   neighbour (each group stores the sorted list of edge occurrences shared
//!   with that neighbour);
//! * [`TemporalGraphBuilder`] — label/timestamp normalisation and validation;
//! * [`AppendableGraph`] — a time-ordered append front over the immutable
//!   representation, publishing `Arc`-swapped snapshots for live ingestion;
//! * [`TimeWindow`] — inclusive `[start, end]` windows used for projections
//!   and queries;
//! * [`loader`] — plain-text edge list reader/writer (SNAP / KONECT style);
//! * [`generator`] — synthetic temporal graph generators used by the
//!   evaluation harness.
//!
//! The representation follows the conventions of *Accelerating K-Core
//! Computation in Temporal Graphs* (EDBT 2026): timestamps are normalised to
//! a continuous range `1..=tmax`, vertices to `0..n`, and multiple edges
//! between the same pair of vertices are allowed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod appendable;
mod builder;
mod error;
pub mod generator;
mod graph;
pub mod loader;
mod window;

pub use appendable::AppendableGraph;
pub use builder::{TemporalGraphBuilder, TimestampMode};
pub use error::TemporalGraphError;
pub use graph::{NeighborGroup, TemporalEdge, TemporalGraph};
pub use window::TimeWindow;

/// Internal vertex identifier: dense indices `0..num_vertices()`.
pub type VertexId = u32;

/// Normalised timestamp. Timestamps are `1..=tmax`; `0` is never a valid
/// timestamp which lets algorithms use it as a sentinel.
pub type Timestamp = u32;

/// Identifier of a temporal edge occurrence (index into [`TemporalGraph::edges`]).
pub type EdgeId = u32;

/// Sentinel timestamp meaning "never" / "no core time" (`+∞` in the paper).
pub const T_INFINITY: Timestamp = Timestamp::MAX;
