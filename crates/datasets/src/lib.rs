//! Scaled dataset profiles, synthetic workloads and query generators for the
//! temporal k-core evaluation.
//!
//! The paper evaluates on fourteen real SNAP/KONECT temporal networks
//! (Table III).  Those files are not redistributable here, so this crate
//! defines *scaled synthetic analogues*: each [`DatasetProfile`] captures the
//! structural knobs that drive the algorithms (vertex count, temporal edge
//! count, number of distinct timestamps, temporal regime) at a laptop-friendly
//! scale, and materialises a concrete [`temporal_graph::TemporalGraph`]
//! with a deterministic seed.  The [`workload`] module generates the query
//! ranges and `k` values of Section VI (percentages of `tmax` and `kmax`,
//! ranges guaranteed to contain at least one temporal k-core).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod profiles;
pub mod stats;
pub mod workload;

pub use profiles::{
    DatasetProfile, TemporalRegime, ALL_PROFILES, FIGURE4_PROFILES, VARYING_PROFILES,
};
pub use stats::DatasetStats;
pub use workload::{
    ArrivalProfile, EventStream, EventStreamConfig, OverloadConfig, OverloadRequest,
    OverloadWorkload, QueryWorkload, WorkloadConfig,
};
