//! Dataset statistics (the paper's Table III).

use static_kcore::{CoreDecomposition, StaticGraph};
use temporal_graph::{TemporalGraph, VertexId};

/// The statistics the paper reports per dataset: `|V|`, `|E|`, the number of
/// distinct timestamps `tmax`, and the maximum core number `kmax` of the
/// de-temporalised graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetStats {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of temporal edges.
    pub num_edges: usize,
    /// Number of distinct timestamps.
    pub tmax: u32,
    /// Maximum core number over all vertices (static k-core decomposition of
    /// the projected graph over the whole time span).
    pub kmax: u32,
}

impl DatasetStats {
    /// Computes the statistics of a temporal graph.
    pub fn compute(graph: &TemporalGraph) -> Self {
        let static_graph = to_static(graph);
        let decomposition = CoreDecomposition::compute(&static_graph);
        Self {
            num_vertices: graph.num_vertices(),
            num_edges: graph.num_edges(),
            tmax: graph.tmax(),
            kmax: decomposition.kmax(),
        }
    }

    /// The default query parameter of the paper's experiments: `k` as a
    /// percentage of `kmax`, never below 2 (a 1-core is every non-isolated
    /// vertex and is not an interesting query).
    pub fn k_for_percent(&self, percent: u32) -> usize {
        (((self.kmax as u64 * u64::from(percent)) + 50) / 100).max(2) as usize
    }

    /// The query-range length used by the experiments: a percentage of the
    /// number of distinct timestamps, at least 1.
    pub fn range_len_for_percent(&self, percent: u32) -> u32 {
        (((u64::from(self.tmax) * u64::from(percent)) + 50) / 100).max(1) as u32
    }
}

/// Collapses a temporal graph into the simple undirected graph over the same
/// vertices, ignoring timestamps (used for `kmax`).
pub fn to_static(graph: &TemporalGraph) -> StaticGraph {
    StaticGraph::from_edges(
        graph.num_vertices(),
        graph
            .edges()
            .iter()
            .map(|e| (e.u as VertexId, e.v as VertexId)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::DatasetProfile;
    use temporal_graph::TemporalGraphBuilder;

    #[test]
    fn computes_simple_statistics() {
        let g = TemporalGraphBuilder::new()
            .with_edges([(0u64, 1u64, 1i64), (1, 2, 2), (0, 2, 3), (2, 3, 3)])
            .build()
            .unwrap();
        let stats = DatasetStats::compute(&g);
        assert_eq!(stats.num_vertices, 4);
        assert_eq!(stats.num_edges, 4);
        assert_eq!(stats.tmax, 3);
        assert_eq!(stats.kmax, 2);
    }

    #[test]
    fn percent_helpers_round_and_clamp() {
        let stats = DatasetStats {
            num_vertices: 10,
            num_edges: 20,
            tmax: 100,
            kmax: 10,
        };
        assert_eq!(stats.k_for_percent(30), 3);
        assert_eq!(stats.k_for_percent(1), 2); // clamped to 2
        assert_eq!(stats.range_len_for_percent(10), 10);
        assert_eq!(stats.range_len_for_percent(0), 1); // clamped to 1
    }

    #[test]
    fn profile_graphs_have_usable_kmax() {
        let profile = DatasetProfile::by_name("CM").unwrap();
        let stats = DatasetStats::compute(&profile.generate());
        assert!(
            stats.kmax >= 5,
            "kmax = {} too small for k sweeps",
            stats.kmax
        );
        assert!(stats.tmax >= 50);
    }
}
