//! Query workload generation (Section VI, "Parameters").
//!
//! The paper evaluates each configuration on 100 random query time ranges of
//! a given length (a percentage of `tmax`), each guaranteed to contain at
//! least one temporal k-core, and reports the average running time.  This
//! module reproduces that protocol with configurable counts and lengths.

use crate::stats::DatasetStats;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use temporal_graph::{TemporalGraph, TimeWindow, Timestamp};
use tkcore::{CountingSink, TimeRangeKCoreQuery};

/// Configuration of a query workload.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Query parameter `k`.
    pub k: usize,
    /// Length of every query range, in timestamps.
    pub range_len: u32,
    /// Number of query ranges to generate.
    pub num_queries: usize,
    /// RNG seed.
    pub seed: u64,
    /// Maximum number of random draws when searching for ranges that contain
    /// at least one temporal k-core before giving up on the guarantee.
    pub max_attempts_per_query: usize,
}

impl WorkloadConfig {
    /// The paper's default parameters for a dataset: `k = 30% kmax`,
    /// range length `10% tmax`, with a configurable number of queries.
    pub fn paper_default(stats: &DatasetStats, num_queries: usize, seed: u64) -> Self {
        Self {
            k: stats.k_for_percent(30),
            range_len: stats.range_len_for_percent(10),
            num_queries,
            seed,
            max_attempts_per_query: 50,
        }
    }
}

/// A set of query time ranges for a fixed `k`, all within a graph's span.
#[derive(Debug, Clone)]
pub struct QueryWorkload {
    /// The query parameter `k` shared by all queries.
    pub k: usize,
    /// The generated query ranges.
    pub ranges: Vec<TimeWindow>,
}

impl QueryWorkload {
    /// Generates a workload for `graph` according to `config`.
    ///
    /// Ranges are drawn uniformly at random within the graph's span; a range
    /// is accepted if the temporal k-core enumeration over it is non-empty
    /// (checked with the result-size-optimal algorithm, which is cheap when
    /// there are no results).  If no accepted range is found within
    /// `max_attempts_per_query` draws, the last candidate is kept so the
    /// workload always has `num_queries` entries.
    pub fn generate(graph: &TemporalGraph, config: &WorkloadConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let tmax = graph.tmax().max(1);
        let len = config.range_len.clamp(1, tmax);
        let mut ranges = Vec::with_capacity(config.num_queries);
        for _ in 0..config.num_queries {
            let mut chosen: Option<TimeWindow> = None;
            let mut last = TimeWindow::new(1, len.min(tmax));
            for _ in 0..config.max_attempts_per_query.max(1) {
                let start = rng.random_range(1..=(tmax - len + 1).max(1)) as Timestamp;
                let candidate = TimeWindow::new(start, (start + len - 1).min(tmax));
                last = candidate;
                if Self::has_result(graph, config.k, candidate) {
                    chosen = Some(candidate);
                    break;
                }
            }
            ranges.push(chosen.unwrap_or(last));
        }
        Self {
            k: config.k,
            ranges,
        }
    }

    fn has_result(graph: &TemporalGraph, k: usize, range: TimeWindow) -> bool {
        let mut sink = CountingSink::default();
        TimeRangeKCoreQuery::new(k, range)
            .expect("workload k >= 1")
            .run_with(graph, tkcore::Algorithm::Enum, &mut sink);
        sink.num_cores > 0
    }

    /// Number of queries in the workload.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// True when the workload has no queries.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Iterates the queries as [`TimeRangeKCoreQuery`] values.
    pub fn queries(&self) -> impl Iterator<Item = TimeRangeKCoreQuery> + '_ {
        self.ranges
            .iter()
            .map(move |&r| TimeRangeKCoreQuery::new(self.k, r).expect("workload k >= 1"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::DatasetProfile;

    #[test]
    fn generates_requested_number_of_queries() {
        let g = DatasetProfile::by_name("FB").unwrap().generate();
        let stats = DatasetStats::compute(&g);
        let config = WorkloadConfig::paper_default(&stats, 5, 7);
        let workload = QueryWorkload::generate(&g, &config);
        assert_eq!(workload.len(), 5);
        assert!(!workload.is_empty());
        assert_eq!(workload.k, config.k);
        for r in &workload.ranges {
            assert!(r.len() <= u64::from(config.range_len));
            assert!(r.end() <= g.tmax());
        }
    }

    #[test]
    fn workload_is_deterministic_for_a_seed() {
        let g = DatasetProfile::by_name("FB").unwrap().generate();
        let stats = DatasetStats::compute(&g);
        let config = WorkloadConfig::paper_default(&stats, 4, 99);
        let a = QueryWorkload::generate(&g, &config);
        let b = QueryWorkload::generate(&g, &config);
        assert_eq!(a.ranges, b.ranges);
    }

    #[test]
    fn most_ranges_contain_a_core() {
        let g = DatasetProfile::by_name("FB").unwrap().generate();
        let stats = DatasetStats::compute(&g);
        let config = WorkloadConfig::paper_default(&stats, 6, 3);
        let workload = QueryWorkload::generate(&g, &config);
        let with_core = workload
            .queries()
            .filter(|q| {
                let mut sink = CountingSink::default();
                q.run_with(&g, tkcore::Algorithm::Enum, &mut sink);
                sink.num_cores > 0
            })
            .count();
        assert!(
            with_core >= workload.len() / 2,
            "only {with_core} queries have results"
        );
    }
}
