//! Query workload generation (Section VI, "Parameters").
//!
//! The paper evaluates each configuration on 100 random query time ranges of
//! a given length (a percentage of `tmax`), each guaranteed to contain at
//! least one temporal k-core, and reports the average running time.  This
//! module reproduces that protocol with configurable counts and lengths.

use crate::stats::DatasetStats;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use temporal_graph::{TemporalGraph, TimeWindow, Timestamp};
use tkcore::{CountingSink, TimeRangeKCoreQuery};

/// Configuration of a query workload.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Query parameter `k`.
    pub k: usize,
    /// Length of every query range, in timestamps.
    pub range_len: u32,
    /// Number of query ranges to generate.
    pub num_queries: usize,
    /// RNG seed.
    pub seed: u64,
    /// Maximum number of random draws when searching for ranges that contain
    /// at least one temporal k-core before giving up on the guarantee.
    pub max_attempts_per_query: usize,
}

impl WorkloadConfig {
    /// The paper's default parameters for a dataset: `k = 30% kmax`,
    /// range length `10% tmax`, with a configurable number of queries.
    pub fn paper_default(stats: &DatasetStats, num_queries: usize, seed: u64) -> Self {
        Self {
            k: stats.k_for_percent(30),
            range_len: stats.range_len_for_percent(10),
            num_queries,
            seed,
            max_attempts_per_query: 50,
        }
    }
}

/// A set of query time ranges for a fixed `k`, all within a graph's span.
#[derive(Debug, Clone)]
pub struct QueryWorkload {
    /// The query parameter `k` shared by all queries.
    pub k: usize,
    /// The generated query ranges.
    pub ranges: Vec<TimeWindow>,
}

impl QueryWorkload {
    /// Generates a workload for `graph` according to `config`.
    ///
    /// Ranges are drawn uniformly at random within the graph's span; a range
    /// is accepted if the temporal k-core enumeration over it is non-empty
    /// (checked with the result-size-optimal algorithm, which is cheap when
    /// there are no results).  If no accepted range is found within
    /// `max_attempts_per_query` draws, the last candidate is kept so the
    /// workload always has `num_queries` entries.
    pub fn generate(graph: &TemporalGraph, config: &WorkloadConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let tmax = graph.tmax().max(1);
        let len = config.range_len.clamp(1, tmax);
        let mut ranges = Vec::with_capacity(config.num_queries);
        for _ in 0..config.num_queries {
            let mut chosen: Option<TimeWindow> = None;
            let mut last = TimeWindow::new(1, len.min(tmax));
            for _ in 0..config.max_attempts_per_query.max(1) {
                let start = rng.random_range(1..=(tmax - len + 1).max(1)) as Timestamp;
                let candidate = TimeWindow::new(start, (start + len - 1).min(tmax));
                last = candidate;
                if Self::has_result(graph, config.k, candidate) {
                    chosen = Some(candidate);
                    break;
                }
            }
            ranges.push(chosen.unwrap_or(last));
        }
        Self {
            k: config.k,
            ranges,
        }
    }

    fn has_result(graph: &TemporalGraph, k: usize, range: TimeWindow) -> bool {
        let mut sink = CountingSink::default();
        TimeRangeKCoreQuery::new(k, range)
            .expect("workload k >= 1")
            .run_with(graph, tkcore::Algorithm::Enum, &mut sink);
        sink.num_cores > 0
    }

    /// Number of queries in the workload.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// True when the workload has no queries.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Iterates the queries as [`TimeRangeKCoreQuery`] values.
    pub fn queries(&self) -> impl Iterator<Item = TimeRangeKCoreQuery> + '_ {
        self.ranges
            .iter()
            .map(move |&r| TimeRangeKCoreQuery::new(self.k, r).expect("workload k >= 1"))
    }
}

/// Arrival shape of a live ingestion stream.
///
/// Drives [`EventStream::generate`]: `Steady` and `Bursty` produce
/// time-ordered streams an appendable graph accepts wholesale, while
/// `OutOfOrderJitter` deliberately perturbs timestamps so a fraction of the
/// events regress behind the watermark — exactly the input the typed
/// append-rejection path exists for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalProfile {
    /// A fixed number of events at every consecutive timestamp.
    Steady {
        /// Events emitted per timestamp tick.
        events_per_tick: usize,
    },
    /// Dense bursts separated by quiet gaps: `burst` events land on one
    /// timestamp, then the clock jumps `quiet_ticks` forward.
    Bursty {
        /// Events emitted in each burst (all on the same timestamp).
        burst: usize,
        /// Empty timestamps between consecutive bursts.
        quiet_ticks: u32,
    },
    /// Steady arrival whose timestamps are each perturbed by up to
    /// `jitter` ticks in either direction, producing occasional
    /// out-of-order events in an otherwise advancing stream.
    OutOfOrderJitter {
        /// Events emitted per nominal timestamp tick.
        events_per_tick: usize,
        /// Maximum perturbation, in ticks, applied to each event.
        jitter: u32,
    },
}

/// Configuration of a generated live event stream.
#[derive(Debug, Clone, Copy)]
pub struct EventStreamConfig {
    /// Number of events to emit.
    pub num_events: usize,
    /// Vertex labels are drawn uniformly from `1..=num_vertices`.
    pub num_vertices: u64,
    /// Every nominal timestamp is strictly greater than this (a base
    /// graph's `tmax`, so the stream is appendable onto it).
    pub start_after: Timestamp,
    /// The arrival shape.
    pub profile: ArrivalProfile,
    /// RNG seed.
    pub seed: u64,
}

/// Deterministic live-ingestion event stream generator.
///
/// Produces `(u, v, t)` label events suitable for
/// `ShardedEngine::absorb` / `CoreService::submit_append` (and for the
/// `tkc ingest` command's file/stdin format, one `u v t` triple per line).
pub struct EventStream;

impl EventStream {
    /// Generates `config.num_events` events after `config.start_after`.
    ///
    /// Within one timestamp the endpoint pairs are rerolled to avoid
    /// duplicate `(u, v, t)` occurrences where possible, so `Steady` and
    /// `Bursty` streams append cleanly; `OutOfOrderJitter` streams keep
    /// their perturbed timestamps and therefore contain events an
    /// appendable graph rejects as out-of-order.
    pub fn generate(config: &EventStreamConfig) -> Vec<(u64, u64, Timestamp)> {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let vertices = config.num_vertices.max(2);
        let mut events = Vec::with_capacity(config.num_events);
        let mut seen = std::collections::HashSet::new();
        let mut tick = config.start_after.saturating_add(1);
        let mut emitted_at_tick = 0usize;
        for _ in 0..config.num_events {
            let (per_tick, advance_by, jitter) = match config.profile {
                ArrivalProfile::Steady { events_per_tick } => (events_per_tick.max(1), 1, 0),
                ArrivalProfile::Bursty { burst, quiet_ticks } => {
                    (burst.max(1), quiet_ticks.saturating_add(1), 0)
                }
                ArrivalProfile::OutOfOrderJitter {
                    events_per_tick,
                    jitter,
                } => (events_per_tick.max(1), 1, jitter),
            };
            if emitted_at_tick >= per_tick {
                tick = tick.saturating_add(advance_by);
                emitted_at_tick = 0;
            }
            let t = if jitter == 0 {
                tick
            } else {
                let offset = rng.random_range(-(jitter as i64)..=jitter as i64);
                (tick as i64 + offset).max(config.start_after as i64 + 1) as Timestamp
            };
            let mut u = rng.random_range(1..=vertices);
            let mut v = rng.random_range(1..=vertices);
            for _ in 0..16 {
                if u != v && seen.insert((u.min(v), u.max(v), t)) {
                    break;
                }
                u = rng.random_range(1..=vertices);
                v = rng.random_range(1..=vertices);
            }
            events.push((u, v, t));
            emitted_at_tick += 1;
        }
        events
    }
}

/// Configuration of an overload serving mix (see [`OverloadWorkload`]).
#[derive(Debug, Clone, Copy)]
pub struct OverloadConfig {
    /// Number of requests in the mix.
    pub num_requests: usize,
    /// Percentage (0–100) of requests submitted on the interactive lane.
    pub interactive_percent: u8,
    /// Query parameter `k` shared by all requests.
    pub k: usize,
    /// Length of every query range, in timestamps.
    pub range_len: u32,
    /// Deadline carried by interactive requests, in milliseconds.
    pub interactive_deadline_ms: u64,
    /// Deadline carried by batch requests (`None` = patient batch traffic
    /// that is never shed, only reordered behind interactive work).
    pub batch_deadline_ms: Option<u64>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        Self {
            num_requests: 64,
            interactive_percent: 25,
            k: 2,
            range_len: 8,
            interactive_deadline_ms: 2_000,
            batch_deadline_ms: Some(50),
            seed: 42,
        }
    }
}

/// One request of an overload mix: a query range plus its serving options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverloadRequest {
    /// Query parameter `k`.
    pub k: usize,
    /// Query time range.
    pub range: TimeWindow,
    /// `true` for the interactive lane, `false` for batch.
    pub interactive: bool,
    /// Relative deadline in milliseconds, if any.
    pub deadline_ms: Option<u64>,
}

/// A deterministic mixed interactive/batch request sequence for driving a
/// `CoreService` (or a `tkc serve` front end) into overload.
///
/// The mix reproduces the serving scenario of the saturation experiments:
/// a minority of latency-sensitive interactive requests with generous
/// deadlines interleaved into a flood of batch requests with tight (or no)
/// deadlines.  Under a saturated queue the expected outcome is that
/// interactive requests still complete within their deadline while
/// deadline-carrying batch requests are shed at dequeue.
#[derive(Debug, Clone)]
pub struct OverloadWorkload {
    /// The generated requests, in submission order.
    pub requests: Vec<OverloadRequest>,
}

impl OverloadWorkload {
    /// Generates a mix over the span `[1, tmax]` according to `config`.
    ///
    /// Interactive requests are spread evenly through the sequence (one
    /// every `100 / interactive_percent` slots) rather than drawn at
    /// random, so every prefix of the mix has roughly the configured lane
    /// ratio — truncating the workload (quick CI modes) keeps it
    /// representative.  Ranges are drawn uniformly within the span.
    pub fn generate(tmax: Timestamp, config: &OverloadConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let tmax = tmax.max(1);
        let len = config.range_len.clamp(1, tmax);
        let percent = u64::from(config.interactive_percent.min(100));
        let mut requests = Vec::with_capacity(config.num_requests);
        let mut interactive_due = 0u64; // fixed-point accumulator, in percent
        for _ in 0..config.num_requests {
            interactive_due += percent;
            let interactive = interactive_due >= 100;
            if interactive {
                interactive_due -= 100;
            }
            let start = rng.random_range(1..=(tmax - len + 1).max(1)) as Timestamp;
            let range = TimeWindow::new(start, (start + len - 1).min(tmax));
            requests.push(OverloadRequest {
                k: config.k,
                range,
                interactive,
                deadline_ms: if interactive {
                    Some(config.interactive_deadline_ms)
                } else {
                    config.batch_deadline_ms
                },
            });
        }
        Self { requests }
    }

    /// Number of requests in the mix.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True when the mix has no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Renders the mix as request lines of the `tkc serve` wire protocol
    /// (line-delimited JSON, one request per line), with the request index
    /// as the client `"id"` so replies can be correlated.
    pub fn wire_lines(&self) -> Vec<String> {
        self.requests
            .iter()
            .enumerate()
            .map(|(id, r)| {
                let lane = if r.interactive { "interactive" } else { "batch" };
                let deadline = r
                    .deadline_ms
                    .map(|ms| format!(r#", "deadline_ms": {ms}"#))
                    .unwrap_or_default();
                format!(
                    r#"{{"op": "query", "id": {id}, "k": {}, "start": {}, "end": {}, "lane": "{lane}"{deadline}, "output": "count"}}"#,
                    r.k,
                    r.range.start(),
                    r.range.end(),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::DatasetProfile;

    #[test]
    fn steady_streams_are_time_ordered_and_start_after_the_base() {
        let config = EventStreamConfig {
            num_events: 200,
            num_vertices: 40,
            start_after: 25,
            profile: ArrivalProfile::Steady { events_per_tick: 5 },
            seed: 11,
        };
        let events = EventStream::generate(&config);
        assert_eq!(events.len(), 200);
        let mut last = 0;
        let mut seen = std::collections::HashSet::new();
        for &(u, v, t) in &events {
            assert!(t > config.start_after);
            assert!(t >= last, "steady streams never regress");
            assert_ne!(u, v);
            assert!(seen.insert((u.min(v), u.max(v), t)), "no duplicates");
            last = t;
        }
        // 5 events per tick over 200 events spans 40 ticks.
        assert_eq!(events.last().unwrap().2, 25 + 40);
        assert_eq!(events, EventStream::generate(&config), "deterministic");
    }

    #[test]
    fn bursty_streams_leave_quiet_gaps() {
        let events = EventStream::generate(&EventStreamConfig {
            num_events: 30,
            num_vertices: 30,
            start_after: 0,
            profile: ArrivalProfile::Bursty {
                burst: 10,
                quiet_ticks: 4,
            },
            seed: 3,
        });
        let stamps: std::collections::BTreeSet<_> = events.iter().map(|e| e.2).collect();
        assert_eq!(stamps.into_iter().collect::<Vec<_>>(), vec![1, 6, 11]);
    }

    #[test]
    fn jittered_streams_contain_out_of_order_events() {
        let events = EventStream::generate(&EventStreamConfig {
            num_events: 300,
            num_vertices: 50,
            start_after: 10,
            profile: ArrivalProfile::OutOfOrderJitter {
                events_per_tick: 3,
                jitter: 4,
            },
            seed: 7,
        });
        assert!(events.iter().all(|&(_, _, t)| t > 10));
        let regressions = events.windows(2).filter(|w| w[1].2 < w[0].2).count();
        assert!(regressions > 0, "jitter must produce out-of-order events");
    }

    #[test]
    fn generates_requested_number_of_queries() {
        let g = DatasetProfile::by_name("FB").unwrap().generate();
        let stats = DatasetStats::compute(&g);
        let config = WorkloadConfig::paper_default(&stats, 5, 7);
        let workload = QueryWorkload::generate(&g, &config);
        assert_eq!(workload.len(), 5);
        assert!(!workload.is_empty());
        assert_eq!(workload.k, config.k);
        for r in &workload.ranges {
            assert!(r.len() <= u64::from(config.range_len));
            assert!(r.end() <= g.tmax());
        }
    }

    #[test]
    fn workload_is_deterministic_for_a_seed() {
        let g = DatasetProfile::by_name("FB").unwrap().generate();
        let stats = DatasetStats::compute(&g);
        let config = WorkloadConfig::paper_default(&stats, 4, 99);
        let a = QueryWorkload::generate(&g, &config);
        let b = QueryWorkload::generate(&g, &config);
        assert_eq!(a.ranges, b.ranges);
    }

    #[test]
    fn overload_mixes_are_deterministic_and_prefix_balanced() {
        let config = OverloadConfig {
            num_requests: 40,
            interactive_percent: 25,
            ..OverloadConfig::default()
        };
        let mix = OverloadWorkload::generate(100, &config);
        assert_eq!(mix.len(), 40);
        assert_eq!(
            mix.requests,
            OverloadWorkload::generate(100, &config).requests,
            "deterministic"
        );
        let interactive = mix.requests.iter().filter(|r| r.interactive).count();
        assert_eq!(interactive, 10, "25% of 40");
        // Even spread: every prefix of 8 holds exactly 2 interactive ones.
        for chunk in mix.requests.chunks(8) {
            assert_eq!(chunk.iter().filter(|r| r.interactive).count(), 2);
        }
        for r in &mix.requests {
            assert!(r.range.end() <= 100);
            let expected = if r.interactive {
                Some(config.interactive_deadline_ms)
            } else {
                config.batch_deadline_ms
            };
            assert_eq!(r.deadline_ms, expected);
        }
    }

    #[test]
    fn overload_wire_lines_speak_the_serve_protocol() {
        let mix = OverloadWorkload::generate(
            50,
            &OverloadConfig {
                num_requests: 4,
                interactive_percent: 50,
                batch_deadline_ms: None,
                ..OverloadConfig::default()
            },
        );
        let lines = mix.wire_lines();
        assert_eq!(lines.len(), 4);
        for (id, (line, request)) in lines.iter().zip(&mix.requests).enumerate() {
            assert!(line.starts_with(r#"{"op": "query""#), "{line}");
            assert!(line.contains(&format!(r#""id": {id}"#)), "{line}");
            let lane = if request.interactive {
                "interactive"
            } else {
                "batch"
            };
            assert!(line.contains(&format!(r#""lane": "{lane}""#)), "{line}");
            assert_eq!(line.contains("deadline_ms"), request.interactive, "{line}");
        }
    }

    #[test]
    fn most_ranges_contain_a_core() {
        let g = DatasetProfile::by_name("FB").unwrap().generate();
        let stats = DatasetStats::compute(&g);
        let config = WorkloadConfig::paper_default(&stats, 6, 3);
        let workload = QueryWorkload::generate(&g, &config);
        let with_core = workload
            .queries()
            .filter(|q| {
                let mut sink = CountingSink::default();
                q.run_with(&g, tkcore::Algorithm::Enum, &mut sink);
                sink.num_cores > 0
            })
            .count();
        assert!(
            with_core >= workload.len() / 2,
            "only {with_core} queries have results"
        );
    }
}
