//! Scaled analogues of the paper's fourteen evaluation datasets (Table III).
//!
//! Every [`DatasetProfile`] records the structural knobs that determine the
//! behaviour of the algorithms — number of vertices, number of temporal
//! edges, number of distinct timestamps and the temporal regime — at a scale
//! that runs comfortably on a laptop, and generates a concrete temporal
//! graph deterministically.  The real datasets can still be used by loading
//! them with [`temporal_graph::loader`] and bypassing the profiles.

use temporal_graph::{generator, TemporalGraph};

/// The broad temporal shape of a dataset, which is what drives the relative
/// behaviour of the algorithms in the paper's experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TemporalRegime {
    /// Sparse interaction networks with many distinct timestamps and bursty
    /// community activity (FB, BO, CM, MC, MO, AU, LR analogues).
    Bursty,
    /// Communication networks where activity accumulates around hubs
    /// (EM, EN, SU, WT analogues).
    Accumulating,
    /// Datasets with very few distinct timestamps relative to their edge
    /// count — near-snapshot graphs (WK, PL, YT analogues).
    FewTimestamps,
}

/// A scaled synthetic analogue of one of the paper's datasets.
#[derive(Debug, Clone, Copy)]
pub struct DatasetProfile {
    /// Short name used in figures (matches the paper's abbreviations).
    pub name: &'static str,
    /// Full name of the original dataset this profile mirrors.
    pub paper_dataset: &'static str,
    /// Number of vertices of the synthetic analogue.
    pub num_vertices: usize,
    /// Number of temporal edges of the synthetic analogue.
    pub num_edges: usize,
    /// Number of distinct timestamps of the synthetic analogue.
    pub num_timestamps: u32,
    /// Temporal regime controlling the generator used.
    pub regime: TemporalRegime,
}

/// All fourteen dataset analogues, in the order of the paper's Table III.
pub const ALL_PROFILES: &[DatasetProfile] = &[
    DatasetProfile {
        name: "FB",
        paper_dataset: "FB-Forum",
        num_vertices: 200,
        num_edges: 1_500,
        num_timestamps: 300,
        regime: TemporalRegime::Bursty,
    },
    DatasetProfile {
        name: "BO",
        paper_dataset: "BitcoinOtc",
        num_vertices: 400,
        num_edges: 1_600,
        num_timestamps: 320,
        regime: TemporalRegime::Bursty,
    },
    DatasetProfile {
        name: "CM",
        paper_dataset: "CollegeMsg",
        num_vertices: 250,
        num_edges: 2_500,
        num_timestamps: 400,
        regime: TemporalRegime::Bursty,
    },
    DatasetProfile {
        name: "EM",
        paper_dataset: "Email",
        num_vertices: 150,
        num_edges: 6_000,
        num_timestamps: 500,
        regime: TemporalRegime::Accumulating,
    },
    DatasetProfile {
        name: "MC",
        paper_dataset: "Mooc",
        num_vertices: 500,
        num_edges: 6_000,
        num_timestamps: 600,
        regime: TemporalRegime::Bursty,
    },
    DatasetProfile {
        name: "MO",
        paper_dataset: "MathOverflow",
        num_vertices: 800,
        num_edges: 7_000,
        num_timestamps: 700,
        regime: TemporalRegime::Bursty,
    },
    DatasetProfile {
        name: "AU",
        paper_dataset: "AskUbuntu",
        num_vertices: 1_500,
        num_edges: 9_000,
        num_timestamps: 800,
        regime: TemporalRegime::Bursty,
    },
    DatasetProfile {
        name: "LR",
        paper_dataset: "Lkml-reply",
        num_vertices: 1_000,
        num_edges: 10_000,
        num_timestamps: 800,
        regime: TemporalRegime::Bursty,
    },
    DatasetProfile {
        name: "EN",
        paper_dataset: "Enron",
        num_vertices: 1_000,
        num_edges: 11_000,
        num_timestamps: 400,
        regime: TemporalRegime::Accumulating,
    },
    DatasetProfile {
        name: "SU",
        paper_dataset: "SuperUser",
        num_vertices: 1_800,
        num_edges: 12_000,
        num_timestamps: 1_000,
        regime: TemporalRegime::Accumulating,
    },
    DatasetProfile {
        name: "WT",
        paper_dataset: "WikiTalk",
        num_vertices: 3_000,
        num_edges: 15_000,
        num_timestamps: 1_200,
        regime: TemporalRegime::Accumulating,
    },
    DatasetProfile {
        name: "WK",
        paper_dataset: "Wikipedia",
        num_vertices: 800,
        num_edges: 15_000,
        num_timestamps: 60,
        regime: TemporalRegime::FewTimestamps,
    },
    DatasetProfile {
        name: "PL",
        paper_dataset: "ProsperLoans",
        num_vertices: 700,
        num_edges: 18_000,
        num_timestamps: 30,
        regime: TemporalRegime::FewTimestamps,
    },
    DatasetProfile {
        name: "YT",
        paper_dataset: "Youtube",
        num_vertices: 3_000,
        num_edges: 20_000,
        num_timestamps: 12,
        regime: TemporalRegime::FewTimestamps,
    },
];

/// The seven representative datasets of Figure 4 (CM EM MC LR EN SU WT).
pub const FIGURE4_PROFILES: &[&str] = &["CM", "EM", "MC", "LR", "EN", "SU", "WT"];

/// The four datasets used for the varying-k / varying-range experiments
/// (Figures 7, 8, 10 and 11): CollegeMsg, Email, WikiTalk and ProsperLoans.
pub const VARYING_PROFILES: &[&str] = &["CM", "EM", "WT", "PL"];

impl DatasetProfile {
    /// Looks a profile up by its short name.
    pub fn by_name(name: &str) -> Option<&'static DatasetProfile> {
        ALL_PROFILES.iter().find(|p| p.name == name)
    }

    /// Deterministic seed derived from the profile name (FNV-1a).
    pub fn seed(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        hash
    }

    /// Generates the synthetic temporal graph for this profile.
    ///
    /// The generated graph matches the profile's edge count exactly for the
    /// uniform regimes and approximately (background + planted bursts) for
    /// the bursty ones; the number of distinct timestamps is at most
    /// `num_timestamps`.
    pub fn generate(&self) -> TemporalGraph {
        let seed = self.seed();
        match self.regime {
            TemporalRegime::Bursty => {
                // Roughly half of the edges come from planted bursts so that
                // non-trivial temporal k-cores exist throughout the timeline.
                let burst_size = 16;
                let edges_per_burst = (burst_size * (burst_size - 1) / 2) * 6 / 10;
                let num_bursts = (self.num_edges / 2 / edges_per_burst).max(2);
                let config = generator::BurstyConfig {
                    num_vertices: self.num_vertices,
                    background_edges: self.num_edges - num_bursts * edges_per_burst,
                    num_bursts,
                    burst_size,
                    burst_duration: (self.num_timestamps / 20).max(2),
                    burst_density: 0.6,
                    num_timestamps: self.num_timestamps,
                };
                generator::planted_bursty_cores(&config, seed)
            }
            TemporalRegime::Accumulating => {
                // Dense hub-centred activity: preferential attachment plus a
                // layer of bursts to create time-local cores.
                let pa_edges_per_vertex = (self.num_edges / (2 * self.num_vertices)).clamp(2, 8);
                let pa = generator::preferential_attachment(
                    self.num_vertices,
                    pa_edges_per_vertex,
                    self.num_timestamps,
                    seed,
                );
                // Communication datasets are *dense inside a window*: bursts
                // are larger and denser than in the sparse-interaction
                // regime, so that short query windows still contain k-cores
                // at 30–40% of kmax (as they do in the real datasets).
                let burst_size = 20;
                let edges_per_burst = (burst_size * (burst_size - 1) / 2) * 85 / 100;
                let remaining = self
                    .num_edges
                    .saturating_sub(pa.num_edges())
                    .max(edges_per_burst);
                let num_bursts = (remaining / edges_per_burst).max(2);
                let config = generator::BurstyConfig {
                    num_vertices: self.num_vertices,
                    background_edges: remaining.saturating_sub(num_bursts * edges_per_burst),
                    num_bursts,
                    burst_size,
                    burst_duration: (self.num_timestamps / 25).max(2),
                    burst_density: 0.85,
                    num_timestamps: self.num_timestamps,
                };
                let bursts = generator::planted_bursty_cores(&config, seed ^ 0x5eed);
                merge(&pa, &bursts)
            }
            TemporalRegime::FewTimestamps => {
                // Snapshot-style datasets: very few distinct timestamps, but
                // (like the real WK/PL/YT graphs) they contain dense
                // communities that form k-cores even inside one or two
                // timestamps.  Plant those communities explicitly; the rest
                // of the edges are uniform background.
                let burst_size = 30;
                let edges_per_burst = (burst_size * (burst_size - 1) / 2) / 2;
                let num_bursts = (self.num_edges / 3 / edges_per_burst).max(2);
                let config = generator::BurstyConfig {
                    num_vertices: self.num_vertices,
                    background_edges: self.num_edges - num_bursts * edges_per_burst,
                    num_bursts,
                    burst_size,
                    burst_duration: (self.num_timestamps / 20).max(1),
                    burst_density: 0.5,
                    num_timestamps: self.num_timestamps,
                };
                generator::planted_bursty_cores(&config, seed)
            }
        }
    }
}

/// Merges two temporal graphs (union of their edge multisets, labels kept).
fn merge(a: &TemporalGraph, b: &TemporalGraph) -> TemporalGraph {
    let mut builder = temporal_graph::TemporalGraphBuilder::new()
        .timestamp_mode(temporal_graph::TimestampMode::Raw);
    for e in a.edges() {
        builder = builder.add_edge(a.label(e.u), a.label(e.v), i64::from(e.t));
    }
    for e in b.edges() {
        builder = builder.add_edge(b.label(e.u), b.label(e.v), i64::from(e.t));
    }
    builder.build().expect("merged graph is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_have_unique_names() {
        let mut names: Vec<&str> = ALL_PROFILES.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ALL_PROFILES.len());
        assert_eq!(ALL_PROFILES.len(), 14);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(
            DatasetProfile::by_name("CM").unwrap().paper_dataset,
            "CollegeMsg"
        );
        assert!(DatasetProfile::by_name("nope").is_none());
        for name in FIGURE4_PROFILES.iter().chain(VARYING_PROFILES) {
            assert!(DatasetProfile::by_name(name).is_some(), "{name}");
        }
    }

    #[test]
    fn generation_is_deterministic_and_roughly_sized() {
        for profile in ALL_PROFILES.iter().filter(|p| p.num_edges <= 6_000) {
            let g1 = profile.generate();
            let g2 = profile.generate();
            assert_eq!(g1.num_edges(), g2.num_edges(), "{}", profile.name);
            assert_eq!(g1.edges(), g2.edges(), "{}", profile.name);
            assert!(g1.num_vertices() <= profile.num_vertices);
            assert!(g1.tmax() <= profile.num_timestamps);
            // within a factor of two of the requested edge count
            assert!(g1.num_edges() >= profile.num_edges / 2, "{}", profile.name);
            assert!(g1.num_edges() <= profile.num_edges * 2, "{}", profile.name);
        }
    }

    #[test]
    fn few_timestamp_profiles_compress_time() {
        let p = DatasetProfile::by_name("YT").unwrap();
        let g = p.generate();
        assert!(g.tmax() <= 12);
        assert!(g.num_edges() >= 10_000);
    }

    #[test]
    fn seeds_differ_between_profiles() {
        let a = DatasetProfile::by_name("CM").unwrap().seed();
        let b = DatasetProfile::by_name("EM").unwrap().seed();
        assert_ne!(a, b);
    }
}
