//! Criterion bench for the precomputation phase in isolation: building the
//! vertex core time index and the edge core window skyline (Algorithm 2),
//! whose `O(|VCT|·deg_avg)` cost the paper contrasts with the result size
//! in Figure 4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tkc_datasets::{DatasetProfile, DatasetStats};
use tkcore::{EdgeCoreSkyline, VertexCoreTimeIndex};

fn bench_coretime(c: &mut Criterion) {
    let mut group = c.benchmark_group("coretime_phase");
    group.sample_size(10);

    for name in ["FB", "CM", "EM"] {
        let profile = DatasetProfile::by_name(name).expect("profile");
        let graph = profile.generate();
        let stats = DatasetStats::compute(&graph);
        let k = stats.k_for_percent(30);
        let range = graph.span();

        group.bench_with_input(BenchmarkId::new("vct_index", name), &graph, |b, g| {
            b.iter(|| black_box(VertexCoreTimeIndex::build(g, k, range).size()));
        });
        group.bench_with_input(BenchmarkId::new("edge_skyline", name), &graph, |b, g| {
            b.iter(|| black_box(EdgeCoreSkyline::build(g, k, range).total_windows()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_coretime);
criterion_main!(benches);
