//! Bench for the cached batch-query engine: cold per-query execution
//! (skyline rebuilt from scratch for every query, as the one-shot
//! `TimeRangeKCoreQuery` API does) versus warm batched execution through
//! `QueryEngine` (one span-wide skyline per `k`, restricted per query and
//! fanned across threads).  The warm rows amortise the CoreTime phase to
//! ~zero, which is the acceptance target of this subsystem on the EM
//! profile.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tkc_datasets::{DatasetProfile, DatasetStats, QueryWorkload, WorkloadConfig};
use tkcore::{Algorithm, CountingSink, QueryEngine, TimeRangeKCoreQuery};

fn bench_batch_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_engine");
    group.sample_size(10);

    for name in ["EM", "CM"] {
        let profile = DatasetProfile::by_name(name).expect("profile");
        let graph = profile.generate();
        let stats = DatasetStats::compute(&graph);
        let config = WorkloadConfig {
            num_queries: 16,
            ..WorkloadConfig::paper_default(&stats, 16, 0xBA7C ^ profile.seed())
        };
        let workload = QueryWorkload::generate(&graph, &config);
        let queries: Vec<TimeRangeKCoreQuery> = workload.queries().collect();

        group.bench_with_input(BenchmarkId::new("cold_per_query", name), &graph, |b, g| {
            b.iter(|| {
                let mut total = 0u64;
                for query in &queries {
                    let mut sink = CountingSink::default();
                    query.run_with(g, Algorithm::Enum, &mut sink);
                    total += sink.num_cores;
                }
                black_box(total)
            });
        });

        let engine = QueryEngine::new(graph.clone());
        engine.warm(workload.k);
        group.bench_with_input(BenchmarkId::new("warm_batched", name), &engine, |b, eng| {
            b.iter(|| {
                let (_, batch) = eng.run_batch(&queries).expect("valid workload");
                black_box(batch.total_cores)
            });
        });

        let sequential = QueryEngine::with_config(
            graph.clone(),
            tkcore::EngineConfig {
                num_threads: 1,
                ..tkcore::EngineConfig::default()
            },
        );
        sequential.warm(workload.k);
        group.bench_with_input(
            BenchmarkId::new("warm_sequential", name),
            &sequential,
            |b, eng| {
                b.iter(|| {
                    let (_, batch) = eng.run_batch(&queries).expect("valid workload");
                    black_box(batch.total_cores)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_batch_engine);
criterion_main!(benches);
