//! Bench for the time-interval sharded engine: span-wide cold index builds
//! versus per-shard builds, and warm batched execution through
//! `ShardedEngine` versus `QueryEngine`.  The per-shard build rows must not
//! exceed the span-wide ones (shard skylines drop every cut-crossing
//! window, so the total sweep work shrinks), and short windows served from
//! warm shard caches skip the untouched shards entirely.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tkc_datasets::{DatasetProfile, DatasetStats, QueryWorkload, WorkloadConfig};
use tkcore::{EdgeCoreSkyline, QueryEngine, ShardPlan, ShardedEngine, TimeRangeKCoreQuery};

const SHARDS: usize = 4;

fn bench_sharded_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded_engine");
    group.sample_size(10);

    for name in ["EM", "CM"] {
        let profile = DatasetProfile::by_name(name).expect("profile");
        let graph = profile.generate();
        let stats = DatasetStats::compute(&graph);
        let config = WorkloadConfig {
            num_queries: 16,
            ..WorkloadConfig::paper_default(&stats, 16, 0x5AAD ^ profile.seed())
        };
        let workload = QueryWorkload::generate(&graph, &config);
        let queries: Vec<TimeRangeKCoreQuery> = workload.queries().collect();
        let k = workload.k;

        group.bench_with_input(BenchmarkId::new("span_cold_build", name), &graph, |b, g| {
            b.iter(|| black_box(EdgeCoreSkyline::build(g, k, g.span()).total_windows()));
        });

        let shards = ShardPlan::FixedCount(SHARDS)
            .resolve(&graph)
            .expect("fixed-count plan resolves");
        group.bench_with_input(
            BenchmarkId::new("shard_cold_builds", name),
            &graph,
            |b, g| {
                b.iter(|| {
                    let mut windows = 0usize;
                    for &shard in &shards {
                        windows += EdgeCoreSkyline::build(g, k, shard).total_windows();
                    }
                    black_box(windows)
                });
            },
        );

        let span_engine = QueryEngine::new(graph.clone());
        span_engine.warm(k);
        group.bench_with_input(
            BenchmarkId::new("warm_span_batch", name),
            &span_engine,
            |b, eng| {
                b.iter(|| {
                    let (_, batch) = eng.run_batch(&queries).expect("valid workload");
                    black_box(batch.total_cores)
                });
            },
        );

        let sharded = ShardedEngine::new(graph.clone(), ShardPlan::FixedCount(SHARDS))
            .expect("fixed-count plan resolves");
        sharded.warm(k);
        group.bench_with_input(
            BenchmarkId::new("warm_sharded_batch", name),
            &sharded,
            |b, eng| {
                b.iter(|| {
                    let (_, batch) = eng.run_batch(&queries).expect("valid workload");
                    black_box(batch.total_cores)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sharded_engine);
criterion_main!(benches);
