//! Bench for the time-interval sharded engine: span-wide cold index builds
//! versus per-shard builds, warm batched execution through `ShardedEngine`
//! versus `QueryEngine`, and the boundary-stitch index versus the transient
//! merged-skyline pass on boundary-spanning workloads.  The per-shard build
//! rows must not exceed the span-wide ones (shard skylines drop every
//! cut-crossing window, so the total sweep work shrinks); short windows
//! served from warm shard caches skip the untouched shards entirely; and
//! the warm stitched spanning batch must beat the transient rebuild, which
//! pays one CoreTime sweep per spanning query.
//!
//! Set `TKC_BENCH_QUICK=1` to run a reduced configuration (fewer samples
//! and queries) as an executor-regression smoke in CI.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tkc_datasets::{DatasetProfile, DatasetStats, QueryWorkload, WorkloadConfig};
use tkcore::{
    EdgeCoreSkyline, EngineConfig, QueryEngine, ShardPlan, ShardedEngine, TimeRangeKCoreQuery,
};

const SHARDS: usize = 4;

fn quick() -> bool {
    std::env::var_os("TKC_BENCH_QUICK").is_some()
}

fn bench_sharded_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded_engine");
    group.sample_size(if quick() { 2 } else { 10 });
    let num_queries = if quick() { 6 } else { 16 };

    for name in ["EM", "CM"] {
        let profile = DatasetProfile::by_name(name).expect("profile");
        let graph = profile.generate();
        let stats = DatasetStats::compute(&graph);
        let config = WorkloadConfig {
            num_queries,
            ..WorkloadConfig::paper_default(&stats, num_queries, 0x5AAD ^ profile.seed())
        };
        let workload = QueryWorkload::generate(&graph, &config);
        let queries: Vec<TimeRangeKCoreQuery> = workload.queries().collect();
        let k = workload.k;

        group.bench_with_input(BenchmarkId::new("span_cold_build", name), &graph, |b, g| {
            b.iter(|| black_box(EdgeCoreSkyline::build(g, k, g.span()).total_windows()));
        });

        let shards = ShardPlan::FixedCount(SHARDS)
            .resolve(&graph)
            .expect("fixed-count plan resolves");
        group.bench_with_input(
            BenchmarkId::new("shard_cold_builds", name),
            &graph,
            |b, g| {
                b.iter(|| {
                    let mut windows = 0usize;
                    for &shard in &shards {
                        windows += EdgeCoreSkyline::build(g, k, shard).total_windows();
                    }
                    black_box(windows)
                });
            },
        );

        let span_engine = QueryEngine::new(graph.clone());
        span_engine.warm(k);
        group.bench_with_input(
            BenchmarkId::new("warm_span_batch", name),
            &span_engine,
            |b, eng| {
                b.iter(|| {
                    let (_, batch) = eng.run_batch(&queries).expect("valid workload");
                    black_box(batch.total_cores)
                });
            },
        );

        let sharded = ShardedEngine::new(graph.clone(), ShardPlan::FixedCount(SHARDS))
            .expect("fixed-count plan resolves");
        sharded.warm(k);
        group.bench_with_input(
            BenchmarkId::new("warm_sharded_batch", name),
            &sharded,
            |b, eng| {
                b.iter(|| {
                    let (_, batch) = eng.run_batch(&queries).expect("valid workload");
                    black_box(batch.total_cores)
                });
            },
        );

        // Boundary-spanning workload: every query crosses a shard cut, so
        // the boundary pass dominates.  The stitched engine answers from
        // the cached cut-crossing windows; the transient engine re-sweeps
        // the merged sub-window per query (the pre-stitch behavior).
        let spanning = tkc_bench::spanning_workload(&graph, k, SHARDS, num_queries);
        let stitched = ShardedEngine::new(graph.clone(), ShardPlan::FixedCount(SHARDS))
            .expect("fixed-count plan resolves");
        stitched.warm(k);
        let _ = stitched
            .run_batch(&spanning)
            .expect("warm the stitch cache");
        group.bench_with_input(
            BenchmarkId::new("spanning_warm_stitched", name),
            &stitched,
            |b, eng| {
                b.iter(|| {
                    let (_, batch) = eng.run_batch(&spanning).expect("valid workload");
                    black_box(batch.total_cores)
                });
            },
        );

        let transient = ShardedEngine::with_config(
            graph.clone(),
            ShardPlan::FixedCount(SHARDS),
            EngineConfig {
                boundary_cache_entries: 0,
                ..EngineConfig::default()
            },
        )
        .expect("fixed-count plan resolves");
        transient.warm(k);
        group.bench_with_input(
            BenchmarkId::new("spanning_warm_transient", name),
            &transient,
            |b, eng| {
                b.iter(|| {
                    let (_, batch) = eng.run_batch(&spanning).expect("valid workload");
                    black_box(batch.total_cores)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sharded_engine);
criterion_main!(benches);
