//! Criterion bench for Figure 6: the four algorithms (OTCD, CoreTime,
//! EnumBase, Enum) on representative dataset analogues at the paper's
//! default parameters (k = 30% kmax, range = 10% tmax).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tkc_datasets::{DatasetProfile, DatasetStats, QueryWorkload, WorkloadConfig};
use tkcore::{Algorithm, CountingSink, EdgeCoreSkyline, TimeRangeKCoreQuery};

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_algorithms");
    group.sample_size(10);

    for name in ["FB", "CM", "EM", "PL"] {
        let profile = DatasetProfile::by_name(name).expect("profile");
        let graph = profile.generate();
        let stats = DatasetStats::compute(&graph);
        let config = WorkloadConfig::paper_default(&stats, 1, 42);
        let workload = QueryWorkload::generate(&graph, &config);
        let range = workload.ranges[0];
        let k = workload.k;
        let query = TimeRangeKCoreQuery::new(k, range).expect("workload k >= 1");

        group.bench_with_input(BenchmarkId::new("CoreTime", name), &graph, |b, g| {
            b.iter(|| black_box(EdgeCoreSkyline::build(g, k, range)));
        });
        for algo in [Algorithm::Enum, Algorithm::EnumBase, Algorithm::Otcd] {
            group.bench_with_input(BenchmarkId::new(algo.name(), name), &graph, |b, g| {
                b.iter(|| {
                    let mut sink = CountingSink::default();
                    black_box(query.run_with(g, algo, &mut sink));
                    black_box(sink.total_edges)
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
