//! Criterion bench for the substrates: temporal graph construction and
//! static core decomposition (used for the `kmax` column of Table III).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use static_kcore::{CoreDecomposition, StaticGraph};
use std::hint::black_box;
use temporal_graph::generator;
use tkc_datasets::DatasetProfile;

fn bench_substrates(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates");
    group.sample_size(10);

    group.bench_function("generate_uniform_20k_edges", |b| {
        b.iter(|| black_box(generator::uniform_random(2_000, 20_000, 1_000, 7)).num_edges());
    });

    for name in ["CM", "WT"] {
        let profile = DatasetProfile::by_name(name).expect("profile");
        let graph = profile.generate();
        group.bench_with_input(
            BenchmarkId::new("static_core_decomposition", name),
            &graph,
            |b, g| {
                b.iter(|| {
                    let sg = StaticGraph::from_edges(
                        g.num_vertices(),
                        g.edges().iter().map(|e| (e.u, e.v)),
                    );
                    black_box(CoreDecomposition::compute(&sg).kmax())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("window_projection", name),
            &graph,
            |b, g| {
                let span = g.span();
                b.iter(|| black_box(g.num_edges_in(span)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);
