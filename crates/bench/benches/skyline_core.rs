//! Bench for the CSR skyline primitives themselves, below the engine
//! layer: the span-wide build sweep (one flat window vector plus a `u32`
//! offset array, counting-sort scattered from the emission stream), the
//! binary-search `restrict_with` slice through a recycled scratch pool
//! (the allocation-free warm path), the parallel 4-shard cold build
//! through `ShardedEngine::warm`, and the boundary compose paid by warm
//! transient spanning queries.
//!
//! Set `TKC_BENCH_QUICK=1` to run a reduced configuration (fewer samples
//! and queries) as a layout-regression smoke in CI.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tkc_datasets::{DatasetProfile, DatasetStats, QueryWorkload, WorkloadConfig};
use tkcore::{
    EdgeCoreSkyline, EngineConfig, ShardPlan, ShardedEngine, SkylineScratch, TimeRangeKCoreQuery,
};

const SHARDS: usize = 4;

fn quick() -> bool {
    std::env::var_os("TKC_BENCH_QUICK").is_some()
}

fn bench_skyline_core(c: &mut Criterion) {
    let mut group = c.benchmark_group("skyline_core");
    group.sample_size(if quick() { 2 } else { 10 });
    let num_queries = if quick() { 6 } else { 16 };

    for name in ["EM", "CM"] {
        let profile = DatasetProfile::by_name(name).expect("profile");
        let graph = profile.generate();
        let stats = DatasetStats::compute(&graph);
        let config = WorkloadConfig {
            num_queries,
            ..WorkloadConfig::paper_default(&stats, num_queries, 0xC5A1 ^ profile.seed())
        };
        let workload = QueryWorkload::generate(&graph, &config);
        let queries: Vec<TimeRangeKCoreQuery> = workload.queries().collect();
        let k = workload.k;

        group.bench_with_input(BenchmarkId::new("csr_build", name), &graph, |b, g| {
            b.iter(|| black_box(EdgeCoreSkyline::build(g, k, g.span()).total_windows()));
        });

        let span_index = EdgeCoreSkyline::build(&graph, k, graph.span());
        let mut scratch = SkylineScratch::default();
        group.bench_with_input(
            BenchmarkId::new("flat_restrict", name),
            &span_index,
            |b, index| {
                b.iter(|| {
                    let mut windows = 0usize;
                    for query in &queries {
                        let restricted = index.restrict_with(&graph, query.range(), &mut scratch);
                        windows += restricted.total_windows();
                        scratch.recycle(restricted);
                    }
                    black_box(windows)
                });
            },
        );

        // Cold 4-shard build through the engine's pool: every iteration
        // drops the caches so `warm` rebuilds all shards.
        let pooled = ShardedEngine::new(graph.clone(), ShardPlan::FixedCount(SHARDS))
            .expect("fixed-count plan resolves");
        group.bench_with_input(
            BenchmarkId::new("parallel_cold_build", name),
            &pooled,
            |b, eng| {
                b.iter(|| {
                    eng.clear_cache();
                    black_box(eng.warm(k))
                });
            },
        );

        // Boundary compose: warm transient spanning queries pay one
        // merged-window composition each (no stitch cache to hide it).
        let spanning = tkc_bench::spanning_workload(&graph, k, SHARDS, num_queries);
        let transient = ShardedEngine::with_config(
            graph.clone(),
            ShardPlan::FixedCount(SHARDS),
            EngineConfig {
                boundary_cache_entries: 0,
                ..EngineConfig::default()
            },
        )
        .expect("fixed-count plan resolves");
        transient.warm(k);
        group.bench_with_input(
            BenchmarkId::new("spanning_compose", name),
            &transient,
            |b, eng| {
                b.iter(|| {
                    let (_, batch) = eng.run_batch(&spanning).expect("valid workload");
                    black_box(batch.total_cores)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_skyline_core);
criterion_main!(benches);
