//! Criterion bench for Figure 8: running time of Enum(+CoreTime) and OTCD
//! while varying the query range between 5% and 40% of tmax (CollegeMsg
//! analogue).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tkc_datasets::{DatasetProfile, DatasetStats};
use tkcore::{Algorithm, CountingSink, TimeRangeKCoreQuery};

fn bench_vary_range(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_vary_range");
    group.sample_size(10);

    let profile = DatasetProfile::by_name("CM").expect("profile");
    let graph = profile.generate();
    let stats = DatasetStats::compute(&graph);
    let k = stats.k_for_percent(30);

    for percent in [5u32, 10, 20, 40] {
        let len = stats.range_len_for_percent(percent).min(graph.tmax());
        let range = temporal_graph::TimeWindow::new(1, len);
        let query = TimeRangeKCoreQuery::new(k, range).expect("workload k >= 1");
        for algo in [Algorithm::Enum, Algorithm::Otcd] {
            group.bench_with_input(
                BenchmarkId::new(algo.name(), format!("range={percent}%")),
                &graph,
                |b, g| {
                    b.iter(|| {
                        let mut sink = CountingSink::default();
                        black_box(query.run_with(g, algo, &mut sink));
                        black_box(sink.num_cores)
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_vary_range);
criterion_main!(benches);
