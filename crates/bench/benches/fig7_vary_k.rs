//! Criterion bench for Figure 7: running time of Enum(+CoreTime) and OTCD
//! while varying k between 10% and 40% of kmax (CollegeMsg analogue).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tkc_datasets::{DatasetProfile, DatasetStats};
use tkcore::{Algorithm, CountingSink, TimeRangeKCoreQuery};

fn bench_vary_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_vary_k");
    group.sample_size(10);

    let profile = DatasetProfile::by_name("CM").expect("profile");
    let graph = profile.generate();
    let stats = DatasetStats::compute(&graph);
    let len = stats.range_len_for_percent(10).min(graph.tmax());
    let range = temporal_graph::TimeWindow::new(1, len);

    for percent in [10u32, 20, 30, 40] {
        let k = stats.k_for_percent(percent);
        let query = TimeRangeKCoreQuery::new(k, range).expect("workload k >= 1");
        for algo in [Algorithm::Enum, Algorithm::Otcd] {
            group.bench_with_input(
                BenchmarkId::new(algo.name(), format!("k={percent}%")),
                &graph,
                |b, g| {
                    b.iter(|| {
                        let mut sink = CountingSink::default();
                        black_box(query.run_with(g, algo, &mut sink));
                        black_box(sink.num_cores)
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_vary_k);
criterion_main!(benches);
