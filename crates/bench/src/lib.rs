//! Benchmark harness library: shared reporting utilities and workload
//! builders used by the `experiments` binary and the Criterion benches.

#![forbid(unsafe_code)]

pub mod report;

pub use report::{Report, Row};

use tkcore::{ShardPlan, TimeRangeKCoreQuery};

/// Builds a boundary-spanning workload against a `FixedCount(num_shards)`
/// plan: every window straddles one of the resolved shard cuts, so each
/// query exercises the sharded engine's boundary pass.  Uses the *resolved*
/// shard count (`FixedCount` clamps to one shard per timestamp), so short
/// timelines cannot index past the cut list; a plan that resolves to a
/// single shard has no cuts and yields windows around its midpoint instead.
pub fn spanning_workload(
    graph: &temporal_graph::TemporalGraph,
    k: usize,
    num_shards: usize,
    num_queries: usize,
) -> Vec<TimeRangeKCoreQuery> {
    let shards = ShardPlan::FixedCount(num_shards)
        .resolve(graph)
        .expect("fixed-count plan resolves");
    let cuts: Vec<u32> = shards[..shards.len() - 1].iter().map(|s| s.end()).collect();
    let half = (graph.tmax() / (2 * shards.len() as u32)).max(1);
    (0..num_queries)
        .map(|i| {
            let cut = if cuts.is_empty() {
                graph.tmax() / 2
            } else {
                cuts[i % cuts.len()]
            };
            let start = cut.saturating_sub(half).max(1);
            let end = (cut + half).min(graph.tmax());
            TimeRangeKCoreQuery::new(k, temporal_graph::TimeWindow::new(start, end.max(start)))
                .expect("k >= 1")
        })
        .collect()
}
