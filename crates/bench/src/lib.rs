//! Benchmark harness library: shared reporting utilities used by the
//! `experiments` binary and the Criterion benches.

pub mod report;

pub use report::{Report, Row};
