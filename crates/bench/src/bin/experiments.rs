//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation section on the scaled dataset analogues.
//!
//! Usage:
//!
//! ```text
//! cargo run -p tkc-bench --release --bin experiments -- all
//! cargo run -p tkc-bench --release --bin experiments -- fig6 --queries 5
//! cargo run -p tkc-bench --release --bin experiments -- table3 fig4 fig9
//! ```
//!
//! Each experiment prints an aligned text table and writes a CSV under
//! `target/experiments/`.  Absolute numbers differ from the paper (synthetic
//! analogues, different hardware); the shapes — which algorithm wins, how
//! times scale with `k` and with the range length — are the reproduction
//! target and are recorded in EXPERIMENTS.md.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};
use tkc_bench::Report;
use tkc_datasets::{DatasetProfile, DatasetStats, QueryWorkload, WorkloadConfig, ALL_PROFILES};
use tkcore::{Algorithm, CountingSink, FrameworkStats, TimeRangeKCoreQuery};

/// Per-algorithm, per-dataset wall-clock budget.  When the first query of a
/// configuration exceeds it, the remaining queries are skipped and the cell
/// is reported as `TL` (time limit), mirroring the paper's 6-hour cap.
const TIME_LIMIT: Duration = Duration::from_secs(30);

const OUT_DIR: &str = "target/experiments";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiments: Vec<String> = Vec::new();
    let mut num_queries = 3usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--queries" => {
                num_queries = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(num_queries);
                i += 1;
            }
            other => experiments.push(other.to_string()),
        }
        i += 1;
    }
    if experiments.is_empty() || experiments.iter().any(|e| e == "all") {
        experiments = vec![
            "table3", "fig4", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "engine",
            "skyline", "ingest",
        ]
        .into_iter()
        .map(String::from)
        .collect();
    }

    for experiment in &experiments {
        let report = match experiment.as_str() {
            "table3" => table3(),
            "fig4" => fig4(),
            "fig6" => fig6(num_queries),
            "fig7" => fig7(num_queries),
            "fig8" => fig8(num_queries),
            "fig9" => fig9(num_queries),
            "fig10" => fig10(num_queries),
            "fig11" => fig11(num_queries),
            "fig12" => fig12(),
            "engine" => engine_batch(num_queries.max(8)),
            "skyline" => skyline_experiment(num_queries.max(8)),
            "ingest" => ingest_experiment(num_queries.max(6)),
            other => {
                eprintln!(
                    "unknown experiment `{other}` (expected table3, fig4..fig12, engine, \
                     skyline, ingest, all)"
                );
                continue;
            }
        };
        print!("{}", report.to_text());
        println!();
        if let Err(e) = report.save_csv(OUT_DIR, experiment) {
            eprintln!("warning: could not save CSV for {experiment}: {e}");
        }
        // The engine and ingest batches additionally land as checked-in
        // JSON artifacts at the workspace root, so timing regressions show
        // up in review.
        if experiment == "engine" {
            if let Err(e) = report.save_json("BENCH_engine.json") {
                eprintln!("warning: could not save BENCH_engine.json: {e}");
            }
        }
        if experiment == "skyline" {
            if let Err(e) = report.save_json("BENCH_skyline.json") {
                eprintln!("warning: could not save BENCH_skyline.json: {e}");
            }
        }
        if experiment == "ingest" {
            if let Err(e) = report.save_json("BENCH_ingest.json") {
                eprintln!("warning: could not save BENCH_ingest.json: {e}");
            }
        }
    }
}

fn default_params(graph: &temporal_graph::TemporalGraph) -> (DatasetStats, usize, u32) {
    let stats = DatasetStats::compute(graph);
    (
        stats,
        stats.k_for_percent(30),
        stats.range_len_for_percent(10),
    )
}

fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// Table III: dataset statistics.
fn table3() -> Report {
    let mut report = Report::new(
        "Table III: datasets (scaled synthetic analogues)",
        "dataset",
        vec![
            "paper_dataset".into(),
            "|V|".into(),
            "|E|".into(),
            "tmax".into(),
            "kmax".into(),
        ],
    );
    for profile in ALL_PROFILES {
        let graph = profile.generate();
        let stats = DatasetStats::compute(&graph);
        report.push(
            profile.name,
            vec![
                profile.paper_dataset.to_string(),
                stats.num_vertices.to_string(),
                stats.num_edges.to_string(),
                stats.tmax.to_string(),
                stats.kmax.to_string(),
            ],
        );
    }
    report
}

/// Figure 4: |VCT|, |VCT|*deg_avg and |R| at default parameters for the
/// seven representative datasets.
fn fig4() -> Report {
    let mut report = Report::new(
        "Figure 4: |VCT|, |VCT|*deg_avg and |R| (defaults: k=30% kmax, range=10% tmax)",
        "dataset",
        vec![
            "|VCT|".into(),
            "|VCT|*deg_avg".into(),
            "|ECS|".into(),
            "|R| (edges)".into(),
            "R/VCTdeg ratio".into(),
        ],
    );
    for name in tkc_datasets::FIGURE4_PROFILES {
        let profile = DatasetProfile::by_name(name).unwrap();
        let graph = profile.generate();
        let (stats, k, _len) = default_params(&graph);
        // Like the paper, measure on a random query range that contains at
        // least one temporal k-core.
        let config = WorkloadConfig::paper_default(&stats, 1, profile.seed() ^ 0x44);
        let workload = QueryWorkload::generate(&graph, &config);
        let range = workload.ranges[0];
        let fw = FrameworkStats::measure(&graph, k, range);
        let ratio = if fw.vct_times_avg_degree > 0.0 {
            fw.result_size as f64 / fw.vct_times_avg_degree
        } else {
            0.0
        };
        report.push(
            *name,
            vec![
                fw.vct_entries.to_string(),
                format!("{:.0}", fw.vct_times_avg_degree),
                fw.ecs_windows.to_string(),
                fw.result_size.to_string(),
                format!("{ratio:.1}"),
            ],
        );
    }
    report
}

/// Runs every query of a workload with one algorithm, returning the average
/// time, or `None` when the time limit was hit.
fn run_workload(
    graph: &temporal_graph::TemporalGraph,
    workload: &QueryWorkload,
    algorithm: Algorithm,
) -> Option<Duration> {
    let mut total = Duration::ZERO;
    for (i, query) in workload.queries().enumerate() {
        let mut sink = CountingSink::default();
        let t0 = Instant::now();
        query.run_with(graph, algorithm, &mut sink);
        let elapsed = t0.elapsed();
        total += elapsed;
        if i == 0 && elapsed > TIME_LIMIT {
            return None;
        }
    }
    Some(total / workload.len().max(1) as u32)
}

/// Average precomputation (CoreTime) time over a workload.
fn coretime_only(graph: &temporal_graph::TemporalGraph, workload: &QueryWorkload) -> Duration {
    let mut total = Duration::ZERO;
    for query in workload.queries() {
        let t0 = Instant::now();
        let _ = tkcore::EdgeCoreSkyline::build(graph, query.k(), query.range());
        total += t0.elapsed();
    }
    total / workload.len().max(1) as u32
}

/// Figure 6: average running time per dataset for OTCD, CoreTime, EnumBase
/// and Enum at default parameters.
fn fig6(num_queries: usize) -> Report {
    let mut report = Report::new(
        format!("Figure 6: average running time in ms (defaults, {num_queries} queries/dataset)"),
        "dataset",
        vec![
            "OTCD".into(),
            "CoreTime".into(),
            "EnumBase+CoreTime".into(),
            "Enum+CoreTime".into(),
        ],
    );
    for profile in ALL_PROFILES {
        let graph = profile.generate();
        let stats = DatasetStats::compute(&graph);
        let config = WorkloadConfig::paper_default(&stats, num_queries, 0xF166 ^ profile.seed());
        let workload = QueryWorkload::generate(&graph, &config);
        let otcd = run_workload(&graph, &workload, Algorithm::Otcd);
        let coretime = coretime_only(&graph, &workload);
        let enum_base = run_workload(&graph, &workload, Algorithm::EnumBase);
        let enum_final = run_workload(&graph, &workload, Algorithm::Enum);
        let cell = |d: Option<Duration>| d.map(ms).unwrap_or_else(|| "TL".into());
        report.push(
            profile.name,
            vec![cell(otcd), ms(coretime), cell(enum_base), cell(enum_final)],
        );
    }
    report
}

/// One parameter configuration of a sweep: display label, `k`, range length.
type SweepConfig = (String, usize, u32);

/// Shared driver for the varying-k and varying-range figures.
fn varying(
    title: &str,
    num_queries: usize,
    configs: &dyn Fn(&DatasetStats) -> Vec<SweepConfig>,
    count_results: bool,
) -> Report {
    let columns = if count_results {
        vec!["num_cores".into(), "|R| (edges)".into()]
    } else {
        vec![
            "OTCD".into(),
            "EnumBase+CoreTime".into(),
            "Enum+CoreTime".into(),
        ]
    };
    let mut report = Report::new(title, "dataset/param", columns);
    for name in tkc_datasets::VARYING_PROFILES {
        let profile = DatasetProfile::by_name(name).unwrap();
        let graph = profile.generate();
        let stats = DatasetStats::compute(&graph);
        for (label, k, len) in configs(&stats) {
            let config = WorkloadConfig {
                k,
                range_len: len,
                num_queries,
                seed: profile.seed() ^ 0xABCD,
                max_attempts_per_query: 25,
            };
            let workload = QueryWorkload::generate(&graph, &config);
            let row_label = format!("{name} {label}");
            if count_results {
                let mut cores = 0u64;
                let mut edges = 0u64;
                for query in workload.queries() {
                    let mut count = CountingSink::default();
                    query.run_with(&graph, Algorithm::Enum, &mut count);
                    cores += count.num_cores;
                    edges += count.total_edges;
                }
                let n = workload.len().max(1) as u64;
                report.push(
                    row_label,
                    vec![(cores / n).to_string(), (edges / n).to_string()],
                );
            } else {
                let otcd = run_workload(&graph, &workload, Algorithm::Otcd);
                let enum_base = run_workload(&graph, &workload, Algorithm::EnumBase);
                let enum_final = run_workload(&graph, &workload, Algorithm::Enum);
                let cell = |d: Option<Duration>| d.map(ms).unwrap_or_else(|| "TL".into());
                report.push(
                    row_label,
                    vec![cell(otcd), cell(enum_base), cell(enum_final)],
                );
            }
        }
    }
    report
}

fn k_sweep(stats: &DatasetStats) -> Vec<SweepConfig> {
    [10u32, 20, 30, 40]
        .iter()
        .map(|&p| {
            (
                format!("k={p}%kmax"),
                stats.k_for_percent(p),
                stats.range_len_for_percent(10),
            )
        })
        .collect()
}

fn range_sweep(stats: &DatasetStats) -> Vec<SweepConfig> {
    [5u32, 10, 20, 40]
        .iter()
        .map(|&p| {
            (
                format!("range={p}%tmax"),
                stats.k_for_percent(30),
                stats.range_len_for_percent(p),
            )
        })
        .collect()
}

/// Figure 7: running time vs k.
fn fig7(num_queries: usize) -> Report {
    varying(
        "Figure 7: average running time in ms, varying k (10%..40% of kmax)",
        num_queries,
        &k_sweep,
        false,
    )
}

/// Figure 8: running time vs query range length.
fn fig8(num_queries: usize) -> Report {
    varying(
        "Figure 8: average running time in ms, varying range (5%..40% of tmax)",
        num_queries,
        &range_sweep,
        false,
    )
}

/// Figure 9: number of temporal k-cores per dataset at default parameters.
fn fig9(num_queries: usize) -> Report {
    let mut report = Report::new(
        "Figure 9: average number of temporal k-cores (defaults)",
        "dataset",
        vec!["num_cores".into(), "|R| (edges)".into()],
    );
    for profile in ALL_PROFILES {
        let graph = profile.generate();
        let stats = DatasetStats::compute(&graph);
        let config = WorkloadConfig::paper_default(&stats, num_queries, profile.seed() ^ 0x9);
        let workload = QueryWorkload::generate(&graph, &config);
        let mut cores = 0u64;
        let mut edges = 0u64;
        for query in workload.queries() {
            let mut count = CountingSink::default();
            query.run_with(&graph, Algorithm::Enum, &mut count);
            cores += count.num_cores;
            edges += count.total_edges;
        }
        let n = workload.len().max(1) as u64;
        report.push(
            profile.name,
            vec![(cores / n).to_string(), (edges / n).to_string()],
        );
    }
    report
}

/// Figure 10: number of results vs k.
fn fig10(num_queries: usize) -> Report {
    varying(
        "Figure 10: average number of temporal k-cores, varying k",
        num_queries,
        &k_sweep,
        true,
    )
}

/// Figure 11: number of results vs query range length.
fn fig11(num_queries: usize) -> Report {
    varying(
        "Figure 11: average number of temporal k-cores, varying range",
        num_queries,
        &range_sweep,
        true,
    )
}

/// Time-interval shards used by the sharded columns of the engine
/// experiment.
const ENGINE_EXPERIMENT_SHARDS: usize = 4;

/// PR 9 baselines for the warm stitched spanning batch (ms), from the
/// checked-in `BENCH_engine.json` this container produced before the flat
/// CSR storage landed.  The flat layout must not regress them (asserted
/// with a 25% noise allowance).
const WARM_STITCHED_BASELINE_MS: [(&str, f64); 2] = [("EM", 8.915), ("CM", 1.871)];

/// Minimum speedup of the pooled 4-shard cold build over the serial
/// per-shard loop, asserted on EM when the host actually has CPUs to fan
/// out to.  Single-core hosts cannot parallelize, so there the assertion
/// degrades to a fan-out-overhead bound (see `engine_batch`).
const PARALLEL_BUILD_MIN_SPEEDUP: f64 = 1.8;

/// Engine experiment (not in the paper): cold per-query execution versus
/// the cached batch-query engine, on the EM/CM profiles.  The warm column
/// must beat the cold one — the CoreTime phase is amortised to ~zero on
/// cache hits.  The sharded columns compare a span-wide cold index build
/// against building every shard of a 4-shard plan: the sharded build does
/// strictly less total sweep work (cut-crossing windows are dropped), and
/// the peak per-shard skyline memory must be strictly below the span-wide
/// index (asserted, not just reported).  The boundary columns run a
/// batch of boundary-spanning windows warm through the cached stitch index
/// versus the pre-stitch transient-merge path (`boundary_cache_entries =
/// 0`); the stitched batch must be at least 2x faster (asserted) and
/// return identical counts.
///
/// Two columns track the flat-CSR/parallel-build work: "parallel cold
/// build" warms the same 4-shard plan through `ShardedEngine::warm`, which
/// fans the independent shard builds across the engine's pool — on a
/// multi-core host this must be at least 1.8x faster than the serial
/// per-shard loop on EM (on a single-core host, where fanning out buys
/// nothing, it must instead stay within 25% of the serial loop, bounding
/// the fan-out overhead); "flat restrict / query" slices the span-wide CSR
/// index down to each workload window through one recycled scratch — the
/// allocation-free warm path — and the warm stitched spanning batch is
/// asserted to be no worse than the PR 9 nested-layout baseline.
fn engine_batch(num_queries: usize) -> Report {
    let mut report = Report::new(
        format!(
            "Engine: cold per-query vs cached batch vs {ENGINE_EXPERIMENT_SHARDS}-shard \
             execution in ms ({num_queries} queries)"
        ),
        "dataset",
        vec![
            "cold per-query".into(),
            "engine batch 1 (builds index)".into(),
            "engine batch warm".into(),
            "warm speedup".into(),
            "cache hits".into(),
            "span cold build".into(),
            "flat restrict / query (us)".into(),
            "sharded cold build".into(),
            "parallel cold build".into(),
            "parallel build speedup".into(),
            "peak shard mem / span mem".into(),
            "spanning warm transient".into(),
            "spanning warm stitched".into(),
            "stitch speedup".into(),
        ],
    );
    for name in ["EM", "CM"] {
        let profile = DatasetProfile::by_name(name).expect("profile");
        let graph = profile.generate();
        let stats = DatasetStats::compute(&graph);
        let config = WorkloadConfig::paper_default(&stats, num_queries, profile.seed() ^ 0xE61E);
        let workload = QueryWorkload::generate(&graph, &config);
        let queries: Vec<TimeRangeKCoreQuery> = workload.queries().collect();

        let t0 = Instant::now();
        let mut cold_cores = 0u64;
        for query in &queries {
            let mut sink = CountingSink::default();
            query.run_with(&graph, Algorithm::Enum, &mut sink);
            cold_cores += sink.num_cores;
        }
        let cold = t0.elapsed();

        let engine = tkcore::QueryEngine::new(graph.clone());
        let t1 = Instant::now();
        let (_, first) = engine
            .run_batch(&queries)
            .expect("workload queries are valid");
        let first_time = t1.elapsed();
        let t2 = Instant::now();
        let (_, warm) = engine
            .run_batch(&queries)
            .expect("workload queries are valid");
        let warm_time = t2.elapsed();
        assert_eq!(
            cold_cores, first.total_cores,
            "cold/warm result mismatch on {name}"
        );
        assert_eq!(
            cold_cores, warm.total_cores,
            "cold/warm result mismatch on {name}"
        );

        // Sharded comparison: one span-wide cold index build versus building
        // every shard of the plan for the same k.
        let k = workload.k;
        let t3 = Instant::now();
        let span_index = tkcore::EdgeCoreSkyline::build(&graph, k, graph.span());
        let span_build = t3.elapsed();
        let span_bytes = span_index.memory_bytes();

        // Flat restrict: slice the span-wide CSR index down to each
        // workload window through one recycled scratch pool — after the
        // first iteration every restriction reuses the same two buffers,
        // so this times the allocation-free binary-search slice itself.
        let mut scratch = tkcore::SkylineScratch::default();
        let mut restricted_windows = 0usize;
        let t_restrict = Instant::now();
        for query in &queries {
            let restricted = span_index.restrict_with(&graph, query.range(), &mut scratch);
            restricted_windows += restricted.total_windows();
            scratch.recycle(restricted);
        }
        let flat_restrict = t_restrict.elapsed();
        assert!(
            restricted_windows > 0,
            "{name}: no workload window kept any skyline window — the restrict \
             column would time an empty slice"
        );
        drop(span_index);

        let plan = tkcore::ShardPlan::FixedCount(ENGINE_EXPERIMENT_SHARDS);
        let t4 = Instant::now();
        let profiles =
            tkcore::ShardProfile::measure(&graph, k, &plan).expect("fixed-count plan resolves");
        let sharded_build = t4.elapsed();

        // Parallel cold build: a fresh engine warms the same plan and k,
        // fanning the four independent shard builds across its pool.
        let pooled = tkcore::ShardedEngine::new(graph.clone(), plan.clone())
            .expect("fixed-count plan resolves");
        let t_parallel = Instant::now();
        let all_resident = pooled.warm(k);
        let parallel_build = t_parallel.elapsed();
        assert!(!all_resident, "{name}: the parallel warm must start cold");
        let warm_stats = pooled.cache_stats().warm;
        assert_eq!(
            warm_stats.entries_built, ENGINE_EXPERIMENT_SHARDS as u64,
            "{name}: the cold warm must build every shard skyline"
        );
        let parallel_speedup = sharded_build.as_secs_f64() / parallel_build.as_secs_f64().max(1e-9);
        let cpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if name == "EM" {
            if cpus >= 2 {
                assert!(
                    parallel_speedup >= PARALLEL_BUILD_MIN_SPEEDUP,
                    "{name}: pooled 4-shard cold build only {parallel_speedup:.2}x over the \
                     serial loop on {cpus} CPUs ({parallel_build:?} vs {sharded_build:?})"
                );
            } else {
                assert!(
                    parallel_build.as_secs_f64() <= sharded_build.as_secs_f64() * 1.25,
                    "{name}: single-CPU pooled build {parallel_build:?} regressed more than \
                     25% over the serial loop {sharded_build:?}"
                );
            }
        }
        let peak_shard_bytes = profiles.iter().map(|p| p.ecs_bytes).max().unwrap_or(0);
        assert!(
            peak_shard_bytes < span_bytes,
            "{name}: peak per-shard skyline ({peak_shard_bytes} B) not below span-wide \
             ({span_bytes} B) with {ENGINE_EXPERIMENT_SHARDS} shards"
        );
        // The sharded engine answers the same workload identically.
        let sharded_engine =
            tkcore::ShardedEngine::new(graph.clone(), plan).expect("fixed-count plan resolves");
        let (_, sharded_batch) = sharded_engine
            .run_batch(&queries)
            .expect("workload queries are valid");
        assert_eq!(
            cold_cores, sharded_batch.total_cores,
            "sharded result mismatch on {name}"
        );

        // Boundary pass: repeated boundary-spanning batches, warm, with the
        // cached stitch index versus the PR 3 transient-merge path.
        let spanning =
            tkc_bench::spanning_workload(&graph, k, ENGINE_EXPERIMENT_SHARDS, num_queries);
        let stitched = tkcore::ShardedEngine::new(
            graph.clone(),
            tkcore::ShardPlan::FixedCount(ENGINE_EXPERIMENT_SHARDS),
        )
        .expect("fixed-count plan resolves");
        let transient = tkcore::ShardedEngine::with_config(
            graph.clone(),
            tkcore::ShardPlan::FixedCount(ENGINE_EXPERIMENT_SHARDS),
            tkcore::EngineConfig {
                boundary_cache_entries: 0,
                ..tkcore::EngineConfig::default()
            },
        )
        .expect("fixed-count plan resolves");
        // Warm both engines (shard skylines; plus stitch entries on the
        // cached engine), then time the repeated batch.
        let (_, stitched_first) = stitched
            .run_batch(&spanning)
            .expect("spanning queries are valid");
        let (_, transient_first) = transient
            .run_batch(&spanning)
            .expect("spanning queries are valid");
        assert_eq!(
            stitched_first.total_cores, transient_first.total_cores,
            "stitched/transient result mismatch on {name}"
        );
        let t5 = Instant::now();
        let (_, stitched_warm) = stitched
            .run_batch(&spanning)
            .expect("spanning queries are valid");
        let stitched_time = t5.elapsed();
        let t6 = Instant::now();
        let (_, transient_warm) = transient
            .run_batch(&spanning)
            .expect("spanning queries are valid");
        let transient_time = t6.elapsed();
        assert_eq!(stitched_warm.total_cores, transient_warm.total_cores);
        assert!(
            stitched_warm.cache.boundary.hits > 0,
            "{name}: spanning batch never hit the stitch cache"
        );
        let stitch_speedup = transient_time.as_secs_f64() / stitched_time.as_secs_f64().max(1e-9);
        assert!(
            stitch_speedup >= 2.0,
            "{name}: warm stitched spanning batch only {stitch_speedup:.2}x faster than the \
             transient-merge path ({stitched_time:?} vs {transient_time:?})"
        );
        // The flat layout must not regress the nested-layout stitched path.
        let baseline_ms = WARM_STITCHED_BASELINE_MS
            .iter()
            .find(|(dataset, _)| *dataset == name)
            .map(|&(_, baseline)| baseline)
            .expect("every engine dataset has a PR 9 baseline");
        let stitched_ms = stitched_time.as_secs_f64() * 1e3;
        assert!(
            stitched_ms <= baseline_ms * 1.25,
            "{name}: warm stitched spanning batch {stitched_ms:.3} ms regressed past the \
             PR 9 baseline of {baseline_ms:.3} ms (+25% noise allowance)"
        );

        report.push(
            name,
            vec![
                ms(cold),
                ms(first_time),
                ms(warm_time),
                format!(
                    "{:.1}x",
                    cold.as_secs_f64() / warm_time.as_secs_f64().max(1e-9)
                ),
                warm.cache.hits.to_string(),
                ms(span_build),
                format!(
                    "{:.3}",
                    flat_restrict.as_secs_f64() * 1e6 / queries.len().max(1) as f64
                ),
                ms(sharded_build),
                ms(parallel_build),
                format!("{parallel_speedup:.1}x ({cpus} CPUs)"),
                format!(
                    "{:.2} ({:.2} / {:.2} MiB)",
                    peak_shard_bytes as f64 / span_bytes.max(1) as f64,
                    peak_shard_bytes as f64 / (1024.0 * 1024.0),
                    span_bytes as f64 / (1024.0 * 1024.0)
                ),
                ms(transient_time),
                ms(stitched_time),
                format!("{stitch_speedup:.1}x"),
            ],
        );
    }
    report
}

/// Skyline microbenchmark (not in the paper): the cost of the three CSR
/// skyline primitives per dataset, persisted as `BENCH_skyline.json` so the
/// flat layout's trajectory is reviewable next to the engine numbers.
///
/// * `build` — one span-wide Algorithm-2 sweep emitting the CSR arrays;
/// * `restrict` — slicing the span index down to each workload window
///   through one recycled scratch (two binary searches plus a contiguous
///   copy per edge, no per-edge allocations);
/// * `compose` — the boundary merge, isolated as the difference between a
///   warm transient spanning batch (which pays one merged-window compose
///   per query) and the same batch answered from the stitch cache (which
///   pays enumeration only).
fn skyline_experiment(num_queries: usize) -> Report {
    let mut report = Report::new(
        format!(
            "Skyline primitives: CSR build / restrict / compose ({num_queries} windows, \
             {ENGINE_EXPERIMENT_SHARDS}-shard compose plan)"
        ),
        "dataset/op",
        vec![
            "total ms".into(),
            "per op (us)".into(),
            "ops".into(),
            "ecs windows".into(),
        ],
    );
    let us = |d: Duration, ops: usize| format!("{:.3}", d.as_secs_f64() * 1e6 / ops.max(1) as f64);
    for name in ["EM", "CM"] {
        let profile = DatasetProfile::by_name(name).expect("profile");
        let graph = profile.generate();
        let stats = DatasetStats::compute(&graph);
        let config = WorkloadConfig::paper_default(&stats, num_queries, profile.seed() ^ 0x5C71);
        let workload = QueryWorkload::generate(&graph, &config);
        let queries: Vec<TimeRangeKCoreQuery> = workload.queries().collect();
        let k = workload.k;

        let t_build = Instant::now();
        let span_index = tkcore::EdgeCoreSkyline::build(&graph, k, graph.span());
        let build = t_build.elapsed();
        report.push(
            format!("{name}/build"),
            vec![
                ms(build),
                us(build, 1),
                "1".into(),
                span_index.total_windows().to_string(),
            ],
        );

        let mut scratch = tkcore::SkylineScratch::default();
        let mut restricted_windows = 0usize;
        let t_restrict = Instant::now();
        for query in &queries {
            let restricted = span_index.restrict_with(&graph, query.range(), &mut scratch);
            restricted_windows += restricted.total_windows();
            scratch.recycle(restricted);
        }
        let restrict = t_restrict.elapsed();
        report.push(
            format!("{name}/restrict"),
            vec![
                ms(restrict),
                us(restrict, queries.len()),
                queries.len().to_string(),
                restricted_windows.to_string(),
            ],
        );

        // Compose: run the spanning workload warm through the transient
        // engine (every query re-composes the merged sub-window skyline)
        // and through the stitch cache (enumeration only); the difference
        // is what composition itself costs.
        let spanning =
            tkc_bench::spanning_workload(&graph, k, ENGINE_EXPERIMENT_SHARDS, num_queries);
        let plan = tkcore::ShardPlan::FixedCount(ENGINE_EXPERIMENT_SHARDS);
        let transient = tkcore::ShardedEngine::with_config(
            graph.clone(),
            plan.clone(),
            tkcore::EngineConfig {
                boundary_cache_entries: 0,
                ..tkcore::EngineConfig::default()
            },
        )
        .expect("fixed-count plan resolves");
        let stitched =
            tkcore::ShardedEngine::new(graph.clone(), plan).expect("fixed-count plan resolves");
        for engine in [&transient, &stitched] {
            let (_, first) = engine
                .run_batch(&spanning)
                .expect("spanning queries are valid");
            assert!(
                first.total_cores > 0,
                "{name}: spanning workload found no cores"
            );
        }
        let t_transient = Instant::now();
        let (_, transient_warm) = transient
            .run_batch(&spanning)
            .expect("spanning queries are valid");
        let transient_time = t_transient.elapsed();
        let t_stitched = Instant::now();
        let (_, stitched_warm) = stitched
            .run_batch(&spanning)
            .expect("spanning queries are valid");
        let stitched_time = t_stitched.elapsed();
        assert_eq!(transient_warm.total_cores, stitched_warm.total_cores);
        let compose = transient_time.saturating_sub(stitched_time);
        report.push(
            format!("{name}/compose"),
            vec![
                ms(compose),
                us(compose, spanning.len()),
                spanning.len().to_string(),
                "-".into(),
            ],
        );
    }
    report
}

/// Shards of the ingest experiment's base plan (the last one is the live
/// tail the stream grows).
const INGEST_EXPERIMENT_SHARDS: usize = 4;

/// Median of a latency sample.
fn p50(mut sample: Vec<Duration>) -> Duration {
    sample.sort();
    sample.get(sample.len() / 2).copied().unwrap_or_default()
}

/// Ingest experiment (not in the paper): live append throughput and warm
/// query latency *during* ingestion on the EM/CM profiles.  Each profile's
/// timeline is split 70/30 into a base graph and an append stream; the
/// stream is absorbed in batches into a 4-shard live engine under a
/// `SpanWidth` seal policy while closed-window queries interleave with the
/// batches.  The experiment asserts the incremental-maintenance contract —
/// the closed shards of the base plan register **zero** skyline rebuilds
/// across the whole stream — and reports the median closed-window query
/// latency during ingest next to the same queries on a frozen (never
/// appended) engine, plus the per-seal invalidation cost (average absorb
/// time of sealing batches versus plain ones).
fn ingest_experiment(num_queries: usize) -> Report {
    let mut report = Report::new(
        format!(
            "Ingest: append throughput and warm closed-window query latency during \
             ingestion ({INGEST_EXPERIMENT_SHARDS}-shard live engine, {num_queries} queries)"
        ),
        "dataset",
        vec![
            "events".into(),
            "append events/s".into(),
            "seals".into(),
            "tail invalidations".into(),
            "closed rebuilds".into(),
            "p50 query during ingest".into(),
            "p50 query frozen".into(),
            "avg absorb".into(),
            "avg sealing absorb".into(),
        ],
    );
    for name in ["EM", "CM"] {
        let profile = DatasetProfile::by_name(name).expect("profile");
        let graph = profile.generate();
        let tmax = graph.tmax();
        let cutoff = (tmax * 7 / 10).max(1);
        let mut base: Vec<(u64, u64, i64)> = Vec::new();
        let mut stream: Vec<(u64, u64, u32)> = Vec::new();
        for id in 0..graph.num_edges() {
            let e = graph.edge(id as temporal_graph::EdgeId);
            let (u, v) = (graph.label(e.u), graph.label(e.v));
            if e.t <= cutoff {
                base.push((u, v, i64::from(e.t)));
            } else {
                stream.push((u, v, e.t));
            }
        }
        stream.sort_by_key(|&(_, _, t)| t);
        if stream.is_empty() {
            continue;
        }
        let base_graph = temporal_graph::TemporalGraphBuilder::new()
            .timestamp_mode(temporal_graph::TimestampMode::Raw)
            .with_edges(base)
            .build()
            .expect("base split is non-empty");
        let stats = DatasetStats::compute(&base_graph);
        let k = stats.k_for_percent(30);

        // ~3 seals over the streamed 30% of the timeline.
        let seal_width = ((tmax - cutoff) / 3).max(1);
        let config = tkcore::EngineConfig {
            seal_policy: tkcore::SealPolicy::SpanWidth(seal_width),
            ..tkcore::EngineConfig::default()
        };
        let plan = tkcore::ShardPlan::FixedCount(INGEST_EXPERIMENT_SHARDS);
        let live = tkcore::ShardedEngine::with_config(base_graph.clone(), plan.clone(), config)
            .expect("fixed-count plan resolves");
        let frozen = tkcore::ShardedEngine::new(base_graph.clone(), plan)
            .expect("fixed-count plan resolves");

        // Queries confined to the closed shards of the base plan, so their
        // skylines must keep serving from cache throughout the stream.
        let closed = live.sealed_shards();
        let closed_end = live.shards()[closed - 1].end();
        let workload = QueryWorkload::generate(
            &base_graph,
            &WorkloadConfig::paper_default(&stats, num_queries, profile.seed() ^ 0x1736),
        );
        let queries: Vec<TimeRangeKCoreQuery> = workload
            .ranges
            .iter()
            .map(|r| {
                let end = r.end().min(closed_end);
                let start = r.start().min(end);
                TimeRangeKCoreQuery::new(k, temporal_graph::TimeWindow::new(start, end))
                    .expect("k >= 1")
            })
            .collect();

        // Warm both engines identically before the stream starts.
        for engine in [&live, &frozen] {
            for query in &queries {
                let mut sink = CountingSink::default();
                engine.run_with(query, Algorithm::Enum, &mut sink).unwrap();
            }
        }
        let before = live.cache_stats();
        let closed_builds_before: u64 = before.per_shard[..closed].iter().map(|s| s.builds).sum();

        // The stream: absorb batches, one closed-window query after each.
        // Batches cut only on timestamp boundaries: a seal raises the
        // append floor to the sealed batch's last timestamp, so a
        // timestamp split across two batches would make the second one
        // out-of-order.
        let batch_size = 64;
        let mut batches: Vec<Vec<(u64, u64, u32)>> = Vec::new();
        for &event in &stream {
            match batches.last_mut() {
                Some(last)
                    if last.len() < batch_size || last.last().map(|e| e.2) == Some(event.2) =>
                {
                    last.push(event);
                }
                _ => batches.push(vec![event]),
            }
        }
        let mut absorb_time = Duration::ZERO;
        let mut sealing_time = Duration::ZERO;
        let mut sealing_batches = 0u32;
        let mut plain_batches = 0u32;
        let mut seals = 0u64;
        let mut during = Vec::new();
        for (i, batch) in batches.iter().enumerate() {
            let t0 = Instant::now();
            let absorb = live.absorb(batch).expect("stream is time-ordered");
            let elapsed = t0.elapsed();
            absorb_time += elapsed;
            if absorb.sealed {
                seals += 1;
                sealing_time += elapsed;
                sealing_batches += 1;
            } else {
                plain_batches += 1;
            }
            let query = &queries[i % queries.len()];
            let mut sink = CountingSink::default();
            let t1 = Instant::now();
            live.run_with(query, Algorithm::Enum, &mut sink).unwrap();
            during.push(t1.elapsed());
            // Keep the tail skyline hot between batches, so every absorb
            // actually purges a resident entry and the invalidation cost
            // (purge + rebuild-on-demand) is part of what's measured.
            let tail_window = temporal_graph::TimeWindow::new(closed_end + 1, live.graph().tmax());
            let tail_query = TimeRangeKCoreQuery::new(k, tail_window).expect("k >= 1");
            let mut tail_sink = CountingSink::default();
            live.run_with(&tail_query, Algorithm::Enum, &mut tail_sink)
                .unwrap();
        }
        let after = live.cache_stats();
        let closed_builds_after: u64 = after.per_shard[..closed].iter().map(|s| s.builds).sum();
        assert_eq!(
            closed_builds_after, closed_builds_before,
            "{name}: closed shards rebuilt during ingest"
        );
        let delta = tkcore::IngestDelta::between(&before, &after);

        // The same query reps on the frozen engine.
        let mut frozen_lat = Vec::new();
        for i in 0..during.len() {
            let query = &queries[i % queries.len()];
            let mut sink = CountingSink::default();
            let t1 = Instant::now();
            frozen.run_with(query, Algorithm::Enum, &mut sink).unwrap();
            frozen_lat.push(t1.elapsed());
        }

        let throughput = stream.len() as f64 / absorb_time.as_secs_f64().max(1e-9);
        let avg = |total: Duration, n: u32| {
            if n == 0 {
                "-".to_string()
            } else {
                ms(total / n)
            }
        };
        report.push(
            name,
            vec![
                stream.len().to_string(),
                format!("{throughput:.0}"),
                seals.to_string(),
                delta.tail_invalidations.to_string(),
                (closed_builds_after - closed_builds_before).to_string(),
                ms(p50(during)),
                ms(p50(frozen_lat)),
                avg(absorb_time - sealing_time, plain_batches),
                avg(sealing_time, sealing_batches),
            ],
        );
    }
    report
}

/// Figure 12: peak memory estimate per algorithm at default parameters.
fn fig12() -> Report {
    let mut report = Report::new(
        "Figure 12: peak working-structure memory in MB (defaults, 1 query)",
        "dataset",
        vec!["OTCD".into(), "EnumBase".into(), "Enum".into()],
    );
    for profile in ALL_PROFILES {
        let graph = profile.generate();
        let stats = DatasetStats::compute(&graph);
        let config = WorkloadConfig::paper_default(&stats, 1, profile.seed() ^ 0x12);
        let workload = QueryWorkload::generate(&graph, &config);
        let Some(range) = workload.ranges.first().copied() else {
            continue;
        };
        let query = TimeRangeKCoreQuery::new(workload.k, range).expect("workload k >= 1");
        let mb = |bytes: usize| format!("{:.2}", bytes as f64 / (1024.0 * 1024.0));
        let mut cells = Vec::new();
        for algo in [Algorithm::Otcd, Algorithm::EnumBase, Algorithm::Enum] {
            let mut sink = CountingSink::default();
            let run = query.run_with(&graph, algo, &mut sink);
            cells.push(mb(run.peak_memory_bytes));
        }
        report.push(profile.name, cells);
    }
    report
}
