//! Minimal text/CSV reporting for experiment reproduction.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// One row of an experiment report: a label plus one value per column.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label (dataset name, parameter value, ...).
    pub label: String,
    /// One value per column, already formatted.
    pub values: Vec<String>,
}

/// A simple experiment report: a titled table with named columns, printable
/// as an aligned text table and saveable as CSV under `target/experiments/`.
#[derive(Debug, Clone)]
pub struct Report {
    /// Report title (e.g. `Figure 6: average running time (ms)`).
    pub title: String,
    /// Name of the label column.
    pub label_header: String,
    /// Column names.
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<Row>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(
        title: impl Into<String>,
        label_header: impl Into<String>,
        columns: Vec<String>,
    ) -> Self {
        Self {
            title: title.into(),
            label_header: label_header.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, label: impl Into<String>, values: Vec<String>) {
        self.rows.push(Row {
            label: label.into(),
            values,
        });
    }

    /// Renders the report as an aligned text table.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = Vec::with_capacity(self.columns.len() + 1);
        widths.push(
            self.rows
                .iter()
                .map(|r| r.label.len())
                .chain([self.label_header.len()])
                .max()
                .unwrap_or(8),
        );
        for (i, c) in self.columns.iter().enumerate() {
            let w = self
                .rows
                .iter()
                .map(|r| r.values.get(i).map(|v| v.len()).unwrap_or(0))
                .chain([c.len()])
                .max()
                .unwrap_or(8);
            widths.push(w);
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let _ = write!(out, "{:<w$}", self.label_header, w = widths[0] + 2);
        for (i, c) in self.columns.iter().enumerate() {
            let _ = write!(out, "{:>w$}  ", c, w = widths[i + 1]);
        }
        let _ = writeln!(out);
        for r in &self.rows {
            let _ = write!(out, "{:<w$}", r.label, w = widths[0] + 2);
            for (i, v) in r.values.iter().enumerate() {
                let _ = write!(out, "{:>w$}  ", v, w = widths[i + 1]);
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Renders the report as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{},{}", self.label_header, self.columns.join(","));
        for r in &self.rows {
            let _ = writeln!(out, "{},{}", r.label, r.values.join(","));
        }
        out
    }

    /// Writes the CSV rendering to `dir/<file_stem>.csv`, creating the
    /// directory if needed.
    pub fn save_csv(&self, dir: impl AsRef<Path>, file_stem: &str) -> std::io::Result<()> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        fs::write(dir.join(format!("{file_stem}.csv")), self.to_csv())
    }

    /// Renders the report as machine-readable JSON (std-only, no serde).
    /// Cell values that parse as finite numbers are emitted as JSON numbers;
    /// anything else (e.g. `TL` time-limit markers) stays a string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"version\": 1,");
        let _ = writeln!(out, "  \"title\": {},", json_str(&self.title));
        let _ = writeln!(out, "  \"label_header\": {},", json_str(&self.label_header));
        let cols: Vec<String> = self.columns.iter().map(|c| json_str(c)).collect();
        let _ = writeln!(out, "  \"columns\": [{}],", cols.join(", "));
        out.push_str("  \"rows\": [\n");
        for (r, row) in self.rows.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"label\": {}, \"values\": {{",
                json_str(&row.label)
            );
            for (i, column) in self.columns.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let value = row.values.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(out, "{}: {}", json_str(column), json_value(value));
            }
            let comma = if r + 1 < self.rows.len() { "," } else { "" };
            let _ = writeln!(out, "}}}}{comma}");
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON rendering to `path`, creating parent directories if
    /// needed.
    pub fn save_json(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        fs::write(path, self.to_json())
    }
}

/// JSON string literal with the escapes that can occur in report text.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A cell as a JSON value: a number when it parses as one, else a string.
fn json_value(s: &str) -> String {
    match s.parse::<f64>() {
        Ok(n) if n.is_finite() => s.to_string(),
        _ => json_str(s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new("Demo", "dataset", vec!["a".into(), "b".into()]);
        r.push("CM", vec!["1".into(), "2.5".into()]);
        r.push("EM-analogue", vec!["10".into(), "0.25".into()]);
        r
    }

    #[test]
    fn text_rendering_is_aligned() {
        let text = sample().to_text();
        assert!(text.contains("== Demo =="));
        assert!(text.contains("CM"));
        assert!(text.contains("EM-analogue"));
    }

    #[test]
    fn csv_rendering() {
        let csv = sample().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "dataset,a,b");
        assert_eq!(lines.next().unwrap(), "CM,1,2.5");
    }

    #[test]
    fn json_rendering_types_cells() {
        let json = sample().to_json();
        assert!(json.contains("\"version\": 1"));
        assert!(json.contains("\"columns\": [\"a\", \"b\"]"));
        // Numeric cells become numbers, not strings.
        assert!(json.contains("\"a\": 1, \"b\": 2.5"));
        assert!(json.contains("\"label\": \"EM-analogue\""));
    }

    #[test]
    fn json_rendering_keeps_non_numeric_cells_as_strings() {
        let mut r = Report::new("TL demo", "dataset", vec!["time_ms".into()]);
        r.push("big", vec!["TL".into()]);
        assert!(r.to_json().contains("\"time_ms\": \"TL\""));
    }

    #[test]
    fn save_json_writes_file() {
        let dir = std::env::temp_dir().join("tkc-report-json-test");
        sample().save_json(dir.join("demo.json")).unwrap();
        let content = std::fs::read_to_string(dir.join("demo.json")).unwrap();
        assert!(content.trim_start().starts_with('{'));
        assert!(content.contains("\"rows\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_csv_writes_file() {
        let dir = std::env::temp_dir().join("tkc-report-test");
        sample().save_csv(&dir, "demo").unwrap();
        let content = std::fs::read_to_string(dir.join("demo.csv")).unwrap();
        assert!(content.starts_with("dataset,"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
