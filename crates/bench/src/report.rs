//! Minimal text/CSV reporting for experiment reproduction.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// One row of an experiment report: a label plus one value per column.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label (dataset name, parameter value, ...).
    pub label: String,
    /// One value per column, already formatted.
    pub values: Vec<String>,
}

/// A simple experiment report: a titled table with named columns, printable
/// as an aligned text table and saveable as CSV under `target/experiments/`.
#[derive(Debug, Clone)]
pub struct Report {
    /// Report title (e.g. `Figure 6: average running time (ms)`).
    pub title: String,
    /// Name of the label column.
    pub label_header: String,
    /// Column names.
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<Row>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(
        title: impl Into<String>,
        label_header: impl Into<String>,
        columns: Vec<String>,
    ) -> Self {
        Self {
            title: title.into(),
            label_header: label_header.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, label: impl Into<String>, values: Vec<String>) {
        self.rows.push(Row {
            label: label.into(),
            values,
        });
    }

    /// Renders the report as an aligned text table.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = Vec::with_capacity(self.columns.len() + 1);
        widths.push(
            self.rows
                .iter()
                .map(|r| r.label.len())
                .chain([self.label_header.len()])
                .max()
                .unwrap_or(8),
        );
        for (i, c) in self.columns.iter().enumerate() {
            let w = self
                .rows
                .iter()
                .map(|r| r.values.get(i).map(|v| v.len()).unwrap_or(0))
                .chain([c.len()])
                .max()
                .unwrap_or(8);
            widths.push(w);
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let _ = write!(out, "{:<w$}", self.label_header, w = widths[0] + 2);
        for (i, c) in self.columns.iter().enumerate() {
            let _ = write!(out, "{:>w$}  ", c, w = widths[i + 1]);
        }
        let _ = writeln!(out);
        for r in &self.rows {
            let _ = write!(out, "{:<w$}", r.label, w = widths[0] + 2);
            for (i, v) in r.values.iter().enumerate() {
                let _ = write!(out, "{:>w$}  ", v, w = widths[i + 1]);
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Renders the report as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{},{}", self.label_header, self.columns.join(","));
        for r in &self.rows {
            let _ = writeln!(out, "{},{}", r.label, r.values.join(","));
        }
        out
    }

    /// Writes the CSV rendering to `dir/<file_stem>.csv`, creating the
    /// directory if needed.
    pub fn save_csv(&self, dir: impl AsRef<Path>, file_stem: &str) -> std::io::Result<()> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        fs::write(dir.join(format!("{file_stem}.csv")), self.to_csv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new("Demo", "dataset", vec!["a".into(), "b".into()]);
        r.push("CM", vec!["1".into(), "2.5".into()]);
        r.push("EM-analogue", vec!["10".into(), "0.25".into()]);
        r
    }

    #[test]
    fn text_rendering_is_aligned() {
        let text = sample().to_text();
        assert!(text.contains("== Demo =="));
        assert!(text.contains("CM"));
        assert!(text.contains("EM-analogue"));
    }

    #[test]
    fn csv_rendering() {
        let csv = sample().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "dataset,a,b");
        assert_eq!(lines.next().unwrap(), "CM,1,2.5");
    }

    #[test]
    fn save_csv_writes_file() {
        let dir = std::env::temp_dir().join("tkc-report-test");
        sample().save_csv(&dir, "demo").unwrap();
        let content = std::fs::read_to_string(dir.join("demo.csv")).unwrap();
        assert!(content.starts_with("dataset,"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
