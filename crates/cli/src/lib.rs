//! Implementation of the `tkc` command-line tool.
//!
//! The binary is a thin wrapper around [`run`]; keeping the logic in a
//! library makes the argument parsing and command dispatch unit-testable.
//! Queries are executed through the unified `tkcore` request API
//! ([`tkcore::QueryRequest`] / [`tkcore::CoreBackend`]), so malformed input
//! surfaces as a rendered [`tkcore::TkError`] and a nonzero exit code, never
//! a panic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::sync::Arc;
use tkc_datasets::{DatasetProfile, DatasetStats};
use tkcore::{
    Affinity, Algorithm, CacheStats, CachedBackend, CoreBackend, CoreService, CountingSink,
    KOutput, QueryEngine, QueryRequest, ServiceConfig, ShardPlan, ShardedBackend, ShardedEngine,
    TkError,
};

/// Errors reported to the CLI user.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<temporal_graph::TemporalGraphError> for CliError {
    fn from(e: temporal_graph::TemporalGraphError) -> Self {
        CliError(e.to_string())
    }
}

impl From<TkError> for CliError {
    fn from(e: TkError) -> Self {
        CliError(e.to_string())
    }
}

/// Usage text printed by `tkc help` and on argument errors.
pub const USAGE: &str = "\
tkc — time-range temporal k-core queries

USAGE:
  tkc stats <edge-list>
      Print |V|, |E|, tmax and kmax of a temporal edge-list file (`u v t` per line).

  tkc query <edge-list> (--k <K> | --k-range <MIN>..=<MAX>)
            [--start <TS>] [--end <TE>] [--algo enum|enum-base|otcd|naive]
            [--output count|full] [--limit <N>] [--shards <S>] [--workers <W>]
            [--affinity shared|shard]
      Enumerate all distinct temporal k-cores in the range [TS, TE]
      (default: the whole time span).  `--k-range` sweeps every k in the
      inclusive range through one cached engine, building at most one
      core-window index per k.  `--shards S` cuts the timeline into S
      time-interval shards (one index per touched shard and k, exact
      stitching at shard cuts via the cached boundary index); `--workers W`
      serves the request through a CoreService backed by a persistent
      W-thread work-stealing pool, and `--affinity shard` routes each
      request to the worker owning the shards its window overlaps.
      `--output count` reports counts only; `--output full` (default)
      prints each core's tightest time interval, vertex count and edge
      count.

  tkc batch <edge-list> <queries-csv> [--algo enum|enum-base|otcd|naive]
            [--threads <N>] [--budget-mb <M>] [--shards <S>] [--workers <W>]
            [--affinity shared|shard]
      Run a batch of queries through the cached query engine: one core-window
      index per k (per shard and k with `--shards S`), restricted per query
      and fanned across a persistent thread pool.  `--workers W` instead
      submits every query to a W-worker CoreService and reports per-worker
      latency; `--affinity shard` enables shard-affine routing.  The CSV has
      one query per line, `k,start,end` (or just `k` for the whole time
      span; `#` starts a comment).  Prints per-query counts plus batch
      timing and cache statistics.

  tkc generate <profile> <output-file>
      Write the scaled synthetic analogue of one of the paper's datasets
      (FB BO CM EM MC MO AU LR EN SU WT WK PL YT) as an edge-list file.

  tkc profiles
      List the available dataset profiles.
";

/// What `tkc query` prints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputKind {
    /// Counts only (cores and `|R|`), no materialisation.
    Count,
    /// Materialise and print each core (up to `--limit`).
    Full,
}

/// Which `k` values a `tkc query` covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KSpec {
    /// `--k K`
    Single(usize),
    /// `--k-range MIN..=MAX` (inclusive).
    Range(usize, usize),
}

/// Parsed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `tkc stats <file>`
    Stats {
        /// Path of the edge-list file.
        path: String,
    },
    /// `tkc query <file> --k K ...`
    Query {
        /// Path of the edge-list file.
        path: String,
        /// Query parameter(s): one `k` or an inclusive sweep.
        ks: KSpec,
        /// Query range start (defaults to 1).
        start: Option<u32>,
        /// Query range end (defaults to the last timestamp).
        end: Option<u32>,
        /// Algorithm to run.
        algorithm: Algorithm,
        /// What to print.
        output: OutputKind,
        /// Print at most this many cores per `k`.
        limit: usize,
        /// Time-interval shards (0 = unsharded span-wide engine).
        shards: usize,
        /// Serve through a CoreService with this many workers (0 = direct).
        workers: usize,
        /// Lane routing of the service (`--affinity shared|shard`).
        affinity: Affinity,
    },
    /// `tkc batch <file> <queries.csv> ...`
    Batch {
        /// Path of the edge-list file.
        path: String,
        /// Path of the query CSV (`k,start,end` per line).
        queries: String,
        /// Algorithm to run for every query.
        algorithm: Algorithm,
        /// Worker threads (0 = one per CPU).
        threads: usize,
        /// Skyline-cache memory budget in MiB.
        budget_mb: usize,
        /// Time-interval shards (0 = unsharded span-wide engine).
        shards: usize,
        /// Serve through a CoreService with this many workers (0 = direct
        /// engine batch).
        workers: usize,
        /// Lane routing of the service (`--affinity shared|shard`).
        affinity: Affinity,
    },
    /// `tkc generate <profile> <out>`
    Generate {
        /// Profile name (e.g. `CM`).
        profile: String,
        /// Output edge-list path.
        output: String,
    },
    /// `tkc profiles`
    Profiles,
    /// `tkc help`
    Help,
}

/// Parses the command line (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "profiles" => Ok(Command::Profiles),
        "stats" => {
            let path = it
                .next()
                .ok_or_else(|| CliError("stats requires an edge-list path".into()))?;
            Ok(Command::Stats { path: path.clone() })
        }
        "generate" => {
            let profile = it
                .next()
                .ok_or_else(|| CliError("generate requires a profile name".into()))?;
            let output = it
                .next()
                .ok_or_else(|| CliError("generate requires an output path".into()))?;
            Ok(Command::Generate {
                profile: profile.clone(),
                output: output.clone(),
            })
        }
        "batch" => {
            let path = it
                .next()
                .ok_or_else(|| CliError("batch requires an edge-list path".into()))?
                .clone();
            let queries = it
                .next()
                .ok_or_else(|| CliError("batch requires a query CSV path".into()))?
                .clone();
            let mut algorithm = Algorithm::Enum;
            let mut threads = 0usize;
            let mut budget_mb = 256usize;
            let mut shards = 0usize;
            let mut workers = 0usize;
            let mut affinity = Affinity::Shared;
            let rest: Vec<&String> = it.collect();
            let mut i = 0;
            while i < rest.len() {
                let flag = rest[i].as_str();
                let value = |what: &str| -> Result<&String, CliError> {
                    rest.get(i + 1)
                        .copied()
                        .ok_or_else(|| CliError(format!("{what} requires a value")))
                };
                match flag {
                    "--algo" | "--algorithm" => {
                        algorithm = value(flag)?.parse::<Algorithm>()?;
                        i += 1;
                    }
                    "--threads" => {
                        threads = parse_num(value("--threads")?, "--threads")?;
                        i += 1;
                    }
                    "--budget-mb" => {
                        budget_mb = parse_num(value("--budget-mb")?, "--budget-mb")?;
                        if budget_mb == 0 {
                            return Err(CliError("--budget-mb must be at least 1".into()));
                        }
                        i += 1;
                    }
                    "--shards" => {
                        shards = parse_num(value("--shards")?, "--shards")?;
                        i += 1;
                    }
                    "--workers" => {
                        workers = parse_num(value("--workers")?, "--workers")?;
                        i += 1;
                    }
                    "--affinity" => {
                        affinity = parse_affinity(value("--affinity")?)?;
                        i += 1;
                    }
                    other => return Err(CliError(format!("unknown flag `{other}`"))),
                }
                i += 1;
            }
            Ok(Command::Batch {
                path,
                queries,
                algorithm,
                threads,
                budget_mb,
                shards,
                workers,
                affinity,
            })
        }
        "query" => {
            let path = it
                .next()
                .ok_or_else(|| CliError("query requires an edge-list path".into()))?
                .clone();
            let mut k: Option<usize> = None;
            let mut k_range: Option<(usize, usize)> = None;
            let mut start = None;
            let mut end = None;
            let mut algorithm = Algorithm::Enum;
            let mut output: Option<OutputKind> = None;
            let mut limit = 20usize;
            let mut shards = 0usize;
            let mut workers = 0usize;
            let mut affinity = Affinity::Shared;
            let rest: Vec<&String> = it.collect();
            let mut i = 0;
            while i < rest.len() {
                let flag = rest[i].as_str();
                let value = |what: &str| -> Result<&String, CliError> {
                    rest.get(i + 1)
                        .copied()
                        .ok_or_else(|| CliError(format!("{what} requires a value")))
                };
                match flag {
                    "--k" => {
                        k = Some(parse_num(value("--k")?, "--k")?);
                        i += 1;
                    }
                    "--k-range" => {
                        k_range = Some(parse_k_range(value("--k-range")?)?);
                        i += 1;
                    }
                    "--start" => {
                        start = Some(parse_num(value("--start")?, "--start")? as u32);
                        i += 1;
                    }
                    "--end" => {
                        end = Some(parse_num(value("--end")?, "--end")? as u32);
                        i += 1;
                    }
                    "--limit" => {
                        limit = parse_num(value("--limit")?, "--limit")?;
                        i += 1;
                    }
                    "--shards" => {
                        shards = parse_num(value("--shards")?, "--shards")?;
                        i += 1;
                    }
                    "--workers" => {
                        workers = parse_num(value("--workers")?, "--workers")?;
                        i += 1;
                    }
                    "--affinity" => {
                        affinity = parse_affinity(value("--affinity")?)?;
                        i += 1;
                    }
                    "--algo" | "--algorithm" => {
                        algorithm = value(flag)?.parse::<Algorithm>()?;
                        i += 1;
                    }
                    "--output" => {
                        output = Some(match value("--output")?.as_str() {
                            "count" => OutputKind::Count,
                            "full" => OutputKind::Full,
                            other => {
                                return Err(CliError(format!(
                                    "--output: `{other}` is not count or full"
                                )))
                            }
                        });
                        i += 1;
                    }
                    "--count-only" => output = Some(OutputKind::Count),
                    other => return Err(CliError(format!("unknown flag `{other}`"))),
                }
                i += 1;
            }
            let ks = match (k, k_range) {
                (Some(_), Some(_)) => {
                    return Err(CliError("--k and --k-range are mutually exclusive".into()))
                }
                (Some(k), None) => KSpec::Single(k),
                (None, Some((lo, hi))) => KSpec::Range(lo, hi),
                (None, None) => {
                    return Err(CliError(
                        "query requires --k <K> or --k-range <MIN>..=<MAX>".into(),
                    ))
                }
            };
            Ok(Command::Query {
                path,
                ks,
                start,
                end,
                algorithm,
                output: output.unwrap_or(OutputKind::Full),
                limit,
                shards,
                workers,
                affinity,
            })
        }
        other => Err(CliError(format!("unknown command `{other}`\n\n{USAGE}"))),
    }
}

fn parse_num(s: &str, what: &str) -> Result<usize, CliError> {
    s.parse()
        .map_err(|_| CliError(format!("{what}: `{s}` is not a number")))
}

fn parse_affinity(s: &str) -> Result<Affinity, CliError> {
    s.parse()
        .map_err(|e: String| CliError(format!("--affinity: {e}")))
}

/// Parses an inclusive `k` range: `2..=5`, `2..5` or `2-5` all mean
/// `{2, 3, 4, 5}`.
fn parse_k_range(s: &str) -> Result<(usize, usize), CliError> {
    let (lo, hi) = s
        .split_once("..=")
        .or_else(|| s.split_once(".."))
        .or_else(|| s.split_once('-'))
        .ok_or_else(|| {
            CliError(format!(
                "--k-range: `{s}` is not of the form MIN..=MAX (e.g. 2..=5)"
            ))
        })?;
    let lo = parse_num(lo.trim(), "--k-range min")?;
    let hi = parse_num(hi.trim(), "--k-range max")?;
    if lo == 0 || lo > hi {
        return Err(CliError(format!(
            "--k-range: [{lo}, {hi}] is not a non-empty range of k >= 1"
        )));
    }
    Ok((lo, hi))
}

/// Parses a batch query CSV: one `k[,start,end]` query per line, blank lines
/// and `#` comments ignored.  `path` labels parse errors.
fn parse_query_csv(
    path: &str,
    content: &str,
    tmax: u32,
) -> Result<Vec<tkcore::TimeRangeKCoreQuery>, CliError> {
    let mut queries = Vec::new();
    for (lineno, raw) in content.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        let err = |msg: String| CliError(format!("{path}, line {}: {msg}", lineno + 1));
        let k: usize = fields[0]
            .parse()
            .map_err(|_| err(format!("`{}` is not a valid k", fields[0])))?;
        let range = match fields.len() {
            1 => temporal_graph::TimeWindow::new(1, tmax.max(1)),
            3 => {
                let start: u32 = fields[1]
                    .parse()
                    .map_err(|_| err(format!("`{}` is not a valid start", fields[1])))?;
                let end: u32 = fields[2]
                    .parse()
                    .map_err(|_| err(format!("`{}` is not a valid end", fields[2])))?;
                if start > tmax {
                    return Err(err(format!(
                        "range starts at {start}, past the graph's last timestamp {tmax}"
                    )));
                }
                temporal_graph::TimeWindow::try_new(start, end)
                    .ok_or_else(|| err(format!("invalid range [{start}, {end}]")))?
            }
            n => {
                return Err(err(format!(
                    "expected `k` or `k,start,end`, got {n} fields"
                )))
            }
        };
        queries.push(tkcore::TimeRangeKCoreQuery::new(k, range).map_err(|e| err(e.to_string()))?);
    }
    if queries.is_empty() {
        return Err(CliError("query CSV contains no queries".into()));
    }
    Ok(queries)
}

/// Writes the per-query result table of `tkc batch`.
fn write_batch_rows(
    out: &mut String,
    queries: &[tkcore::TimeRangeKCoreQuery],
    rows: &[(u64, u64)],
) {
    let _ = writeln!(
        out,
        "{:<6} {:<14} {:>10} {:>12}",
        "k", "range", "cores", "|R| (edges)"
    );
    for (query, (cores, edges)) in queries.iter().zip(rows) {
        let _ = writeln!(
            out,
            "{:<6} {:<14} {:>10} {:>12}",
            query.k(),
            query.range().to_string(),
            cores,
            edges
        );
    }
}

/// Writes the aggregate timing line of an engine-side `tkc batch` run.
fn write_batch_summary(out: &mut String, algorithm: Algorithm, batch: &tkcore::BatchStats) {
    let _ = writeln!(
        out,
        "\n{}: {} queries on {} threads in {:?} ({} cores, |R| = {} edges)",
        algorithm,
        batch.num_queries,
        batch.threads,
        batch.wall_time,
        batch.total_cores,
        batch.total_result_edges
    );
    let _ = writeln!(
        out,
        "precompute {:?} + enumerate {:?} summed across workers",
        batch.precompute_time, batch.enumerate_time
    );
}

/// Writes the skyline-cache counters, with the per-shard build breakdown
/// when the engine is sharded.
fn write_cache_summary(out: &mut String, cache: &CacheStats) {
    let _ = writeln!(
        out,
        "index cache: {} hits, {} misses, {} evictions, {} indexes resident ({:.2} MiB)",
        cache.hits,
        cache.misses,
        cache.evictions,
        cache.resident_indexes,
        cache.resident_bytes as f64 / (1024.0 * 1024.0)
    );
    write_shard_builds(out, cache);
}

/// Writes the per-shard build breakdown of a sharded engine's cache; a no-op
/// for the unsharded engine (whose `per_shard` is empty).
fn write_shard_builds(out: &mut String, cache: &CacheStats) {
    if !cache.per_shard.is_empty() {
        let builds: Vec<u64> = cache.per_shard.iter().map(|s| s.builds).collect();
        let _ = writeln!(
            out,
            "shard builds over {} shards: {:?}",
            cache.per_shard.len(),
            builds
        );
        let boundary = &cache.boundary;
        if boundary.builds + boundary.hits > 0 {
            let _ = writeln!(
                out,
                "boundary stitch index: {} builds, {} hits, {} entries resident ({:.2} MiB)",
                boundary.builds,
                boundary.hits,
                boundary.resident_entries,
                boundary.resident_bytes as f64 / (1024.0 * 1024.0)
            );
        }
    }
}

/// Executes a parsed command, returning the text to print on stdout.
pub fn run(command: Command) -> Result<String, CliError> {
    let mut out = String::new();
    match command {
        Command::Help => out.push_str(USAGE),
        Command::Profiles => {
            let _ = writeln!(
                out,
                "{:<6} {:<14} {:>8} {:>8} {:>6}",
                "name", "paper dataset", "|V|", "|E|", "tmax"
            );
            for p in tkc_datasets::ALL_PROFILES {
                let _ = writeln!(
                    out,
                    "{:<6} {:<14} {:>8} {:>8} {:>6}",
                    p.name, p.paper_dataset, p.num_vertices, p.num_edges, p.num_timestamps
                );
            }
        }
        Command::Stats { path } => {
            let graph = temporal_graph::loader::read_edge_list(&path)?;
            let stats = DatasetStats::compute(&graph);
            let _ = writeln!(out, "file:      {path}");
            let _ = writeln!(out, "|V|:       {}", stats.num_vertices);
            let _ = writeln!(out, "|E|:       {}", stats.num_edges);
            let _ = writeln!(out, "tmax:      {}", stats.tmax);
            let _ = writeln!(out, "kmax:      {}", stats.kmax);
            let _ = writeln!(
                out,
                "avg deg:   {:.2}",
                graph.average_distinct_degree_in(graph.span())
            );
        }
        Command::Batch {
            path,
            queries,
            algorithm,
            threads,
            budget_mb,
            shards,
            workers,
            affinity,
        } => {
            let graph = temporal_graph::loader::read_edge_list(&path)?;
            let content = std::fs::read_to_string(&queries)
                .map_err(|e| CliError(format!("cannot read {queries}: {e}")))?;
            let parsed = parse_query_csv(&queries, &content, graph.tmax())?;
            let engine_config = tkcore::EngineConfig {
                memory_budget_bytes: budget_mb * 1024 * 1024,
                num_threads: threads,
                ..tkcore::EngineConfig::default()
            };
            if workers > 0 {
                // Submit every query as one request to a multi-worker
                // service; the queue is sized to hold the whole batch.
                let config = ServiceConfig {
                    queue_depth: parsed.len(),
                    workers,
                    affinity,
                    admission_memory_bytes: None,
                    engine: engine_config,
                };
                let service = if shards > 0 {
                    CoreService::start_sharded(graph, ShardPlan::FixedCount(shards), config)?
                } else {
                    CoreService::start(graph, config)
                };
                let tickets: Vec<tkcore::Ticket> = parsed
                    .iter()
                    .map(|query| {
                        let range = query.range();
                        service.submit_with(
                            QueryRequest::single(query.k(), range.start(), range.end()),
                            algorithm,
                        )
                    })
                    .collect::<Result<_, TkError>>()?;
                let mut rows = Vec::with_capacity(tickets.len());
                let mut total_cores = 0u64;
                let mut total_edges = 0u64;
                for ticket in tickets {
                    let reply = ticket.wait()?;
                    let KOutput::Counts(counts) = &reply.response.outcomes[0].output else {
                        unreachable!("batch requests use count mode");
                    };
                    total_cores += counts.num_cores;
                    total_edges += counts.total_edges;
                    rows.push((counts.num_cores, counts.total_edges));
                }
                write_batch_rows(&mut out, &parsed, &rows);
                let stats = service.stats();
                let _ = writeln!(
                    out,
                    "\n{}: {} queries via {} service workers ({} affinity; {} cores, |R| = {} edges)",
                    algorithm,
                    parsed.len(),
                    stats.per_worker.len(),
                    affinity,
                    total_cores,
                    total_edges
                );
                let per_worker: Vec<u64> = stats.per_worker.iter().map(|w| w.completed).collect();
                let _ = writeln!(
                    out,
                    "queue wait {:?} + execute {:?} summed; per-worker completed: {:?}",
                    stats.queue_wait_total, stats.execute_total, per_worker
                );
                write_cache_summary(&mut out, &service.cache_stats());
                service.shutdown();
            } else {
                let (results, batch) = if shards > 0 {
                    ShardedEngine::with_config(graph, ShardPlan::FixedCount(shards), engine_config)?
                        .run_batch_with(&parsed, algorithm, |_| CountingSink::default())?
                } else {
                    QueryEngine::with_config(graph, engine_config).run_batch_with(
                        &parsed,
                        algorithm,
                        |_| CountingSink::default(),
                    )?
                };
                let rows: Vec<(u64, u64)> = results
                    .iter()
                    .map(|(sink, _)| (sink.num_cores, sink.total_edges))
                    .collect();
                write_batch_rows(&mut out, &parsed, &rows);
                write_batch_summary(&mut out, algorithm, &batch);
                write_cache_summary(&mut out, &batch.cache);
            }
        }
        Command::Generate { profile, output } => {
            let profile = DatasetProfile::by_name(&profile).ok_or_else(|| {
                CliError(format!("unknown profile `{profile}` (see `tkc profiles`)"))
            })?;
            let graph = profile.generate();
            temporal_graph::loader::write_edge_list(&graph, &output)?;
            let _ = writeln!(
                out,
                "wrote {} edges over {} vertices ({} timestamps) to {output}",
                graph.num_edges(),
                graph.num_vertices(),
                graph.tmax()
            );
        }
        Command::Query {
            path,
            ks,
            start,
            end,
            algorithm,
            output,
            limit,
            shards,
            workers,
            affinity,
        } => {
            let graph = temporal_graph::loader::read_edge_list(&path)?;
            let start = start.unwrap_or(1);
            let end = end.unwrap_or_else(|| graph.tmax());
            let request = match ks {
                KSpec::Single(k) => QueryRequest::single(k, start, end),
                KSpec::Range(lo, hi) => QueryRequest::sweep(lo..=hi, start, end),
            };
            let request = match output {
                OutputKind::Count => request.count(),
                OutputKind::Full => request.materialize(),
            };
            // A k-range sweep reuses one cached index per (shard and) k; a
            // single-k query without shards runs the algorithm directly.
            // --workers routes the request through a CoreService instead.
            let mut service_note = None;
            let (response, cache) = if workers > 0 {
                let config = ServiceConfig {
                    workers,
                    affinity,
                    ..ServiceConfig::default()
                };
                let service = if shards > 0 {
                    CoreService::start_sharded(
                        graph.clone(),
                        ShardPlan::FixedCount(shards),
                        config,
                    )?
                } else {
                    CoreService::start(graph.clone(), config)
                };
                let reply = service.submit_with(request, algorithm)?.wait()?;
                service_note = Some(format!(
                    "service: {} workers ({affinity} affinity), request {} queued {:?}, \
                     executed {:?} on worker {}",
                    workers.max(1),
                    reply.id,
                    reply.queue_wait,
                    reply.execute_time,
                    reply.worker
                ));
                let cache = service.cache_stats();
                service.shutdown();
                (reply.response, Some(cache))
            } else if shards > 0 {
                let engine = Arc::new(ShardedEngine::new(
                    graph.clone(),
                    ShardPlan::FixedCount(shards),
                )?);
                let backend = ShardedBackend::with_algorithm(Arc::clone(&engine), algorithm);
                let response = request.run(engine.graph(), &backend)?;
                (response, Some(engine.cache_stats()))
            } else {
                match ks {
                    KSpec::Range(..) => {
                        let engine = Arc::new(QueryEngine::new(graph.clone()));
                        let backend = CachedBackend::with_algorithm(Arc::clone(&engine), algorithm);
                        // Run against the engine's own graph so the backend's
                        // O(1) identity fast path applies.
                        let response = request.run(engine.graph(), &backend)?;
                        (response, Some(engine.cache_stats()))
                    }
                    KSpec::Single(_) => {
                        (request.run(&graph, &algorithm as &dyn CoreBackend)?, None)
                    }
                }
            };
            for outcome in &response.outcomes {
                let k = outcome.k;
                match &outcome.output {
                    KOutput::Counts(counts) => {
                        let _ = writeln!(
                            out,
                            "{}: {} distinct temporal {}-cores in {}, |R| = {} edges ({:?})",
                            algorithm,
                            counts.num_cores,
                            k,
                            response.window,
                            counts.total_edges,
                            outcome.stats.total_time()
                        );
                    }
                    KOutput::Cores(cores) => {
                        let _ = writeln!(
                            out,
                            "{}: {} distinct temporal {}-cores in {} ({:?})",
                            algorithm,
                            cores.len(),
                            k,
                            response.window,
                            outcome.stats.total_time()
                        );
                        for core in cores.iter().take(limit) {
                            let _ = writeln!(
                                out,
                                "  TTI {:<12} {:>5} vertices {:>6} edges",
                                core.tti.to_string(),
                                core.vertices(&graph).len(),
                                core.num_edges()
                            );
                        }
                        if cores.len() > limit {
                            let _ = writeln!(
                                out,
                                "  ... and {} more (use --limit)",
                                cores.len() - limit
                            );
                        }
                    }
                    KOutput::Streamed => unreachable!("the CLI never requests streaming"),
                }
            }
            if let Some(note) = service_note {
                let _ = writeln!(out, "{note}");
            }
            if let Some(cache) = cache {
                let _ = writeln!(
                    out,
                    "index cache: {} misses over {} k values ({} hits)",
                    cache.misses,
                    response.outcomes.len(),
                    cache.hits
                );
                write_shard_builds(&mut out, &cache);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_help_and_profiles() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&strings(&["help"])).unwrap(), Command::Help);
        assert_eq!(
            parse_args(&strings(&["profiles"])).unwrap(),
            Command::Profiles
        );
        assert!(run(Command::Help).unwrap().contains("USAGE"));
        assert!(run(Command::Profiles).unwrap().contains("CollegeMsg"));
    }

    #[test]
    fn parses_query_flags() {
        let cmd = parse_args(&strings(&[
            "query", "g.txt", "--k", "3", "--start", "2", "--end", "9", "--algo", "otcd",
            "--output", "count", "--limit", "5",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Query {
                path: "g.txt".into(),
                ks: KSpec::Single(3),
                start: Some(2),
                end: Some(9),
                algorithm: Algorithm::Otcd,
                output: OutputKind::Count,
                limit: 5,
                shards: 0,
                workers: 0,
                affinity: Affinity::Shared,
            }
        );
        // --algorithm and --count-only remain as aliases.
        let legacy = parse_args(&strings(&[
            "query",
            "g.txt",
            "--k",
            "3",
            "--algorithm",
            "enum-base",
            "--count-only",
        ]))
        .unwrap();
        assert_eq!(
            legacy,
            Command::Query {
                path: "g.txt".into(),
                ks: KSpec::Single(3),
                start: None,
                end: None,
                algorithm: Algorithm::EnumBase,
                output: OutputKind::Count,
                limit: 20,
                shards: 0,
                workers: 0,
                affinity: Affinity::Shared,
            }
        );
        // Sharded, service-backed execution with shard-affine routing.
        let sharded = parse_args(&strings(&[
            "query",
            "g.txt",
            "--k",
            "3",
            "--shards",
            "4",
            "--workers",
            "2",
            "--affinity",
            "shard",
        ]))
        .unwrap();
        assert_eq!(
            sharded,
            Command::Query {
                path: "g.txt".into(),
                ks: KSpec::Single(3),
                start: None,
                end: None,
                algorithm: Algorithm::Enum,
                output: OutputKind::Full,
                limit: 20,
                shards: 4,
                workers: 2,
                affinity: Affinity::Shard,
            }
        );
        assert!(parse_args(&strings(&[
            "query",
            "g.txt",
            "--k",
            "2",
            "--affinity",
            "wat"
        ]))
        .is_err());
    }

    #[test]
    fn parses_k_range_flag() {
        for spelled in ["2..=5", "2..5", "2-5", " 2 ..= 5 "] {
            let cmd = parse_args(&strings(&["query", "g.txt", "--k-range", spelled])).unwrap();
            assert_eq!(
                cmd,
                Command::Query {
                    path: "g.txt".into(),
                    ks: KSpec::Range(2, 5),
                    start: None,
                    end: None,
                    algorithm: Algorithm::Enum,
                    output: OutputKind::Full,
                    limit: 20,
                    shards: 0,
                    workers: 0,
                    affinity: Affinity::Shared,
                },
                "{spelled}"
            );
        }
        assert!(parse_args(&strings(&["query", "g.txt", "--k-range", "5..=2"])).is_err());
        assert!(parse_args(&strings(&["query", "g.txt", "--k-range", "0..=2"])).is_err());
        assert!(parse_args(&strings(&["query", "g.txt", "--k-range", "7"])).is_err());
        assert!(parse_args(&strings(&[
            "query",
            "g.txt",
            "--k",
            "2",
            "--k-range",
            "2..=3"
        ]))
        .is_err());
    }

    #[test]
    fn rejects_bad_arguments() {
        assert!(parse_args(&strings(&["query", "g.txt"])).is_err()); // missing --k
        assert!(parse_args(&strings(&["query", "g.txt", "--k", "x"])).is_err());
        assert!(parse_args(&strings(&["query", "g.txt", "--k", "2", "--algo", "magic"])).is_err());
        assert!(parse_args(&strings(&["query", "g.txt", "--k", "2", "--output", "wat"])).is_err());
        assert!(parse_args(&strings(&["frobnicate"])).is_err());
        assert!(parse_args(&strings(&["stats"])).is_err());
        assert!(parse_args(&strings(&["generate", "CM"])).is_err());
    }

    #[test]
    fn zero_k_is_a_rendered_tk_error_not_a_panic() {
        let dir = std::env::temp_dir().join("tkc-cli-zero-k");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fb.txt");
        let path_str = path.to_string_lossy().to_string();
        run(Command::Generate {
            profile: "FB".into(),
            output: path_str.clone(),
        })
        .unwrap();
        let err = run(Command::Query {
            path: path_str,
            ks: KSpec::Single(0),
            start: None,
            end: None,
            algorithm: Algorithm::Enum,
            output: OutputKind::Count,
            limit: 10,
            shards: 0,
            workers: 0,
            affinity: Affinity::Shared,
        })
        .unwrap_err();
        assert!(err.0.contains("k = 0"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn generate_stats_query_round_trip() {
        let dir = std::env::temp_dir().join("tkc-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fb.txt");
        let path_str = path.to_string_lossy().to_string();

        let out = run(Command::Generate {
            profile: "FB".into(),
            output: path_str.clone(),
        })
        .unwrap();
        assert!(out.contains("wrote"));

        let out = run(Command::Stats {
            path: path_str.clone(),
        })
        .unwrap();
        assert!(out.contains("kmax"));

        let out = run(Command::Query {
            path: path_str.clone(),
            ks: KSpec::Single(3),
            start: None,
            end: None,
            algorithm: Algorithm::Enum,
            output: OutputKind::Count,
            limit: 10,
            shards: 0,
            workers: 0,
            affinity: Affinity::Shared,
        })
        .unwrap();
        assert!(out.contains("distinct temporal 3-cores"));

        // A k-range sweep prints one line per k plus the cache summary, and
        // builds each index exactly once.
        let out = run(Command::Query {
            path: path_str.clone(),
            ks: KSpec::Range(2, 4),
            start: None,
            end: None,
            algorithm: Algorithm::Enum,
            output: OutputKind::Count,
            limit: 10,
            shards: 0,
            workers: 0,
            affinity: Affinity::Shared,
        })
        .unwrap();
        for k in 2..=4 {
            assert!(
                out.contains(&format!("distinct temporal {k}-cores")),
                "{out}"
            );
        }
        assert!(
            out.contains("index cache: 3 misses over 3 k values"),
            "{out}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sharded_and_service_query_match_direct_execution() {
        let dir = std::env::temp_dir().join("tkc-cli-sharded-query");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fb.txt");
        let path_str = path.to_string_lossy().to_string();
        run(Command::Generate {
            profile: "FB".into(),
            output: path_str.clone(),
        })
        .unwrap();
        let query = |shards: usize, workers: usize, affinity: Affinity| {
            run(Command::Query {
                path: path_str.clone(),
                ks: KSpec::Single(3),
                start: None,
                end: None,
                algorithm: Algorithm::Enum,
                output: OutputKind::Count,
                limit: 10,
                shards,
                workers,
                affinity,
            })
            .unwrap()
        };
        let direct = query(0, 0, Affinity::Shared);
        let first_line = direct.lines().next().expect("count line present");
        // Strip the per-run timing suffix `(...)` before comparing.
        let direct_counts = first_line
            .rsplit_once(" (")
            .map(|(head, _)| head)
            .unwrap_or(first_line)
            .to_string();
        // Sharded, service-backed, and combined execution all report the
        // same counts line; the extra serving detail rides below it.
        let sharded = query(4, 0, Affinity::Shared);
        assert!(sharded.contains(&direct_counts), "{sharded}\n{direct}");
        assert!(sharded.contains("shard builds over 4 shards"), "{sharded}");
        let served = query(0, 2, Affinity::Shared);
        assert!(served.contains(&direct_counts), "{served}");
        assert!(served.contains("service: 2 workers"), "{served}");
        let both = query(4, 2, Affinity::Shard);
        assert!(both.contains(&direct_counts), "{both}");
        assert!(both.contains("shard builds over 4 shards"), "{both}");
        assert!(both.contains("shard affinity"), "{both}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parses_batch_flags() {
        let cmd = parse_args(&strings(&[
            "batch",
            "g.txt",
            "q.csv",
            "--algo",
            "enum-base",
            "--threads",
            "4",
            "--budget-mb",
            "64",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Batch {
                path: "g.txt".into(),
                queries: "q.csv".into(),
                algorithm: Algorithm::EnumBase,
                threads: 4,
                budget_mb: 64,
                shards: 0,
                workers: 0,
                affinity: Affinity::Shared,
            }
        );
        let sharded = parse_args(&strings(&[
            "batch",
            "g.txt",
            "q.csv",
            "--shards",
            "4",
            "--workers",
            "2",
            "--affinity",
            "shard",
        ]))
        .unwrap();
        assert_eq!(
            sharded,
            Command::Batch {
                path: "g.txt".into(),
                queries: "q.csv".into(),
                algorithm: Algorithm::Enum,
                threads: 0,
                budget_mb: 256,
                shards: 4,
                workers: 2,
                affinity: Affinity::Shard,
            }
        );
        assert!(parse_args(&strings(&["batch", "g.txt"])).is_err());
        assert!(parse_args(&strings(&["batch", "g.txt", "q.csv", "--budget-mb", "0"])).is_err());
        assert!(parse_args(&strings(&["batch", "g.txt", "q.csv", "--wat"])).is_err());
    }

    #[test]
    fn parse_query_csv_accepts_comments_and_span_queries() {
        let parsed =
            parse_query_csv("q.csv", "# header\n2,1,5\n\n3  # whole span\n2, 2, 2\n", 9).unwrap();
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[0].k(), 2);
        assert_eq!(parsed[0].range().to_string(), "[1, 5]");
        assert_eq!(parsed[1].range().to_string(), "[1, 9]");
        assert_eq!(parsed[2].range().to_string(), "[2, 2]");

        assert!(parse_query_csv("q.csv", "", 9).is_err());
        assert!(parse_query_csv("q.csv", "0,1,5", 9).is_err());
        assert!(parse_query_csv("q.csv", "2,5,1", 9).is_err());
        assert!(parse_query_csv("q.csv", "2,1", 9).is_err());
        assert!(parse_query_csv("q.csv", "x,1,5", 9).is_err());

        // A past-tmax row is caught at parse time with the offending line,
        // instead of failing the whole batch later without context.
        let err = parse_query_csv("q.csv", "2,1,5\n2,50,60\n", 9).unwrap_err();
        assert!(err.0.contains("line 2"), "{err}");
        assert!(err.0.contains("past the graph"), "{err}");
    }

    #[test]
    fn batch_round_trip_matches_per_query_runs() {
        let dir = std::env::temp_dir().join("tkc-cli-batch-test");
        std::fs::create_dir_all(&dir).unwrap();
        let graph_path = dir.join("fb.txt");
        let graph_str = graph_path.to_string_lossy().to_string();
        run(Command::Generate {
            profile: "FB".into(),
            output: graph_str.clone(),
        })
        .unwrap();

        let csv_path = dir.join("queries.csv");
        std::fs::write(&csv_path, "3,1,120\n3,40,200\n2\n").unwrap();
        let out = run(Command::Batch {
            path: graph_str.clone(),
            queries: csv_path.to_string_lossy().to_string(),
            algorithm: Algorithm::Enum,
            threads: 2,
            budget_mb: 32,
            shards: 0,
            workers: 0,
            affinity: Affinity::Shared,
        })
        .unwrap();
        assert!(out.contains("3 queries"), "{out}");
        assert!(out.contains("index cache:"), "{out}");

        // Cross-check one query against the one-shot path.
        let graph = temporal_graph::loader::read_edge_list(&graph_str).unwrap();
        let mut sink = CountingSink::default();
        tkcore::TimeRangeKCoreQuery::new(3, temporal_graph::TimeWindow::new(1, 120))
            .unwrap()
            .run_with(&graph, Algorithm::Enum, &mut sink);
        let expected_row = format!(
            "{:<6} {:<14} {:>10} {:>12}",
            3, "[1, 120]", sink.num_cores, sink.total_edges
        );
        assert!(
            out.contains(expected_row.trim_end()),
            "missing `{expected_row}` in:\n{out}"
        );

        // The same batch through a 4-shard engine and through a 2-worker
        // service reports identical per-query rows.
        let sharded = run(Command::Batch {
            path: graph_str.clone(),
            queries: csv_path.to_string_lossy().to_string(),
            algorithm: Algorithm::Enum,
            threads: 2,
            budget_mb: 32,
            shards: 4,
            workers: 0,
            affinity: Affinity::Shared,
        })
        .unwrap();
        assert!(sharded.contains(expected_row.trim_end()), "{sharded}");
        assert!(sharded.contains("shard builds over 4 shards"), "{sharded}");

        let served = run(Command::Batch {
            path: graph_str.clone(),
            queries: csv_path.to_string_lossy().to_string(),
            algorithm: Algorithm::Enum,
            threads: 2,
            budget_mb: 32,
            shards: 4,
            workers: 2,
            affinity: Affinity::Shared,
        })
        .unwrap();
        assert!(served.contains(expected_row.trim_end()), "{served}");
        assert!(served.contains("via 2 service workers"), "{served}");
        assert!(served.contains("per-worker completed"), "{served}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_profile_and_missing_file_are_errors() {
        assert!(run(Command::Generate {
            profile: "NOPE".into(),
            output: "/tmp/x.txt".into()
        })
        .is_err());
        assert!(run(Command::Stats {
            path: "/definitely/missing.txt".into()
        })
        .is_err());
    }
}
