//! Implementation of the `tkc` command-line tool.
//!
//! The binary is a thin wrapper around [`run`]; keeping the logic in a
//! library makes the argument parsing and command dispatch unit-testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use tkc_datasets::{DatasetProfile, DatasetStats};
use tkcore::{Algorithm, CollectingSink, CountingSink, TimeRangeKCoreQuery};

/// Errors reported to the CLI user.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<temporal_graph::TemporalGraphError> for CliError {
    fn from(e: temporal_graph::TemporalGraphError) -> Self {
        CliError(e.to_string())
    }
}

/// Usage text printed by `tkc help` and on argument errors.
pub const USAGE: &str = "\
tkc — time-range temporal k-core queries

USAGE:
  tkc stats <edge-list>
      Print |V|, |E|, tmax and kmax of a temporal edge-list file (`u v t` per line).

  tkc query <edge-list> --k <K> [--start <TS>] [--end <TE>]
            [--algorithm enum|enum-base|otcd] [--count-only] [--limit <N>]
      Enumerate all distinct temporal k-cores in the range [TS, TE]
      (default: the whole time span), printing each core's tightest time
      interval, vertex count and edge count.

  tkc batch <edge-list> <queries-csv> [--algorithm enum|enum-base|otcd|naive]
            [--threads <N>] [--budget-mb <M>]
      Run a batch of queries through the cached query engine: one span-wide
      core-window index per k, restricted per query and fanned across
      threads.  The CSV has one query per line, `k,start,end` (or just `k`
      for the whole time span; `#` starts a comment).  Prints per-query
      counts plus batch timing and cache statistics.

  tkc generate <profile> <output-file>
      Write the scaled synthetic analogue of one of the paper's datasets
      (FB BO CM EM MC MO AU LR EN SU WT WK PL YT) as an edge-list file.

  tkc profiles
      List the available dataset profiles.
";

/// Parsed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `tkc stats <file>`
    Stats {
        /// Path of the edge-list file.
        path: String,
    },
    /// `tkc query <file> --k K ...`
    Query {
        /// Path of the edge-list file.
        path: String,
        /// Query parameter `k`.
        k: usize,
        /// Query range start (defaults to 1).
        start: Option<u32>,
        /// Query range end (defaults to the last timestamp).
        end: Option<u32>,
        /// Algorithm to run.
        algorithm: Algorithm,
        /// Only report counts, do not materialise cores.
        count_only: bool,
        /// Print at most this many cores.
        limit: usize,
    },
    /// `tkc batch <file> <queries.csv> ...`
    Batch {
        /// Path of the edge-list file.
        path: String,
        /// Path of the query CSV (`k,start,end` per line).
        queries: String,
        /// Algorithm to run for every query.
        algorithm: Algorithm,
        /// Worker threads (0 = one per CPU).
        threads: usize,
        /// Skyline-cache memory budget in MiB.
        budget_mb: usize,
    },
    /// `tkc generate <profile> <out>`
    Generate {
        /// Profile name (e.g. `CM`).
        profile: String,
        /// Output edge-list path.
        output: String,
    },
    /// `tkc profiles`
    Profiles,
    /// `tkc help`
    Help,
}

/// Parses the command line (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "profiles" => Ok(Command::Profiles),
        "stats" => {
            let path = it
                .next()
                .ok_or_else(|| CliError("stats requires an edge-list path".into()))?;
            Ok(Command::Stats { path: path.clone() })
        }
        "generate" => {
            let profile = it
                .next()
                .ok_or_else(|| CliError("generate requires a profile name".into()))?;
            let output = it
                .next()
                .ok_or_else(|| CliError("generate requires an output path".into()))?;
            Ok(Command::Generate {
                profile: profile.clone(),
                output: output.clone(),
            })
        }
        "batch" => {
            let path = it
                .next()
                .ok_or_else(|| CliError("batch requires an edge-list path".into()))?
                .clone();
            let queries = it
                .next()
                .ok_or_else(|| CliError("batch requires a query CSV path".into()))?
                .clone();
            let mut algorithm = Algorithm::Enum;
            let mut threads = 0usize;
            let mut budget_mb = 256usize;
            let rest: Vec<&String> = it.collect();
            let mut i = 0;
            while i < rest.len() {
                let flag = rest[i].as_str();
                let value = |what: &str| -> Result<&String, CliError> {
                    rest.get(i + 1)
                        .copied()
                        .ok_or_else(|| CliError(format!("{what} requires a value")))
                };
                match flag {
                    "--algorithm" => {
                        algorithm = parse_algorithm(value("--algorithm")?)?;
                        i += 1;
                    }
                    "--threads" => {
                        threads = parse_num(value("--threads")?, "--threads")?;
                        i += 1;
                    }
                    "--budget-mb" => {
                        budget_mb = parse_num(value("--budget-mb")?, "--budget-mb")?;
                        if budget_mb == 0 {
                            return Err(CliError("--budget-mb must be at least 1".into()));
                        }
                        i += 1;
                    }
                    other => return Err(CliError(format!("unknown flag `{other}`"))),
                }
                i += 1;
            }
            Ok(Command::Batch {
                path,
                queries,
                algorithm,
                threads,
                budget_mb,
            })
        }
        "query" => {
            let path = it
                .next()
                .ok_or_else(|| CliError("query requires an edge-list path".into()))?
                .clone();
            let mut k: Option<usize> = None;
            let mut start = None;
            let mut end = None;
            let mut algorithm = Algorithm::Enum;
            let mut count_only = false;
            let mut limit = 20usize;
            let rest: Vec<&String> = it.collect();
            let mut i = 0;
            while i < rest.len() {
                let flag = rest[i].as_str();
                let value = |what: &str| -> Result<&String, CliError> {
                    rest.get(i + 1)
                        .copied()
                        .ok_or_else(|| CliError(format!("{what} requires a value")))
                };
                match flag {
                    "--k" => {
                        k = Some(parse_num(value("--k")?, "--k")?);
                        i += 1;
                    }
                    "--start" => {
                        start = Some(parse_num(value("--start")?, "--start")? as u32);
                        i += 1;
                    }
                    "--end" => {
                        end = Some(parse_num(value("--end")?, "--end")? as u32);
                        i += 1;
                    }
                    "--limit" => {
                        limit = parse_num(value("--limit")?, "--limit")?;
                        i += 1;
                    }
                    "--algorithm" => {
                        algorithm = parse_algorithm(value("--algorithm")?)?;
                        i += 1;
                    }
                    "--count-only" => count_only = true,
                    other => return Err(CliError(format!("unknown flag `{other}`"))),
                }
                i += 1;
            }
            let k = k.ok_or_else(|| CliError("query requires --k <K>".into()))?;
            if k == 0 {
                return Err(CliError("--k must be at least 1".into()));
            }
            Ok(Command::Query {
                path,
                k,
                start,
                end,
                algorithm,
                count_only,
                limit,
            })
        }
        other => Err(CliError(format!("unknown command `{other}`\n\n{USAGE}"))),
    }
}

fn parse_num(s: &str, what: &str) -> Result<usize, CliError> {
    s.parse()
        .map_err(|_| CliError(format!("{what}: `{s}` is not a number")))
}

fn parse_algorithm(s: &str) -> Result<Algorithm, CliError> {
    match s {
        "enum" => Ok(Algorithm::Enum),
        "enum-base" => Ok(Algorithm::EnumBase),
        "otcd" => Ok(Algorithm::Otcd),
        "naive" => Ok(Algorithm::Naive),
        other => Err(CliError(format!(
            "unknown algorithm `{other}` (expected enum, enum-base, otcd, naive)"
        ))),
    }
}

/// Parses a batch query CSV: one `k[,start,end]` query per line, blank lines
/// and `#` comments ignored.  `path` labels parse errors.
fn parse_query_csv(
    path: &str,
    content: &str,
    tmax: u32,
) -> Result<Vec<tkcore::TimeRangeKCoreQuery>, CliError> {
    let mut queries = Vec::new();
    for (lineno, raw) in content.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        let err = |msg: String| CliError(format!("{path}, line {}: {msg}", lineno + 1));
        let k: usize = fields[0]
            .parse()
            .map_err(|_| err(format!("`{}` is not a valid k", fields[0])))?;
        if k == 0 {
            return Err(err("k must be at least 1".into()));
        }
        let range = match fields.len() {
            1 => temporal_graph::TimeWindow::new(1, tmax.max(1)),
            3 => {
                let start: u32 = fields[1]
                    .parse()
                    .map_err(|_| err(format!("`{}` is not a valid start", fields[1])))?;
                let end: u32 = fields[2]
                    .parse()
                    .map_err(|_| err(format!("`{}` is not a valid end", fields[2])))?;
                temporal_graph::TimeWindow::try_new(start, end)
                    .ok_or_else(|| err(format!("invalid range [{start}, {end}]")))?
            }
            n => {
                return Err(err(format!(
                    "expected `k` or `k,start,end`, got {n} fields"
                )))
            }
        };
        queries.push(tkcore::TimeRangeKCoreQuery::new(k, range));
    }
    if queries.is_empty() {
        return Err(CliError("query CSV contains no queries".into()));
    }
    Ok(queries)
}

/// Executes a parsed command, returning the text to print on stdout.
pub fn run(command: Command) -> Result<String, CliError> {
    let mut out = String::new();
    match command {
        Command::Help => out.push_str(USAGE),
        Command::Profiles => {
            let _ = writeln!(
                out,
                "{:<6} {:<14} {:>8} {:>8} {:>6}",
                "name", "paper dataset", "|V|", "|E|", "tmax"
            );
            for p in tkc_datasets::ALL_PROFILES {
                let _ = writeln!(
                    out,
                    "{:<6} {:<14} {:>8} {:>8} {:>6}",
                    p.name, p.paper_dataset, p.num_vertices, p.num_edges, p.num_timestamps
                );
            }
        }
        Command::Stats { path } => {
            let graph = temporal_graph::loader::read_edge_list(&path)?;
            let stats = DatasetStats::compute(&graph);
            let _ = writeln!(out, "file:      {path}");
            let _ = writeln!(out, "|V|:       {}", stats.num_vertices);
            let _ = writeln!(out, "|E|:       {}", stats.num_edges);
            let _ = writeln!(out, "tmax:      {}", stats.tmax);
            let _ = writeln!(out, "kmax:      {}", stats.kmax);
            let _ = writeln!(
                out,
                "avg deg:   {:.2}",
                graph.average_distinct_degree_in(graph.span())
            );
        }
        Command::Batch {
            path,
            queries,
            algorithm,
            threads,
            budget_mb,
        } => {
            let graph = temporal_graph::loader::read_edge_list(&path)?;
            let content = std::fs::read_to_string(&queries)
                .map_err(|e| CliError(format!("cannot read {queries}: {e}")))?;
            let parsed = parse_query_csv(&queries, &content, graph.tmax())?;
            let engine = tkcore::QueryEngine::with_config(
                graph,
                tkcore::EngineConfig {
                    memory_budget_bytes: budget_mb * 1024 * 1024,
                    num_threads: threads,
                },
            );
            let (results, batch) =
                engine.run_batch_with(&parsed, algorithm, |_| CountingSink::default());
            let _ = writeln!(
                out,
                "{:<6} {:<14} {:>10} {:>12}",
                "k", "range", "cores", "|R| (edges)"
            );
            for (query, (sink, _)) in parsed.iter().zip(&results) {
                let _ = writeln!(
                    out,
                    "{:<6} {:<14} {:>10} {:>12}",
                    query.k(),
                    query.range().to_string(),
                    sink.num_cores,
                    sink.total_edges
                );
            }
            let cache = batch.cache;
            let _ = writeln!(
                out,
                "\n{}: {} queries on {} threads in {:?} ({} cores, |R| = {} edges)",
                algorithm.name(),
                batch.num_queries,
                batch.threads,
                batch.wall_time,
                batch.total_cores,
                batch.total_result_edges
            );
            let _ = writeln!(
                out,
                "precompute {:?} + enumerate {:?} summed across workers",
                batch.precompute_time, batch.enumerate_time
            );
            let _ = writeln!(
                out,
                "index cache: {} hits, {} misses, {} evictions, {} indexes resident ({:.2} MiB)",
                cache.hits,
                cache.misses,
                cache.evictions,
                cache.resident_indexes,
                cache.resident_bytes as f64 / (1024.0 * 1024.0)
            );
        }
        Command::Generate { profile, output } => {
            let profile = DatasetProfile::by_name(&profile).ok_or_else(|| {
                CliError(format!("unknown profile `{profile}` (see `tkc profiles`)"))
            })?;
            let graph = profile.generate();
            temporal_graph::loader::write_edge_list(&graph, &output)?;
            let _ = writeln!(
                out,
                "wrote {} edges over {} vertices ({} timestamps) to {output}",
                graph.num_edges(),
                graph.num_vertices(),
                graph.tmax()
            );
        }
        Command::Query {
            path,
            k,
            start,
            end,
            algorithm,
            count_only,
            limit,
        } => {
            let graph = temporal_graph::loader::read_edge_list(&path)?;
            let range = temporal_graph::TimeWindow::try_new(
                start.unwrap_or(1),
                end.unwrap_or(graph.tmax()).min(graph.tmax()),
            )
            .ok_or_else(|| CliError("invalid query range".into()))?;
            let query = TimeRangeKCoreQuery::new(k, range);
            if count_only {
                let mut sink = CountingSink::default();
                let stats = query.run_with(&graph, algorithm, &mut sink);
                let _ = writeln!(
                    out,
                    "{}: {} distinct temporal {}-cores in {}, |R| = {} edges ({:?})",
                    algorithm.name(),
                    sink.num_cores,
                    k,
                    range,
                    sink.total_edges,
                    stats.total_time()
                );
            } else {
                let mut sink = CollectingSink::default();
                let stats = query.run_with(&graph, algorithm, &mut sink);
                let cores = sink.into_sorted();
                let _ = writeln!(
                    out,
                    "{}: {} distinct temporal {}-cores in {} ({:?})",
                    algorithm.name(),
                    cores.len(),
                    k,
                    range,
                    stats.total_time()
                );
                for core in cores.iter().take(limit) {
                    let _ = writeln!(
                        out,
                        "  TTI {:<12} {:>5} vertices {:>6} edges",
                        core.tti.to_string(),
                        core.vertices(&graph).len(),
                        core.num_edges()
                    );
                }
                if cores.len() > limit {
                    let _ = writeln!(out, "  ... and {} more (use --limit)", cores.len() - limit);
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_help_and_profiles() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&strings(&["help"])).unwrap(), Command::Help);
        assert_eq!(
            parse_args(&strings(&["profiles"])).unwrap(),
            Command::Profiles
        );
        assert!(run(Command::Help).unwrap().contains("USAGE"));
        assert!(run(Command::Profiles).unwrap().contains("CollegeMsg"));
    }

    #[test]
    fn parses_query_flags() {
        let cmd = parse_args(&strings(&[
            "query",
            "g.txt",
            "--k",
            "3",
            "--start",
            "2",
            "--end",
            "9",
            "--algorithm",
            "otcd",
            "--count-only",
            "--limit",
            "5",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Query {
                path: "g.txt".into(),
                k: 3,
                start: Some(2),
                end: Some(9),
                algorithm: Algorithm::Otcd,
                count_only: true,
                limit: 5,
            }
        );
    }

    #[test]
    fn rejects_bad_arguments() {
        assert!(parse_args(&strings(&["query", "g.txt"])).is_err()); // missing --k
        assert!(parse_args(&strings(&["query", "g.txt", "--k", "0"])).is_err());
        assert!(parse_args(&strings(&["query", "g.txt", "--k", "x"])).is_err());
        assert!(parse_args(&strings(&[
            "query",
            "g.txt",
            "--k",
            "2",
            "--algorithm",
            "magic"
        ]))
        .is_err());
        assert!(parse_args(&strings(&["frobnicate"])).is_err());
        assert!(parse_args(&strings(&["stats"])).is_err());
        assert!(parse_args(&strings(&["generate", "CM"])).is_err());
    }

    #[test]
    fn generate_stats_query_round_trip() {
        let dir = std::env::temp_dir().join("tkc-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fb.txt");
        let path_str = path.to_string_lossy().to_string();

        let out = run(Command::Generate {
            profile: "FB".into(),
            output: path_str.clone(),
        })
        .unwrap();
        assert!(out.contains("wrote"));

        let out = run(Command::Stats {
            path: path_str.clone(),
        })
        .unwrap();
        assert!(out.contains("kmax"));

        let out = run(Command::Query {
            path: path_str.clone(),
            k: 3,
            start: None,
            end: None,
            algorithm: Algorithm::Enum,
            count_only: true,
            limit: 10,
        })
        .unwrap();
        assert!(out.contains("distinct temporal 3-cores"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parses_batch_flags() {
        let cmd = parse_args(&strings(&[
            "batch",
            "g.txt",
            "q.csv",
            "--algorithm",
            "enum-base",
            "--threads",
            "4",
            "--budget-mb",
            "64",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Batch {
                path: "g.txt".into(),
                queries: "q.csv".into(),
                algorithm: Algorithm::EnumBase,
                threads: 4,
                budget_mb: 64,
            }
        );
        assert!(parse_args(&strings(&["batch", "g.txt"])).is_err());
        assert!(parse_args(&strings(&["batch", "g.txt", "q.csv", "--budget-mb", "0"])).is_err());
        assert!(parse_args(&strings(&["batch", "g.txt", "q.csv", "--wat"])).is_err());
    }

    #[test]
    fn parse_query_csv_accepts_comments_and_span_queries() {
        let parsed =
            parse_query_csv("q.csv", "# header\n2,1,5\n\n3  # whole span\n2, 2, 2\n", 9).unwrap();
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[0].k(), 2);
        assert_eq!(parsed[0].range().to_string(), "[1, 5]");
        assert_eq!(parsed[1].range().to_string(), "[1, 9]");
        assert_eq!(parsed[2].range().to_string(), "[2, 2]");

        assert!(parse_query_csv("q.csv", "", 9).is_err());
        assert!(parse_query_csv("q.csv", "0,1,5", 9).is_err());
        assert!(parse_query_csv("q.csv", "2,5,1", 9).is_err());
        assert!(parse_query_csv("q.csv", "2,1", 9).is_err());
        assert!(parse_query_csv("q.csv", "x,1,5", 9).is_err());
    }

    #[test]
    fn batch_round_trip_matches_per_query_runs() {
        let dir = std::env::temp_dir().join("tkc-cli-batch-test");
        std::fs::create_dir_all(&dir).unwrap();
        let graph_path = dir.join("fb.txt");
        let graph_str = graph_path.to_string_lossy().to_string();
        run(Command::Generate {
            profile: "FB".into(),
            output: graph_str.clone(),
        })
        .unwrap();

        let csv_path = dir.join("queries.csv");
        std::fs::write(&csv_path, "3,1,120\n3,40,200\n2\n").unwrap();
        let out = run(Command::Batch {
            path: graph_str.clone(),
            queries: csv_path.to_string_lossy().to_string(),
            algorithm: Algorithm::Enum,
            threads: 2,
            budget_mb: 32,
        })
        .unwrap();
        assert!(out.contains("3 queries"), "{out}");
        assert!(out.contains("index cache:"), "{out}");

        // Cross-check one query against the one-shot path.
        let graph = temporal_graph::loader::read_edge_list(&graph_str).unwrap();
        let mut sink = CountingSink::default();
        TimeRangeKCoreQuery::new(3, temporal_graph::TimeWindow::new(1, 120)).run_with(
            &graph,
            Algorithm::Enum,
            &mut sink,
        );
        let expected_row = format!(
            "{:<6} {:<14} {:>10} {:>12}",
            3, "[1, 120]", sink.num_cores, sink.total_edges
        );
        assert!(
            out.contains(expected_row.trim_end()),
            "missing `{expected_row}` in:\n{out}"
        );

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_profile_and_missing_file_are_errors() {
        assert!(run(Command::Generate {
            profile: "NOPE".into(),
            output: "/tmp/x.txt".into()
        })
        .is_err());
        assert!(run(Command::Stats {
            path: "/definitely/missing.txt".into()
        })
        .is_err());
    }
}
