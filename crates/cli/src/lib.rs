//! Implementation of the `tkc` command-line tool.
//!
//! The binary is a thin wrapper around [`run`]; keeping the logic in a
//! library makes the argument parsing and command dispatch unit-testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use tkc_datasets::{DatasetProfile, DatasetStats};
use tkcore::{Algorithm, CollectingSink, CountingSink, TimeRangeKCoreQuery};

/// Errors reported to the CLI user.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<temporal_graph::TemporalGraphError> for CliError {
    fn from(e: temporal_graph::TemporalGraphError) -> Self {
        CliError(e.to_string())
    }
}

/// Usage text printed by `tkc help` and on argument errors.
pub const USAGE: &str = "\
tkc — time-range temporal k-core queries

USAGE:
  tkc stats <edge-list>
      Print |V|, |E|, tmax and kmax of a temporal edge-list file (`u v t` per line).

  tkc query <edge-list> --k <K> [--start <TS>] [--end <TE>]
            [--algorithm enum|enum-base|otcd] [--count-only] [--limit <N>]
      Enumerate all distinct temporal k-cores in the range [TS, TE]
      (default: the whole time span), printing each core's tightest time
      interval, vertex count and edge count.

  tkc generate <profile> <output-file>
      Write the scaled synthetic analogue of one of the paper's datasets
      (FB BO CM EM MC MO AU LR EN SU WT WK PL YT) as an edge-list file.

  tkc profiles
      List the available dataset profiles.
";

/// Parsed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `tkc stats <file>`
    Stats {
        /// Path of the edge-list file.
        path: String,
    },
    /// `tkc query <file> --k K ...`
    Query {
        /// Path of the edge-list file.
        path: String,
        /// Query parameter `k`.
        k: usize,
        /// Query range start (defaults to 1).
        start: Option<u32>,
        /// Query range end (defaults to the last timestamp).
        end: Option<u32>,
        /// Algorithm to run.
        algorithm: Algorithm,
        /// Only report counts, do not materialise cores.
        count_only: bool,
        /// Print at most this many cores.
        limit: usize,
    },
    /// `tkc generate <profile> <out>`
    Generate {
        /// Profile name (e.g. `CM`).
        profile: String,
        /// Output edge-list path.
        output: String,
    },
    /// `tkc profiles`
    Profiles,
    /// `tkc help`
    Help,
}

/// Parses the command line (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "profiles" => Ok(Command::Profiles),
        "stats" => {
            let path = it
                .next()
                .ok_or_else(|| CliError("stats requires an edge-list path".into()))?;
            Ok(Command::Stats { path: path.clone() })
        }
        "generate" => {
            let profile = it
                .next()
                .ok_or_else(|| CliError("generate requires a profile name".into()))?;
            let output = it
                .next()
                .ok_or_else(|| CliError("generate requires an output path".into()))?;
            Ok(Command::Generate {
                profile: profile.clone(),
                output: output.clone(),
            })
        }
        "query" => {
            let path = it
                .next()
                .ok_or_else(|| CliError("query requires an edge-list path".into()))?
                .clone();
            let mut k: Option<usize> = None;
            let mut start = None;
            let mut end = None;
            let mut algorithm = Algorithm::Enum;
            let mut count_only = false;
            let mut limit = 20usize;
            let rest: Vec<&String> = it.collect();
            let mut i = 0;
            while i < rest.len() {
                let flag = rest[i].as_str();
                let value = |what: &str| -> Result<&String, CliError> {
                    rest.get(i + 1)
                        .copied()
                        .ok_or_else(|| CliError(format!("{what} requires a value")))
                };
                match flag {
                    "--k" => {
                        k = Some(parse_num(value("--k")?, "--k")?);
                        i += 1;
                    }
                    "--start" => {
                        start = Some(parse_num(value("--start")?, "--start")? as u32);
                        i += 1;
                    }
                    "--end" => {
                        end = Some(parse_num(value("--end")?, "--end")? as u32);
                        i += 1;
                    }
                    "--limit" => {
                        limit = parse_num(value("--limit")?, "--limit")?;
                        i += 1;
                    }
                    "--algorithm" => {
                        algorithm = match value("--algorithm")?.as_str() {
                            "enum" => Algorithm::Enum,
                            "enum-base" => Algorithm::EnumBase,
                            "otcd" => Algorithm::Otcd,
                            other => {
                                return Err(CliError(format!(
                                    "unknown algorithm `{other}` (expected enum, enum-base, otcd)"
                                )))
                            }
                        };
                        i += 1;
                    }
                    "--count-only" => count_only = true,
                    other => return Err(CliError(format!("unknown flag `{other}`"))),
                }
                i += 1;
            }
            let k = k.ok_or_else(|| CliError("query requires --k <K>".into()))?;
            if k == 0 {
                return Err(CliError("--k must be at least 1".into()));
            }
            Ok(Command::Query {
                path,
                k,
                start,
                end,
                algorithm,
                count_only,
                limit,
            })
        }
        other => Err(CliError(format!("unknown command `{other}`\n\n{USAGE}"))),
    }
}

fn parse_num(s: &str, what: &str) -> Result<usize, CliError> {
    s.parse()
        .map_err(|_| CliError(format!("{what}: `{s}` is not a number")))
}

/// Executes a parsed command, returning the text to print on stdout.
pub fn run(command: Command) -> Result<String, CliError> {
    let mut out = String::new();
    match command {
        Command::Help => out.push_str(USAGE),
        Command::Profiles => {
            let _ = writeln!(out, "{:<6} {:<14} {:>8} {:>8} {:>6}", "name", "paper dataset", "|V|", "|E|", "tmax");
            for p in tkc_datasets::ALL_PROFILES {
                let _ = writeln!(
                    out,
                    "{:<6} {:<14} {:>8} {:>8} {:>6}",
                    p.name, p.paper_dataset, p.num_vertices, p.num_edges, p.num_timestamps
                );
            }
        }
        Command::Stats { path } => {
            let graph = temporal_graph::loader::read_edge_list(&path)?;
            let stats = DatasetStats::compute(&graph);
            let _ = writeln!(out, "file:      {path}");
            let _ = writeln!(out, "|V|:       {}", stats.num_vertices);
            let _ = writeln!(out, "|E|:       {}", stats.num_edges);
            let _ = writeln!(out, "tmax:      {}", stats.tmax);
            let _ = writeln!(out, "kmax:      {}", stats.kmax);
            let _ = writeln!(
                out,
                "avg deg:   {:.2}",
                graph.average_distinct_degree_in(graph.span())
            );
        }
        Command::Generate { profile, output } => {
            let profile = DatasetProfile::by_name(&profile)
                .ok_or_else(|| CliError(format!("unknown profile `{profile}` (see `tkc profiles`)")))?;
            let graph = profile.generate();
            temporal_graph::loader::write_edge_list(&graph, &output)?;
            let _ = writeln!(
                out,
                "wrote {} edges over {} vertices ({} timestamps) to {output}",
                graph.num_edges(),
                graph.num_vertices(),
                graph.tmax()
            );
        }
        Command::Query {
            path,
            k,
            start,
            end,
            algorithm,
            count_only,
            limit,
        } => {
            let graph = temporal_graph::loader::read_edge_list(&path)?;
            let range = temporal_graph::TimeWindow::try_new(
                start.unwrap_or(1),
                end.unwrap_or(graph.tmax()).min(graph.tmax()),
            )
            .ok_or_else(|| CliError("invalid query range".into()))?;
            let query = TimeRangeKCoreQuery::new(k, range);
            if count_only {
                let mut sink = CountingSink::default();
                let stats = query.run_with(&graph, algorithm, &mut sink);
                let _ = writeln!(
                    out,
                    "{}: {} distinct temporal {}-cores in {}, |R| = {} edges ({:?})",
                    algorithm.name(),
                    sink.num_cores,
                    k,
                    range,
                    sink.total_edges,
                    stats.total_time()
                );
            } else {
                let mut sink = CollectingSink::default();
                let stats = query.run_with(&graph, algorithm, &mut sink);
                let cores = sink.into_sorted();
                let _ = writeln!(
                    out,
                    "{}: {} distinct temporal {}-cores in {} ({:?})",
                    algorithm.name(),
                    cores.len(),
                    k,
                    range,
                    stats.total_time()
                );
                for core in cores.iter().take(limit) {
                    let _ = writeln!(
                        out,
                        "  TTI {:<12} {:>5} vertices {:>6} edges",
                        core.tti.to_string(),
                        core.vertices(&graph).len(),
                        core.num_edges()
                    );
                }
                if cores.len() > limit {
                    let _ = writeln!(out, "  ... and {} more (use --limit)", cores.len() - limit);
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_help_and_profiles() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&strings(&["help"])).unwrap(), Command::Help);
        assert_eq!(parse_args(&strings(&["profiles"])).unwrap(), Command::Profiles);
        assert!(run(Command::Help).unwrap().contains("USAGE"));
        assert!(run(Command::Profiles).unwrap().contains("CollegeMsg"));
    }

    #[test]
    fn parses_query_flags() {
        let cmd = parse_args(&strings(&[
            "query", "g.txt", "--k", "3", "--start", "2", "--end", "9", "--algorithm", "otcd",
            "--count-only", "--limit", "5",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Query {
                path: "g.txt".into(),
                k: 3,
                start: Some(2),
                end: Some(9),
                algorithm: Algorithm::Otcd,
                count_only: true,
                limit: 5,
            }
        );
    }

    #[test]
    fn rejects_bad_arguments() {
        assert!(parse_args(&strings(&["query", "g.txt"])).is_err()); // missing --k
        assert!(parse_args(&strings(&["query", "g.txt", "--k", "0"])).is_err());
        assert!(parse_args(&strings(&["query", "g.txt", "--k", "x"])).is_err());
        assert!(parse_args(&strings(&["query", "g.txt", "--k", "2", "--algorithm", "magic"])).is_err());
        assert!(parse_args(&strings(&["frobnicate"])).is_err());
        assert!(parse_args(&strings(&["stats"])).is_err());
        assert!(parse_args(&strings(&["generate", "CM"])).is_err());
    }

    #[test]
    fn generate_stats_query_round_trip() {
        let dir = std::env::temp_dir().join("tkc-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fb.txt");
        let path_str = path.to_string_lossy().to_string();

        let out = run(Command::Generate {
            profile: "FB".into(),
            output: path_str.clone(),
        })
        .unwrap();
        assert!(out.contains("wrote"));

        let out = run(Command::Stats { path: path_str.clone() }).unwrap();
        assert!(out.contains("kmax"));

        let out = run(Command::Query {
            path: path_str.clone(),
            k: 3,
            start: None,
            end: None,
            algorithm: Algorithm::Enum,
            count_only: true,
            limit: 10,
        })
        .unwrap();
        assert!(out.contains("distinct temporal 3-cores"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unknown_profile_and_missing_file_are_errors() {
        assert!(run(Command::Generate {
            profile: "NOPE".into(),
            output: "/tmp/x.txt".into()
        })
        .is_err());
        assert!(run(Command::Stats {
            path: "/definitely/missing.txt".into()
        })
        .is_err());
    }
}
